//! Trace representation and machine model.

use sdt_topology::{HostId, Topology};
use serde::{Deserialize, Serialize};

/// MPI rank index within a job.
pub type Rank = u32;

/// One blocking-MPI operation in a rank's program.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MpiOp {
    /// Local computation for a fixed duration.
    Compute {
        /// Nanoseconds of CPU work.
        ns: u64,
    },
    /// Blocking eager send: completes when the message is fully injected.
    Send {
        /// Destination rank.
        to: Rank,
        /// Payload bytes.
        bytes: u64,
        /// Match tag.
        tag: u32,
    },
    /// Blocking receive: completes when the matching message has fully
    /// arrived.
    Recv {
        /// Source rank.
        from: Rank,
        /// Match tag.
        tag: u32,
    },
    /// MPI_Sendrecv: both directions posted concurrently; completes when
    /// the send is injected *and* the matching message has arrived.
    SendRecv {
        /// Destination of the outgoing message.
        to: Rank,
        /// Outgoing payload bytes.
        bytes: u64,
        /// Outgoing tag.
        stag: u32,
        /// Source of the expected incoming message.
        from: Rank,
        /// Incoming tag.
        rtag: u32,
    },
}

/// One rank's program.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RankTrace {
    /// Operations in program order.
    pub ops: Vec<MpiOp>,
}

impl RankTrace {
    /// Total bytes this rank sends.
    pub fn bytes_sent(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                MpiOp::Send { bytes, .. } | MpiOp::SendRecv { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total compute nanoseconds in this rank's program.
    pub fn compute_ns(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                MpiOp::Compute { ns } => *ns,
                _ => 0,
            })
            .sum()
    }
}

/// A complete job trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trace {
    /// Application name + parameters, for reports.
    pub name: String,
    /// One program per rank.
    pub ranks: Vec<RankTrace>,
}

impl Trace {
    /// Empty trace over `n` ranks.
    pub fn new(name: impl Into<String>, n: u32) -> Self {
        Trace { name: name.into(), ranks: vec![RankTrace::default(); n as usize] }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// Append an op to a rank's program.
    pub fn push(&mut self, rank: Rank, op: MpiOp) {
        self.ranks[rank as usize].ops.push(op);
    }

    /// Total bytes on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.ranks.iter().map(RankTrace::bytes_sent).sum()
    }

    /// Max per-rank compute time — a lower bound on ACT.
    pub fn max_compute_ns(&self) -> u64 {
        self.ranks.iter().map(RankTrace::compute_ns).max().unwrap_or(0)
    }

    /// Sanity check: every Send/SendRecv has a matching Recv/SendRecv on the
    /// peer with the same tag, count-wise.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashMap;
        // (src, dst, tag) -> (sends, recvs)
        let mut m: HashMap<(Rank, Rank, u32), (i64, i64)> = HashMap::new();
        for (r, prog) in self.ranks.iter().enumerate() {
            let r = r as Rank;
            for op in &prog.ops {
                match *op {
                    MpiOp::Send { to, tag, .. } => m.entry((r, to, tag)).or_default().0 += 1,
                    MpiOp::Recv { from, tag } => m.entry((from, r, tag)).or_default().1 += 1,
                    MpiOp::SendRecv { to, stag, from, rtag, .. } => {
                        m.entry((r, to, stag)).or_default().0 += 1;
                        m.entry((from, r, rtag)).or_default().1 += 1;
                    }
                    MpiOp::Compute { .. } => {}
                }
            }
        }
        for (&(s, d, tag), &(tx, rx)) in &m {
            if tx != rx {
                return Err(format!("{s}->{d} tag {tag}: {tx} sends vs {rx} recvs"));
            }
        }
        Ok(())
    }
}

/// Compute-speed model used to size compute phases (a node of the paper's
/// cluster: E5-2695v4, 18 cores).
#[derive(Clone, Copy, Debug)]
pub struct MachineModel {
    /// Sustained double-precision rate per rank, GFLOP/s.
    pub gflops: f64,
    /// Sustained memory bandwidth per rank, GB/s (bounds stencil codes).
    pub mem_gbps: f64,
}

impl Default for MachineModel {
    fn default() -> Self {
        // 8 cores per computing node (the paper's VM slice), memory-bound
        // codes see ~20 GB/s of the socket's bandwidth.
        MachineModel { gflops: 50.0, mem_gbps: 20.0 }
    }
}

impl MachineModel {
    /// Nanoseconds to execute `flops` floating-point operations.
    pub fn flops_ns(&self, flops: f64) -> u64 {
        (flops / self.gflops).max(0.0) as u64
    }

    /// Nanoseconds to stream `bytes` through memory.
    pub fn mem_ns(&self, bytes: f64) -> u64 {
        (bytes / self.mem_gbps).max(0.0) as u64
    }
}

/// Deterministically pick `n` distinct hosts of a topology ("we randomly
/// select the nodes but keep the same among all the evaluations", §VI-D).
pub fn select_nodes(topo: &Topology, n: u32, seed: u64) -> Vec<HostId> {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    assert!(n <= topo.num_hosts(), "cannot select {n} of {} hosts", topo.num_hosts());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<HostId> = (0..topo.num_hosts()).map(HostId).collect();
    // Fisher-Yates prefix shuffle.
    for i in 0..n as usize {
        let j = rng.random_range(i..ids.len());
        ids.swap(i, j);
    }
    ids.truncate(n as usize);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdt_topology::dragonfly::dragonfly;

    #[test]
    fn trace_bookkeeping() {
        let mut t = Trace::new("test", 2);
        t.push(0, MpiOp::Compute { ns: 100 });
        t.push(0, MpiOp::Send { to: 1, bytes: 1000, tag: 7 });
        t.push(1, MpiOp::Recv { from: 0, tag: 7 });
        assert_eq!(t.total_bytes(), 1000);
        assert_eq!(t.max_compute_ns(), 100);
        t.validate().unwrap();
    }

    #[test]
    fn validate_catches_orphan_send() {
        let mut t = Trace::new("bad", 2);
        t.push(0, MpiOp::Send { to: 1, bytes: 8, tag: 1 });
        assert!(t.validate().is_err());
    }

    #[test]
    fn sendrecv_counts_both_directions() {
        let mut t = Trace::new("sr", 2);
        t.push(0, MpiOp::SendRecv { to: 1, bytes: 8, stag: 1, from: 1, rtag: 2 });
        t.push(1, MpiOp::SendRecv { to: 0, bytes: 8, stag: 2, from: 0, rtag: 1 });
        t.validate().unwrap();
    }

    #[test]
    fn select_nodes_deterministic_distinct() {
        let t = dragonfly(4, 9, 2, 2);
        let a = select_nodes(&t, 32, 42);
        let b = select_nodes(&t, 32, 42);
        assert_eq!(a, b);
        let uniq: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(uniq.len(), 32);
        let c = select_nodes(&t, 32, 43);
        assert_ne!(a, c, "different seed, different pick");
    }

    #[test]
    fn machine_model_scales() {
        let m = MachineModel::default();
        assert_eq!(m.flops_ns(50.0), 1); // 50 flops at 50 gflops = 1 ns
        assert_eq!(m.mem_ns(20.0), 1);
    }
}
