//! Application trace generators: IMB, HPCG, HPL, miniGhost, miniFE.
//!
//! Each generator reproduces the published communication skeleton of its
//! application; compute phases are sized with [`MachineModel`]. The
//! defaults are scaled-down instances (smaller grids / fewer iterations
//! than the paper's `264x264x264`-class runs) so simulations finish in
//! seconds, but the *communication fraction* of each app — the quantity
//! that drives Table IV's speedup spread — follows the real codes'
//! character:
//!
//! | app       | pattern                          | comm fraction |
//! |-----------|----------------------------------|---------------|
//! | HPL       | panel bcast + trailing update    | lowest (~1%)  |
//! | HPCG      | 7-pt halo + dots, memory bound   | low (~4%)     |
//! | miniGhost | 40-var halo (BSPMA)              | medium (~15%) |
//! | miniFE    | halo + 2 dots per CG iteration   | higher (~30%) |
//! | IMB       | pure communication               | 1.0           |

use crate::collectives;
use crate::trace::{MachineModel, MpiOp, Rank, Trace};

/// IMB Pingpong between ranks 0 and 1: `reps` round trips of `bytes`.
pub fn imb_pingpong(bytes: u64, reps: u32) -> Trace {
    let mut t = Trace::new(format!("imb-pingpong-{bytes}B-x{reps}"), 2);
    for rep in 0..reps {
        t.push(0, MpiOp::Send { to: 1, bytes, tag: rep });
        t.push(1, MpiOp::Recv { from: 0, tag: rep });
        t.push(1, MpiOp::Send { to: 0, bytes, tag: rep });
        t.push(0, MpiOp::Recv { from: 1, tag: rep });
    }
    t
}

/// IMB Alltoall over `n` ranks: `reps` rounds of `bytes` per pair.
pub fn imb_alltoall(n: u32, bytes: u64, reps: u32) -> Trace {
    let mut t = Trace::new(format!("imb-alltoall-{n}r-{bytes}B-x{reps}"), n);
    for rep in 0..reps {
        collectives::alltoall(&mut t, bytes, rep * (n + 1));
    }
    t
}

/// Shift-permutation traffic: for `reps` rounds, rank `r` exchanges
/// `bytes` with ranks `(r ± shift) mod n`. With ranks packed group-by-group
/// on a Dragonfly and `shift` = hosts-per-group, this is the classic
/// adversarial pattern for minimal routing: every group's whole load
/// crosses the single global link to the next group, which is what
/// adaptive (UGAL/active) routing is for (§VI-E).
pub fn permutation_shift(n: u32, shift: u32, bytes: u64, reps: u32) -> Trace {
    assert!(n >= 2 && shift % n != 0);
    let mut t = Trace::new(format!("shift-{shift}-{n}r-{bytes}B-x{reps}"), n);
    for rep in 0..reps {
        for r in 0..n {
            let to = (r + shift) % n;
            let from = (r + n - shift) % n;
            t.push(r, MpiOp::SendRecv { to, bytes, stag: rep, from, rtag: rep });
        }
    }
    t
}

/// A 3D process grid and its face-neighbor arithmetic.
#[derive(Clone, Copy, Debug)]
pub struct RankGrid {
    /// Ranks per dimension.
    pub dims: [u32; 3],
}

impl RankGrid {
    /// Choose a near-cubic grid for `n` ranks (largest factors first).
    pub fn for_ranks(n: u32) -> Self {
        assert!(n >= 1);
        // Greedy: split n into three factors as equal as possible.
        let mut best = [n, 1, 1];
        let mut best_score = u32::MAX;
        for a in 1..=n {
            if n % a != 0 {
                continue;
            }
            let rest = n / a;
            for b in 1..=rest {
                if rest % b != 0 {
                    continue;
                }
                let c = rest / b;
                let dims = [a, b, c];
                let score =
                    dims.iter().max().copied().unwrap_or(0) - dims.iter().min().copied().unwrap_or(0);
                if score < best_score {
                    best_score = score;
                    best = dims;
                }
            }
        }
        RankGrid { dims: best }
    }

    /// Total ranks.
    pub fn len(&self) -> u32 {
        self.dims.iter().product()
    }

    /// True only for an empty grid (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coordinates of a rank.
    pub fn coord(&self, r: Rank) -> [u32; 3] {
        [
            r % self.dims[0],
            (r / self.dims[0]) % self.dims[1],
            r / (self.dims[0] * self.dims[1]),
        ]
    }

    /// Rank at coordinates.
    pub fn rank(&self, c: [u32; 3]) -> Rank {
        c[0] + self.dims[0] * (c[1] + self.dims[1] * c[2])
    }

    /// Face neighbor of `r` along `dim` in direction `dir` (+1/-1), if any
    /// (non-periodic).
    pub fn neighbor(&self, r: Rank, dim: usize, dir: i32) -> Option<Rank> {
        let mut c = self.coord(r);
        let v = c[dim] as i64 + dir as i64;
        if v < 0 || v >= self.dims[dim] as i64 {
            return None;
        }
        c[dim] = v as u32;
        Some(self.rank(c))
    }
}

/// One non-periodic 3D halo exchange: every rank swaps `face_bytes` with
/// each existing face neighbor. Eager sends make the boundary cases safe.
fn halo_exchange(t: &mut Trace, grid: &RankGrid, face_bytes: u64, tag_base: u32) {
    let n = grid.len();
    for dim in 0..3usize {
        for (di, dir) in [(0u32, 1i32), (1u32, -1i32)] {
            let tag = tag_base + (dim as u32) * 2 + di;
            for r in 0..n {
                let fwd = grid.neighbor(r, dim, dir);
                let back = grid.neighbor(r, dim, -dir);
                match (fwd, back) {
                    (Some(to), Some(from)) => t.push(
                        r,
                        MpiOp::SendRecv { to, bytes: face_bytes, stag: tag, from, rtag: tag },
                    ),
                    (Some(to), None) => t.push(r, MpiOp::Send { to, bytes: face_bytes, tag }),
                    (None, Some(from)) => t.push(r, MpiOp::Recv { from, tag }),
                    (None, None) => {}
                }
            }
        }
    }
}

/// HPCG: conjugate-gradient iterations on a 27-point stencil. Per
/// iteration: one halo exchange (face = `nx² × 8` bytes), a memory-bound
/// SpMV+MG compute phase, and two 8-byte dot-product allreduces.
pub fn hpcg(n_ranks: u32, nx: u32, iters: u32, m: &MachineModel) -> Trace {
    let grid = RankGrid::for_ranks(n_ranks);
    let mut t = Trace::new(format!("hpcg-{n_ranks}r-{nx}^3-x{iters}"), n_ranks);
    let face = (nx as u64) * (nx as u64) * 8;
    // SpMV + MG sweep streams the local cube several times (27-pt stencil
    // plus smoother): ~20 passes over nx^3 * 8 bytes.
    let compute = m.mem_ns((nx as f64).powi(3) * 8.0 * 20.0);
    let mut tag = 0;
    for _ in 0..iters {
        halo_exchange(&mut t, &grid, face, tag);
        tag += 8;
        for r in 0..n_ranks {
            t.push(r, MpiOp::Compute { ns: compute });
        }
        for _ in 0..2 {
            collectives::allreduce(&mut t, 8, tag);
            tag += 2 * n_ranks + 2;
        }
    }
    t
}

/// HPL: LU factorization. Per iteration `k`: pipelined ring broadcast of
/// the shrinking panel, a tiny pivot allreduce, and the flop-heavy trailing
/// update `2·nb·(N-k·nb)²/P`.
///
/// Real HPL hides most of the panel broadcast behind the trailing update
/// (lookahead); we model that overlap by putting only a quarter of the
/// panel bytes on the blocking path.
pub fn hpl(n_ranks: u32, matrix_n: u64, nb: u64, m: &MachineModel) -> Trace {
    let mut t = Trace::new(format!("hpl-{n_ranks}r-N{matrix_n}-nb{nb}"), n_ranks);
    let iters = (matrix_n / nb).min(24); // cap trace length
    let lookahead_divisor = 4;
    let mut tag = 0;
    for k in 0..iters {
        let remaining = matrix_n - k * nb;
        let panel_bytes = remaining * nb * 8 / lookahead_divisor;
        let root = (k % n_ranks as u64) as Rank;
        collectives::ring_bcast(&mut t, root, panel_bytes.max(1), tag);
        tag += n_ranks + 1;
        collectives::allreduce(&mut t, 16, tag);
        tag += 2 * n_ranks + 2;
        let flops = 2.0 * nb as f64 * (remaining as f64).powi(2) / n_ranks as f64;
        for r in 0..n_ranks {
            t.push(r, MpiOp::Compute { ns: m.flops_ns(flops) });
        }
    }
    t
}

/// miniGhost (BSPMA mode): `vars` variables each exchange halos every
/// timestep, followed by one memory-bound stencil sweep over all variables
/// and a grid-checksum allreduce every 5th step.
pub fn minighost(n_ranks: u32, nx: u32, vars: u32, iters: u32, m: &MachineModel) -> Trace {
    let grid = RankGrid::for_ranks(n_ranks);
    let mut t = Trace::new(format!("minighost-{n_ranks}r-{nx}^3-v{vars}-x{iters}"), n_ranks);
    let face = (nx as u64) * (nx as u64) * 8 * vars as u64;
    // One 27-pt sweep over all variables: ~4 passes of nx^3 * 8 * vars.
    let compute = m.mem_ns((nx as f64).powi(3) * 8.0 * vars as f64 * 4.0);
    let mut tag = 0;
    for it in 0..iters {
        halo_exchange(&mut t, &grid, face, tag);
        tag += 8;
        for r in 0..n_ranks {
            t.push(r, MpiOp::Compute { ns: compute });
        }
        if it % 5 == 4 {
            collectives::allreduce(&mut t, 8 * vars as u64, tag);
            tag += 2 * n_ranks + 2;
        }
    }
    t
}

/// miniFE: finite-element assembly followed by a CG solve. Per CG
/// iteration: halo exchange, one light SpMV sweep, two dot allreduces.
pub fn minife(n_ranks: u32, nx: u32, cg_iters: u32, m: &MachineModel) -> Trace {
    let grid = RankGrid::for_ranks(n_ranks);
    let mut t = Trace::new(format!("minife-{n_ranks}r-{nx}^3-x{cg_iters}"), n_ranks);
    // Assembly: one pass, amortized over the solve.
    let assembly = m.mem_ns((nx as f64).powi(3) * 8.0 * 2.0);
    for r in 0..n_ranks {
        t.push(r, MpiOp::Compute { ns: assembly });
    }
    let face = (nx as u64) * (nx as u64) * 8;
    let compute = m.mem_ns((nx as f64).powi(3) * 8.0 * 3.0);
    let mut tag = 100;
    for _ in 0..cg_iters {
        halo_exchange(&mut t, &grid, face, tag);
        tag += 8;
        for r in 0..n_ranks {
            t.push(r, MpiOp::Compute { ns: compute });
        }
        for _ in 0..2 {
            collectives::allreduce(&mut t, 8, tag);
            tag += 2 * n_ranks + 2;
        }
    }
    t
}

/// Rough communication fraction of a trace at a given link speed: wire
/// time of the busiest rank over (wire + compute). Used to sanity-check
/// the Table IV ordering, not as a simulator.
pub fn comm_fraction(t: &Trace, gbps: f64) -> f64 {
    let bytes_per_ns = gbps / 8.0;
    let wire: f64 = t
        .ranks
        .iter()
        .map(|r| r.bytes_sent() as f64 / bytes_per_ns)
        .fold(0.0, f64::max);
    let compute = t.max_compute_ns() as f64;
    wire / (wire + compute).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_produce_valid_traces() {
        let m = MachineModel::default();
        let traces = [
            imb_pingpong(4096, 10),
            imb_alltoall(8, 4096, 3),
            hpcg(8, 32, 4, &m),
            hpl(8, 2048, 128, &m),
            minighost(8, 32, 4, 10, &m),
            minife(8, 24, 6, &m),
        ];
        for t in &traces {
            t.validate().unwrap_or_else(|e| panic!("{}: {e}", t.name));
            assert!(t.total_bytes() > 0, "{}", t.name);
        }
    }

    #[test]
    fn rank_grid_factorization() {
        assert_eq!(RankGrid::for_ranks(8).dims, [2, 2, 2]);
        assert_eq!(RankGrid::for_ranks(12).len(), 12);
        let g = RankGrid::for_ranks(32);
        assert_eq!(g.len(), 32);
        assert!(*g.dims.iter().max().unwrap() <= 8, "{:?}", g.dims);
    }

    #[test]
    fn rank_grid_neighbors() {
        let g = RankGrid { dims: [2, 2, 2] };
        assert_eq!(g.neighbor(0, 0, 1), Some(1));
        assert_eq!(g.neighbor(0, 0, -1), None);
        assert_eq!(g.neighbor(0, 2, 1), Some(4));
        for r in 0..8 {
            let c = g.coord(r);
            assert_eq!(g.rank(c), r);
        }
    }

    #[test]
    fn table4_comm_fraction_ordering() {
        // The speedup ordering of Table IV requires:
        // HPL < HPCG < miniGhost < miniFE < IMB (pure comm).
        let m = MachineModel::default();
        let gbps = 10.0;
        let hpl_f = comm_fraction(&hpl(8, 16384, 64, &m), gbps);
        let hpcg_f = comm_fraction(&hpcg(8, 48, 8, &m), gbps);
        let mg_f = comm_fraction(&minighost(8, 48, 40, 8, &m), gbps);
        let mf_f = comm_fraction(&minife(8, 24, 12, &m), gbps);
        let imb_f = comm_fraction(&imb_alltoall(8, 65536, 4), gbps);
        assert!(hpl_f < hpcg_f, "hpl {hpl_f} vs hpcg {hpcg_f}");
        assert!(hpcg_f < mg_f, "hpcg {hpcg_f} vs minighost {mg_f}");
        assert!(mg_f < mf_f, "minighost {mg_f} vs minife {mf_f}");
        assert!(mf_f < imb_f, "minife {mf_f} vs imb {imb_f}");
        assert!(imb_f > 0.99, "imb {imb_f}");
    }

    #[test]
    fn permutation_shift_valid_and_sized() {
        let t = permutation_shift(32, 8, 4096, 3);
        t.validate().unwrap();
        assert_eq!(t.total_bytes(), 32 * 3 * 4096);
    }

    #[test]
    fn pingpong_alternates() {
        let t = imb_pingpong(64, 3);
        assert_eq!(t.ranks[0].ops.len(), 6);
        assert!(matches!(t.ranks[0].ops[0], MpiOp::Send { to: 1, .. }));
        assert!(matches!(t.ranks[1].ops[0], MpiOp::Recv { from: 0, .. }));
    }

    #[test]
    fn hpl_panels_shrink() {
        let m = MachineModel::default();
        let t = hpl(4, 1024, 128, &m);
        t.validate().unwrap();
        // Total bcast bytes decrease over iterations; just check totals are
        // bounded by the first panel x iterations x tree fanout.
        assert!(t.total_bytes() < 8 * 1024 * 128 * 8 * 2);
    }

    #[test]
    fn halo_boundary_ranks_send_less() {
        let m = MachineModel::default();
        let t = hpcg(27, 16, 1, &m); // 3x3x3 grid
        let center = RankGrid { dims: [3, 3, 3] }.rank([1, 1, 1]);
        // The center rank swaps 6 faces, a corner only 3.
        let halo_bytes = |r: usize| {
            t.ranks[r]
                .ops
                .iter()
                .map(|op| match op {
                    MpiOp::Send { bytes, .. } | MpiOp::SendRecv { bytes, .. } if *bytes > 8 => {
                        *bytes
                    }
                    _ => 0,
                })
                .sum::<u64>()
        };
        assert_eq!(halo_bytes(center as usize), 2 * halo_bytes(0));
    }
}
