//! MPI-style communication traces for the SDT evaluation (§VI-D).
//!
//! The paper replays traces of real HPC applications — HPCG, HPL,
//! miniGhost, miniFE, and the Intel MPI Benchmarks — through its simulator,
//! and runs the same binaries on the SDT testbed. We do not have the
//! authors' collected traces, so this crate *generates* them: each
//! generator reproduces the published communication structure of its
//! application (halo exchanges, panel broadcasts, dot-product allreduces,
//! dense alltoalls) interleaved with compute phases sized from a simple
//! roofline model. What matters for Table IV and Fig. 13 is each
//! application's communication pattern and compute/communication ratio,
//! both of which are explicit, documented parameters here.
//!
//! A trace is a per-rank program over [`MpiOp`]s with blocking-MPI
//! semantics; the `sdt-sim` crate executes it. Collectives are expanded at
//! generation time by the algorithms in [`collectives`] (pairwise exchange,
//! recursive doubling, ring, binomial tree), so the simulator only ever
//! sees point-to-point operations — exactly what a trace capture would
//! contain.

//! Datacenter *flow-level* workloads (ROADMAP item 5) live in [`spec`]:
//! empirical size distributions (websearch/hadoop) with Poisson arrivals
//! at a target load, plus the fixed host permutation — the traffic that
//! feeds `sdt-estimate` and `MultiSliceSim::schedule_workload`.

pub mod apps;
pub mod collectives;
pub mod patterns;
pub mod spec;
pub mod trace;
pub mod tracefile;

pub use spec::{permutation_flows, poisson_flows, FlowSpec, SizeDist};
pub use trace::{select_nodes, MachineModel, MpiOp, Rank, RankTrace, Trace};
pub use tracefile::TraceParseError;
