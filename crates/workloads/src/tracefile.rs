//! Plain-text trace files.
//!
//! The paper's simulator "uses the traces collected from running an HPC
//! application on real computing nodes". This module gives our synthetic
//! traces the same shape as a collected artifact: a line-oriented text
//! format that round-trips through [`Trace::to_text`] / [`Trace::from_text`]
//! and can be shipped alongside experiment configs.
//!
//! ```text
//! # sdt-trace v1
//! trace imb-pingpong-1500B-x2 2
//! rank 0
//!   compute 1000
//!   send 1 1500 0
//!   recv 1 0
//! rank 1
//!   recv 0 0
//!   send 0 1500 0
//! ```

use crate::trace::{MpiOp, Trace};

/// Errors from parsing a trace file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceParseError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceParseError {}

impl Trace {
    /// Serialize to the line format above.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# sdt-trace v1\n");
        out.push_str(&format!("trace {} {}\n", self.name.replace(' ', "_"), self.num_ranks()));
        for (r, prog) in self.ranks.iter().enumerate() {
            out.push_str(&format!("rank {r}\n"));
            for op in &prog.ops {
                match *op {
                    MpiOp::Compute { ns } => out.push_str(&format!("  compute {ns}\n")),
                    MpiOp::Send { to, bytes, tag } => {
                        out.push_str(&format!("  send {to} {bytes} {tag}\n"))
                    }
                    MpiOp::Recv { from, tag } => {
                        out.push_str(&format!("  recv {from} {tag}\n"))
                    }
                    MpiOp::SendRecv { to, bytes, stag, from, rtag } => out
                        .push_str(&format!("  sendrecv {to} {bytes} {stag} {from} {rtag}\n")),
                }
            }
        }
        out
    }

    /// Parse the line format back into a trace.
    pub fn from_text(text: &str) -> Result<Trace, TraceParseError> {
        let err = |line: usize, msg: String| TraceParseError { line, msg };
        let mut trace: Option<Trace> = None;
        let mut cur_rank: Option<u32> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let head = parts.next().unwrap_or_else(|| unreachable!("the line is non-empty"));
            fn num(
                parts: &mut std::str::SplitWhitespace<'_>,
                line: usize,
                what: &str,
            ) -> Result<u64, TraceParseError> {
                parts.next().and_then(|t| t.parse().ok()).ok_or_else(|| TraceParseError {
                    line,
                    msg: format!("expected {what}"),
                })
            }
            match head {
                "trace" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| err(i + 1, "expected trace name".into()))?
                        .to_string();
                    let ranks = num(&mut parts, i + 1, "rank count")? as u32;
                    trace = Some(Trace::new(name, ranks));
                }
                "rank" => {
                    let r = num(&mut parts, i + 1, "rank id")? as u32;
                    let t = trace.as_ref().ok_or_else(|| {
                        err(i + 1, "`rank` before `trace` header".into())
                    })?;
                    if r >= t.num_ranks() {
                        return Err(err(i + 1, format!("rank {r} out of range")));
                    }
                    cur_rank = Some(r);
                }
                op @ ("compute" | "send" | "recv" | "sendrecv") => {
                    let r = cur_rank
                        .ok_or_else(|| err(i + 1, "op before any `rank` line".into()))?;
                    let p = &mut parts;
                    let l = i + 1;
                    let parsed = match op {
                        "compute" => MpiOp::Compute { ns: num(p, l, "ns")? },
                        "send" => MpiOp::Send {
                            to: num(p, l, "dst rank")? as u32,
                            bytes: num(p, l, "bytes")?,
                            tag: num(p, l, "tag")? as u32,
                        },
                        "recv" => MpiOp::Recv {
                            from: num(p, l, "src rank")? as u32,
                            tag: num(p, l, "tag")? as u32,
                        },
                        _ => MpiOp::SendRecv {
                            to: num(p, l, "dst rank")? as u32,
                            bytes: num(p, l, "bytes")?,
                            stag: num(p, l, "stag")? as u32,
                            from: num(p, l, "src rank")? as u32,
                            rtag: num(p, l, "rtag")? as u32,
                        },
                    };
                    trace
                        .as_mut()
                        .unwrap_or_else(|| unreachable!("a live `rank` implies a trace header"))
                        .push(r, parsed);
                }
                other => return Err(err(i + 1, format!("unknown directive `{other}`"))),
            }
        }
        trace.ok_or_else(|| err(0, "no `trace` header found".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::trace::MachineModel;

    #[test]
    fn roundtrip_every_generator() {
        let m = MachineModel::default();
        for t in [
            apps::imb_pingpong(1500, 2),
            apps::imb_alltoall(5, 999, 1),
            apps::hpcg(8, 16, 1, &m),
            apps::hpl(4, 1024, 128, &m),
            apps::minighost(8, 8, 4, 2, &m),
            apps::minife(8, 8, 2, &m),
            apps::permutation_shift(6, 2, 4096, 3),
        ] {
            let text = t.to_text();
            let back = Trace::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", t.name));
            assert_eq!(back.num_ranks(), t.num_ranks(), "{}", t.name);
            assert_eq!(back.total_bytes(), t.total_bytes(), "{}", t.name);
            assert_eq!(back.max_compute_ns(), t.max_compute_ns(), "{}", t.name);
            for (a, b) in back.ranks.iter().zip(&t.ranks) {
                assert_eq!(a.ops, b.ops);
            }
            back.validate().unwrap();
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::from_text("").is_err());
        assert!(Trace::from_text("trace t 2\nrank 5\n").is_err());
        assert!(Trace::from_text("trace t 2\nwarp 9\n").is_err());
        assert!(Trace::from_text("trace t 1\nrank 0\n  send 0\n").is_err());
        assert!(Trace::from_text("rank 0\n").is_err());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let t = Trace::from_text("# hi\n\ntrace x 1\nrank 0\n  compute 5\n").unwrap();
        assert_eq!(t.max_compute_ns(), 5);
    }

    #[test]
    fn error_carries_line_number() {
        let e = Trace::from_text("trace t 1\nrank 0\n  compute nope\n").unwrap_err();
        assert_eq!(e.line, 3);
    }
}
