//! Criterion benches regenerating the paper's figures at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use sdt::topology::dragonfly::dragonfly;
use sdt::topology::HostId;
use sdt::workloads::apps::permutation_shift;
use sdt_bench::{active_routing_compare, fig11_sweep, fig12_incast, fig13_point};
use std::hint::black_box;

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("latency_sweep_small", |b| {
        b.iter(|| black_box(fig11_sweep(&[256, 16 * 1024], 10)))
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(10));
    g.bench_function("incast_pfc_on_5ms", |b| b.iter(|| black_box(fig12_incast(true, 5))));
    g.bench_function("incast_pfc_off_5ms", |b| b.iter(|| black_box(fig12_incast(false, 5))));
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(10));
    let topo = dragonfly(4, 9, 2, 2);
    g.bench_function("alltoall_8nodes", |b| {
        b.iter(|| black_box(fig13_point(&topo, 8, 16 * 1024, 200_000_000)))
    });
    g.finish();
}

fn bench_active_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("active_routing");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(10));
    let hosts: Vec<HostId> = (0..16).map(HostId).collect();
    let trace = permutation_shift(16, 4, 64 * 1024, 2);
    g.bench_function("shift_16nodes", |b| {
        b.iter(|| black_box(active_routing_compare(&trace, &hosts)))
    });
    g.finish();
}

criterion_group!(figures, bench_fig11, bench_fig12, bench_fig13, bench_active_routing);
criterion_main!(figures);
