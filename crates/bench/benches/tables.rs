//! Criterion benches regenerating the paper's tables at reduced scale —
//! one bench group per table, so `cargo bench` exercises every artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use sdt::core::methods::SwitchModel;
use sdt::routing::cdg::analyze;
use sdt::routing::{default_strategy, RouteTable};
use sdt::topology::dragonfly::dragonfly;
use sdt::topology::fattree::fat_tree;
use sdt::workloads::select_nodes;
use sdt_bench::{table2_dc_grid, table2_wan_counts, table4_cell, table4_workloads};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/render", |b| {
        b.iter(|| black_box(sdt::core::compare::render_table1()))
    });
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("dc_grid", |b| b.iter(|| black_box(table2_dc_grid())));
    g.bench_function("wan_counts_64x4", |b| {
        b.iter(|| black_box(table2_wan_counts(&SwitchModel::openflow_64x100g(), 4)))
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    for topo in [fat_tree(4), dragonfly(4, 9, 2, 2)] {
        let strategy = default_strategy(&topo);
        let table = RouteTable::build_for_hosts(&topo, strategy.as_ref());
        g.bench_function(format!("cdg_analyze/{}", topo.name()), |b| {
            b.iter(|| black_box(analyze(&table).is_free()))
        });
    }
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    // One representative small cell: HPCG on fat-tree k=4, both fabrics.
    let topo = fat_tree(4);
    let (_, trace) = table4_workloads(8).swap_remove(0);
    let hosts = select_nodes(&topo, 8, 2023);
    g.bench_function("cell/hpcg_fattree", |b| {
        b.iter(|| black_box(table4_cell(&topo, &trace, &hosts, 200_000_000)))
    });
    g.finish();
}

criterion_group!(tables, bench_table1, bench_table2, bench_table3, bench_table4);
criterion_main!(tables);
