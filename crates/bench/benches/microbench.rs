//! Micro-benchmarks of the core machinery: partitioner, projector, flow
//! tables, and raw simulator event throughput.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sdt::core::cluster::ClusterBuilder;
use sdt::core::methods::SwitchModel;
use sdt::core::sdt::SdtProjector;
use sdt::openflow::{Action, FlowEntry, FlowMatch, FlowMod, HostAddr, OpenFlowSwitch, PacketMeta, PortNo, SwitchConfig};
use sdt::partition::{partition_topology, PartitionConfig};
use sdt::routing::{generic::Bfs, Route, RouteTable};
use sdt::sim::{run_trace, SimConfig, Simulator};
use sdt::topology::chain::chain;
use sdt::topology::fattree::fat_tree;
use sdt::topology::{HostId, SwitchId};
use sdt::workloads::{apps, select_nodes};
use sdt_bench::SDT_EXTRA_NS;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition");
    g.sample_size(20);
    for k in [4u32, 8] {
        let topo = fat_tree(k);
        g.bench_function(format!("fattree_k{k}_2way"), |b| {
            b.iter(|| black_box(partition_topology(&topo, 2, &PartitionConfig::default())))
        });
    }
    g.finish();
}

fn bench_projection(c: &mut Criterion) {
    let mut g = c.benchmark_group("projection");
    g.sample_size(20);
    let topo = fat_tree(4);
    let cluster = ClusterBuilder::new(SwitchModel::openflow_128x100g(), 2)
        .hosts_per_switch(16)
        .inter_links_per_pair(16)
        .build();
    g.bench_function("fattree_k4_full_projection", |b| {
        b.iter(|| {
            black_box(
                SdtProjector::default()
                    .project_default(&topo, &cluster)
                    .expect("fits"),
            )
        })
    });
    g.finish();
}

fn bench_flow_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("openflow");
    let mut sw = OpenFlowSwitch::new(0, SwitchConfig::x128_100g());
    for p in 0..64u16 {
        sw.apply(0, FlowMod::Add(FlowEntry {
            m: FlowMatch::on_port(PortNo(p)),
            priority: 10,
            action: Action::WriteMetadataGoto(p as u32 / 4),
        }))
        .unwrap();
    }
    for d in 0..256u32 {
        sw.apply(1, FlowMod::Add(FlowEntry {
            m: FlowMatch::to_dst(HostAddr(d)).and_metadata(d % 16),
            priority: 10,
            action: Action::Output(PortNo((d % 64) as u16)),
        }))
        .unwrap();
    }
    let meta = PacketMeta {
        in_port: PortNo(63),
        src: HostAddr(1),
        dst: HostAddr(255),
        l4_src: 4791,
        l4_dst: 4791,
    };
    g.throughput(Throughput::Elements(1));
    g.bench_function("pipeline_forward_320_entries", |b| {
        b.iter(|| black_box(sw.forward(&meta, 1500)))
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    let topo = chain(8);
    for (label, cfg) in [
        ("packet_1MB_transfer", SimConfig::testbed_10g()),
        ("flit_1MB_transfer", SimConfig::simulator_flit()),
    ] {
        let routes = RouteTable::build(&topo, &Bfs::new(&topo));
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut sim = Simulator::new(&topo, routes.clone(), cfg.clone());
                sim.start_raw_flow(HostId(0), HostId(7), 1 << 20);
                sim.run();
                black_box(sim.stats().events)
            })
        });
    }
    g.finish();
}

/// The fabric-engine hot path after the dense-index overhaul: route
/// lookups against the `Vec`-backed all-pairs table (vs the HashMap
/// baseline it replaced — the dense path must stay well ahead), and a full
/// Table IV workload replay exercising the CSR channel index plus the
/// two-tier event queue end to end.
fn bench_engine_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_hot_path");
    let topo = fat_tree(4);
    let routes = RouteTable::build(&topo, &Bfs::new(&topo));
    let pairs: Vec<(SwitchId, SwitchId)> = routes.iter().map(|(&p, _)| p).collect();
    let baseline: HashMap<(SwitchId, SwitchId), Route> =
        routes.iter().map(|(&p, r)| (p, r.clone())).collect();

    g.throughput(Throughput::Elements(pairs.len() as u64));
    g.bench_function("route_lookup_dense", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for &(s, d) in &pairs {
                hops += routes.try_route(s, d).map_or(0, |r| r.hops.len());
            }
            black_box(hops)
        })
    });
    g.bench_function("route_lookup_hashmap_baseline", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for &(s, d) in &pairs {
                hops += baseline.get(&(s, d)).map_or(0, |r| r.hops.len());
            }
            black_box(hops)
        })
    });

    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    let trace = apps::imb_alltoall(16, 32 * 1024, 1);
    let hosts = select_nodes(&topo, 16, 2023);
    let cfg = SimConfig { extra_switch_ns: SDT_EXTRA_NS, ..SimConfig::testbed_10g() };
    g.bench_function("table4_alltoall_fattree_k4", |b| {
        b.iter(|| {
            let res = run_trace(&topo, routes.clone(), cfg.clone(), &trace, &hosts);
            black_box(res.events)
        })
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_partition,
    bench_projection,
    bench_flow_table,
    bench_simulator,
    bench_engine_hot_path
);
criterion_main!(micro);
