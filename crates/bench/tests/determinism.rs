//! The parallel sweep driver must be invisible in the results: fanning
//! independent simulation runs across threads may change wall-clock, never
//! bits. Each cell owns its simulator and seeded RNG, so these tests pin
//! exact equality — down to per-flow FCTs — between the sequential and
//! parallel paths.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use sdt::routing::{generic::Bfs, RouteTable};
use sdt::sim::{run_trace, MpiRunResult, SimConfig};
use sdt::topology::fattree::fat_tree;
use sdt::topology::meshtorus::torus;
use sdt::workloads::{apps, select_nodes, MachineModel};
use sdt_bench::{fig11_sweep, par_map_threads, table4_cell, table4_grid, SDT_EXTRA_NS};

/// One Table IV-style cell at test scale: the fixed-seed HPCG workload on
/// fat-tree k=4 under the SDT fabric config.
fn table4_style_run(msg_scale: u32) -> MpiRunResult {
    let topo = fat_tree(4);
    let routes = RouteTable::build(&topo, &Bfs::new(&topo));
    let trace = apps::hpcg(8, msg_scale, 2, &MachineModel::default());
    let hosts = select_nodes(&topo, 8, 2023);
    let cfg = SimConfig { extra_switch_ns: SDT_EXTRA_NS, ..SimConfig::testbed_10g() };
    run_trace(&topo, routes, cfg, &trace, &hosts)
}

/// Satellite (c): a fixed-seed Table IV workload pushed through the
/// parallel sweep yields byte-identical per-flow FCTs vs the sequential
/// path — same flows, same (start, finish) nanoseconds, same order.
#[test]
fn parallel_sweep_fcts_byte_identical() {
    let scales: Vec<u32> = vec![8, 12, 16, 24];
    let seq = par_map_threads(1, &scales, |&s| table4_style_run(s));
    let par = par_map_threads(4, &scales, |&s| table4_style_run(s));
    for (a, b) in seq.iter().zip(&par) {
        assert!(!a.flow_times_ns.is_empty(), "workload produced no flows");
        assert_eq!(a.flow_times_ns, b.flow_times_ns, "per-flow FCTs diverged");
        assert_eq!(a.act_ns, b.act_ns);
        assert_eq!(a.events, b.events);
        assert_eq!(a.cells_delivered, b.cells_delivered);
    }
}

/// The Table IV grid driver itself (thread count from the environment)
/// must equal a hand-rolled sequential loop over the same cells.
#[test]
fn table4_grid_matches_sequential_loop() {
    let topologies = vec![(fat_tree(4), 1_000u64), (torus(&[4, 4]), 2_000u64)];
    let grid = table4_grid(&topologies, 4);
    assert_eq!(grid.len(), topologies.len());
    for ((topo, deploy_ns), row) in topologies.iter().zip(&grid) {
        let ranks = topo.num_hosts().min(4);
        let expected: Vec<_> = sdt_bench::table4_workloads(ranks)
            .into_iter()
            .map(|(_, trace)| {
                let hosts = select_nodes(topo, trace.num_ranks(), 2023);
                table4_cell(topo, &trace, &hosts, *deploy_ns)
            })
            .collect();
        assert_eq!(row.len(), expected.len());
        for (got, want) in row.iter().zip(&expected) {
            assert_eq!(got.app, want.app);
            assert_eq!(got.sdt_act_ns, want.sdt_act_ns, "{}", got.app);
            assert_eq!(got.sim_act_ns, want.sim_act_ns, "{}", got.app);
            assert_eq!(got.sim_events, want.sim_events, "{}", got.app);
            assert_eq!(got.sdt_eval_ns, want.sdt_eval_ns, "{}", got.app);
        }
    }
}

/// Fig. 11 sweep (parallel over sizes) is bit-stable run-to-run, including
/// the derived floating-point overheads.
#[test]
fn fig11_sweep_bit_stable() {
    let sizes = [256u64, 4096, 65_536];
    let a = fig11_sweep(&sizes, 3);
    let b = fig11_sweep(&sizes, 3);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.bytes, y.bytes);
        assert_eq!(x.full_rtt_ns.to_bits(), y.full_rtt_ns.to_bits());
        assert_eq!(x.sdt_rtt_ns.to_bits(), y.sdt_rtt_ns.to_bits());
        assert_eq!(x.overhead.to_bits(), y.overhead.to_bits());
    }
}
