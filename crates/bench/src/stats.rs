//! Latency/percentile statistics for benchmark artifacts.
//!
//! The implementation lives in [`sdt_par::stats`] — the bottom of the
//! dependency stack — so the simulator's FCT telemetry
//! (`sdt_sim::telemetry::FctSummary`) and the benchmark writers here use
//! the *same* nearest-rank arithmetic instead of three hand-rolled copies.
//! This module re-exports it under the `sdt_bench::stats` name the
//! artifact binaries (`bench_sdtd` and friends) import.

pub use sdt_par::stats::{percentile_sorted, LatencySummary};

/// Render a [`LatencySummary`] as the JSON object every `BENCH_*.json`
/// artifact embeds for a latency distribution (integer ns fields, mean as
/// a float).
pub fn latency_json(s: &LatencySummary) -> String {
    format!(
        "{{\"count\":{},\"mean_ns\":{:.1},\"min_ns\":{},\"p50_ns\":{},\
         \"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
        s.count, s.mean_ns, s.min_ns, s.p50_ns, s.p99_ns, s.p999_ns, s.max_ns
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_all_tail_fields() {
        let j = latency_json(&LatencySummary::from_ns(vec![5, 1, 3]));
        for key in ["count", "mean_ns", "min_ns", "p50_ns", "p99_ns", "p999_ns", "max_ns"] {
            assert!(j.contains(key), "{key} missing from {j}");
        }
        assert!(j.contains("\"count\":3"));
        assert!(j.contains("\"min_ns\":1"));
        assert!(j.contains("\"max_ns\":5"));
    }
}
