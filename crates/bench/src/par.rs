//! Order-preserving thread fan-out for independent simulation runs.
//!
//! Every experiment driver in this crate is a map over an independent grid
//! of (topology, workload, config) cells; each cell owns its `Simulator`
//! and seeded RNG, so cells never share mutable state and the result of a
//! cell does not depend on which thread ran it or when. `par_map` exploits
//! that: it fans the cells over a `std::thread::scope` pool and returns
//! results in input order, bit-identical to the sequential map (asserted
//! in `tests/determinism.rs`).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count for experiment sweeps: `SDT_BENCH_THREADS` when set to a
/// positive integer, else the machine's available parallelism.
pub fn bench_threads() -> usize {
    std::env::var("SDT_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Map `f` over `items` on [`bench_threads`] workers, preserving input
/// order in the returned vector.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(bench_threads(), items, f)
}

/// [`par_map`] with an explicit worker count (1 = plain sequential map).
/// Workers pull the next unclaimed index from a shared counter, so cells
/// are never split or duplicated regardless of per-cell cost skew.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| match w.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..100).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 4, 7] {
            assert_eq!(par_map_threads(threads, &items, |&x| x * x + 1), seq);
        }
    }

    #[test]
    fn preserves_order_under_skewed_cost() {
        // Early items sleep longest, so completion order inverts input
        // order — the output must still come back in input order.
        let items: Vec<u64> = (0..16).collect();
        let out = par_map_threads(8, &items, |&x| {
            std::thread::sleep(std::time::Duration::from_millis(16 - x));
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u32> = vec![];
        assert!(par_map_threads(4, &none, |&x| x).is_empty());
        assert_eq!(par_map_threads(4, &[9u32], |&x| x + 1), vec![10]);
    }

    #[test]
    fn threads_env_override_parses() {
        // Do not mutate the process environment (other tests run
        // concurrently); just pin the default's sanity.
        assert!(bench_threads() >= 1);
    }
}
