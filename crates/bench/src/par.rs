//! Order-preserving thread fan-out for independent simulation runs.
//!
//! Every experiment driver in this crate is a map over an independent grid
//! of (topology, workload, config) cells; each cell owns its `Simulator`
//! and seeded RNG, so cells never share mutable state and the result of a
//! cell does not depend on which thread ran it or when. `par_map` exploits
//! that: it fans the cells over a `std::thread::scope` pool and returns
//! results in input order, bit-identical to the sequential map (asserted
//! in `tests/determinism.rs`).
//!
//! The machinery lives in the `sdt-par` crate so the static verifier and
//! tenancy audit can share it without depending on the umbrella crate;
//! this module re-exports it under the historical `sdt_bench::par_map`
//! names and adds the sweep-specific `SDT_BENCH_THREADS` default.

pub use sdt_par::{par_map_threads, parse_threads, threads_from_env, SEQ_FALLBACK_NS};

/// Worker count for experiment sweeps: `SDT_BENCH_THREADS` when set to a
/// positive integer, else the machine's available parallelism.
pub fn bench_threads() -> usize {
    threads_from_env("SDT_BENCH_THREADS")
}

/// Map `f` over `items` on [`bench_threads`] workers, preserving input
/// order in the returned vector. Falls back to a sequential loop when the
/// projected total work is too small to pay for thread spawns (see
/// [`sdt_par::SEQ_FALLBACK_NS`]); either path returns the same bytes.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(bench_threads(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..100).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 4, 7] {
            assert_eq!(par_map_threads(threads, &items, |&x| x * x + 1), seq);
        }
    }

    #[test]
    fn threads_env_override_parses() {
        // Do not mutate the process environment (other tests run
        // concurrently); just pin the default's sanity.
        assert!(bench_threads() >= 1);
    }
}
