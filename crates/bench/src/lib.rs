//! Shared experiment drivers behind the per-table/per-figure binaries and
//! the Criterion benches.
//!
//! Every function here regenerates one artifact of the paper's evaluation
//! at a configurable scale; the `src/bin/*` entry points run them at
//! reporting scale and print paper-style rows, the `benches/*` targets run
//! them at reduced scale under Criterion.

pub mod experiments;
pub mod par;
pub mod stats;

pub use experiments::*;
pub use par::{bench_threads, par_map, par_map_threads};
