//! Regenerates Fig. 12: per-sender bandwidth in a 7-to-1 TCP incast on the
//! 8-switch chain, PFC on and off, full testbed vs SDT.

use sdt_bench::fig12_incast;

fn main() {
    println!("Fig. 12 — Incast bandwidth test (all nodes -> node 4)\n");
    for (title, lossless) in [("PFC on (lossless)", true), ("PFC off (lossy)", false)] {
        println!("== {title} ==");
        println!(
            "{:<8}{:>6}{:>16}{:>16}{:>10}",
            "sender", "hops", "full (Gbps)", "SDT (Gbps)", "dev"
        );
        let rows = fig12_incast(lossless, 50);
        for r in &rows {
            let dev = if r.full_gbps > 0.0 {
                100.0 * (r.sdt_gbps - r.full_gbps) / r.full_gbps
            } else {
                0.0
            };
            println!(
                "node {:<4}{:>5}{:>16.3}{:>16.3}{:>9.1}%",
                r.node, r.hops, r.full_gbps, r.sdt_gbps, dev
            );
        }
        let (f, s): (f64, f64) =
            rows.iter().fold((0.0, 0.0), |(a, b), r| (a + r.full_gbps, b + r.sdt_gbps));
        println!("{:<14}{:>16.3}{:>16.3}\n", "total", f, s);
    }
    println!("paper shape: with PFC, shares group by hop/congestion-point count and match");
    println!("the full testbed almost exactly; without PFC the allocation skews by RTT with");
    println!("the same trend in both fabrics and a lower (loss-wasted) total.");
}
