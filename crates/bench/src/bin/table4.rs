//! Regenerates Table IV: per (topology, application), the ACT agreement
//! between SDT and the flit-level simulator and the evaluation-time speedup
//! "Ax (B%)".
//!
//! Workloads are scaled-down instances (the paper runs minutes-long jobs on
//! real hardware; see EXPERIMENTS.md), so the speedup magnitudes are
//! smaller than the paper's 35x–2899x, but the two headline shapes are
//! reproduced: ACT deviation within a few percent, and speedups ordered by
//! communication intensity (HPL < HPCG < miniGhost < miniFE < IMB).

use sdt_bench::{bench_threads, fmt_ns, table4_grid, table4_topologies, table4_workloads};

fn main() {
    let topologies = table4_topologies();
    println!("Table IV — Application ACTs on SDT compared to the simulator");
    println!("cell = speedup x (ACT deviation %) | speedup = sim wall-clock / SDT ACT");
    println!("(deployment, reported in the detail block, amortizes over the suite)\n");
    let workload_names: Vec<&str> = table4_workloads(4).iter().map(|(n, _)| *n).collect();
    print!("{:<18}", "topology");
    for n in &workload_names {
        print!("{n:>18}");
    }
    println!();
    let grid = table4_grid(&topologies, 32);
    for ((topo, _), row) in topologies.iter().zip(&grid) {
        print!("{:<18}", topo.name());
        for cell in row {
            print!("{:>18}", format!("{:.1}x ({:+.1}%)", cell.speedup(), cell.act_dev_pct()));
        }
        println!();
    }
    println!("\n(grid computed on {} sweep threads)", bench_threads());
    println!();
    // Detail block for one topology, with raw numbers.
    let (topo, _) = &topologies[0];
    println!("detail ({}):", topo.name());
    println!(
        "{:<18}{:>14}{:>14}{:>14}{:>14}{:>12}",
        "app", "SDT ACT", "sim ACT", "sim wall", "SDT eval", "sim events"
    );
    for c in &grid[0] {
        println!(
            "{:<18}{:>14}{:>14}{:>14}{:>14}{:>12}",
            &c.app[..c.app.len().min(18)],
            fmt_ns(c.sdt_act_ns as f64),
            fmt_ns(c.sim_act_ns as f64),
            fmt_ns(c.sim_wall_ns as f64),
            fmt_ns(c.sdt_eval_ns as f64),
            c.sim_events
        );
    }
    println!("\npaper: deviations within ±3.6%, speedups 33x (HPL) .. 2899x (Alltoall);");
    println!("our simulator is a fast Rust engine rather than the authors' BookSim/SST");
    println!("stack, so absolute speedups are smaller at these scaled-down sizes, but");
    println!("the deviation band and the per-app ordering reproduce (see EXPERIMENTS.md).");
}
