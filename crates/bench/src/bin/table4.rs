//! Regenerates Table IV: per (topology, application), the ACT agreement
//! between SDT and the flit-level simulator and the evaluation-time speedup
//! "Ax (B%)".
//!
//! Workloads are scaled-down instances (the paper runs minutes-long jobs on
//! real hardware; see EXPERIMENTS.md), so the speedup magnitudes are
//! smaller than the paper's 35x–2899x, but the two headline shapes are
//! reproduced: ACT deviation within a few percent, and speedups ordered by
//! communication intensity (HPL < HPCG < miniGhost < miniFE < IMB).

use sdt::workloads::select_nodes;
use sdt_bench::{fmt_ns, table4_cell, table4_topologies, table4_workloads};

fn main() {
    let topologies = table4_topologies();
    println!("Table IV — Application ACTs on SDT compared to the simulator");
    println!("cell = speedup x (ACT deviation %) | speedup = sim wall-clock / SDT ACT");
    println!("(deployment, reported in the detail block, amortizes over the suite)\n");
    let workload_names: Vec<&str> = table4_workloads(4).iter().map(|(n, _)| *n).collect();
    print!("{:<18}", "topology");
    for n in &workload_names {
        print!("{n:>18}");
    }
    println!();
    for (topo, deploy_ns) in &topologies {
        print!("{:<18}", topo.name());
        let ranks = topo.num_hosts().min(32);
        for (name, trace) in table4_workloads(ranks) {
            let n = trace.num_ranks();
            let hosts = select_nodes(topo, n, 2023);
            let cell = table4_cell(topo, &trace, &hosts, *deploy_ns);
            let _ = name;
            print!("{:>18}", format!("{:.1}x ({:+.1}%)", cell.speedup(), cell.act_dev_pct()));
        }
        println!();
    }
    println!();
    // Detail block for one topology, with raw numbers.
    let (topo, deploy_ns) = &topologies[0];
    println!("detail ({}):", topo.name());
    println!(
        "{:<18}{:>14}{:>14}{:>14}{:>14}{:>12}",
        "app", "SDT ACT", "sim ACT", "sim wall", "SDT eval", "sim events"
    );
    let ranks = topo.num_hosts().min(32);
    for (_, trace) in table4_workloads(ranks) {
        let hosts = select_nodes(topo, trace.num_ranks(), 2023);
        let c = table4_cell(topo, &trace, &hosts, *deploy_ns);
        println!(
            "{:<18}{:>14}{:>14}{:>14}{:>14}{:>12}",
            &c.app[..c.app.len().min(18)],
            fmt_ns(c.sdt_act_ns as f64),
            fmt_ns(c.sim_act_ns as f64),
            fmt_ns(c.sim_wall_ns as f64),
            fmt_ns(c.sdt_eval_ns as f64),
            c.sim_events
        );
    }
    println!("\npaper: deviations within ±3.6%, speedups 33x (HPL) .. 2899x (Alltoall);");
    println!("our simulator is a fast Rust engine rather than the authors' BookSim/SST");
    println!("stack, so absolute speedups are smaller at these scaled-down sizes, but");
    println!("the deviation band and the per-app ordering reproduce (see EXPERIMENTS.md).");
}
