//! Decomposed-estimation benchmark artifact: the headline numbers for the
//! `sdt-estimate` crate. Writes `results/BENCH_estimate.json`.
//!
//! Three sections:
//!
//! * **oracle** — the exact engine and the estimator run the *same*
//!   Poisson mixes at fat-tree k=4 (websearch) and k=8 (hadoop), at the
//!   calibration operating points the differential suite pins. Reports
//!   mean/p99 relative error and the wall-time ratio. Gated against the
//!   crate's published envelopes.
//! * **scale** — what the engine cannot do at all: fat-tree k=32 and
//!   k=64 with a million-plus flows through the four-stage pipeline.
//!   Reports per-stage wall time, crossings, collapse, and a thread
//!   scaling row per thread count, with byte-identity checked across
//!   them (skipped in `--quick`, which substitutes a small k=8 run so CI
//!   still exercises the path).
//! * **collapse** — permutation traffic on k=8, where clustering must
//!   actually dedup (ratio > 1 is a gate; Poisson traffic is the
//!   no-collapse regime, structured traffic is the payoff).
//!
//! Run with: `cargo run --release -p sdt-bench --bin bench_estimate`
//! (`--quick` is the CI smoke mode). Exits non-zero if any gate fails:
//! error outside the envelope, a flow left unestimated, thread-count
//! divergence, or no collapse on permutation traffic.

use sdt::estimate::{
    estimate, EstimateConfig, EstimateReport, SparseRoutes, MEAN_ERROR_ENVELOPE,
    P99_ERROR_ENVELOPE,
};
use sdt::routing::{default_strategy, RouteTable};
use sdt::sim::{SimConfig, SimOutcome, Simulator};
use sdt::topology::fattree::fat_tree;
use sdt::workloads::{permutation_flows, poisson_flows, FlowSpec, SizeDist};
use std::fmt::Write as _;
use std::time::Instant;

/// `writeln!` into a `String` cannot fail; swallow the `fmt::Result` so the
/// JSON assembly below stays linear.
macro_rules! jline {
    ($($arg:tt)*) => {
        let _ = writeln!($($arg)*);
    };
}

fn mean(xs: &[u64]) -> f64 {
    xs.iter().sum::<u64>() as f64 / xs.len() as f64
}

fn p99(xs: &[u64]) -> u64 {
    let mut v = xs.to_vec();
    v.sort_unstable();
    let rank = (v.len() as f64 * 0.99).ceil() as usize;
    v[rank.saturating_sub(1).min(v.len() - 1)]
}

fn rel_err(est: f64, exact: f64) -> f64 {
    (est - exact).abs() / exact
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// One engine-vs-estimator comparison at a differential operating point.
struct OracleRow {
    k: u32,
    dist: String,
    flows: usize,
    load: f64,
    mean_err: f64,
    p99_err: f64,
    exact_wall_ms: f64,
    est_wall_ms: f64,
}

fn oracle_case(k: u32, dist: &SizeDist, num_flows: usize, load: f64, seed: u64) -> OracleRow {
    let topo = fat_tree(k);
    let strategy = default_strategy(&topo);
    let table = RouteTable::build_for_hosts(&topo, strategy.as_ref());
    let cfg = SimConfig::default();
    let flows = poisson_flows(dist, topo.num_hosts(), cfg.bytes_per_ns(), load, num_flows, seed);

    let t0 = Instant::now();
    let mut sim = Simulator::new(&topo, table.clone(), cfg.clone());
    for f in &flows {
        sim.schedule_raw_flow(f.src, f.dst, f.bytes, f.start_ns);
    }
    let outcome = sim.run();
    assert_eq!(outcome, SimOutcome::Completed, "oracle run must finish");
    let exact: Vec<u64> = sim
        .flow_records()
        .into_iter()
        .map(|r| match r.fct_ns {
            Some(ns) => ns,
            None => unreachable!("completed run leaves no unfinished flows"),
        })
        .collect();
    let exact_wall = t0.elapsed();

    let t1 = Instant::now();
    let routes = SparseRoutes::from_table(&topo, &table, &flows);
    let report = estimate(&topo, &routes, &flows, &cfg, &EstimateConfig::default());
    let est_wall = t1.elapsed();
    assert_eq!(report.fcts.len(), flows.len(), "every flow must be estimated");

    OracleRow {
        k,
        dist: dist.name().to_string(),
        flows: num_flows,
        load,
        mean_err: rel_err(mean(&report.fcts), mean(&exact)),
        p99_err: rel_err(p99(&report.fcts) as f64, p99(&exact) as f64),
        exact_wall_ms: exact_wall.as_secs_f64() * 1e3,
        est_wall_ms: est_wall.as_secs_f64() * 1e3,
    }
}

/// One fabric-scale pipeline run, with thread-scaling rows.
struct ScaleRow {
    k: u32,
    hosts: u32,
    flows: usize,
    routes_wall_ms: f64,
    /// `(threads, total wall ms, report)` per thread count, ascending.
    runs: Vec<(usize, f64, EstimateReport)>,
    thread_invariant: bool,
}

fn scale_case(k: u32, num_flows: usize, threads: &[usize]) -> ScaleRow {
    let topo = fat_tree(k);
    let cfg = SimConfig::default();
    eprintln!(
        "scale k={k}: {} hosts, generating {num_flows} flows...",
        topo.num_hosts()
    );
    let flows = poisson_flows(
        &SizeDist::websearch(),
        topo.num_hosts(),
        cfg.bytes_per_ns(),
        0.2,
        num_flows,
        1,
    );
    let strategy = default_strategy(&topo);
    let t0 = Instant::now();
    let routes = SparseRoutes::build(&topo, strategy.as_ref(), &flows);
    let routes_wall = t0.elapsed();
    eprintln!("scale k={k}: {} routed switch pairs in {:.1} s", routes.len(),
        routes_wall.as_secs_f64());

    let mut runs = Vec::new();
    for &t in threads {
        let est_cfg = EstimateConfig { threads: t, ..Default::default() };
        let t1 = Instant::now();
        let report = estimate(&topo, &routes, &flows, &cfg, &est_cfg);
        let wall = t1.elapsed();
        assert_eq!(report.fcts.len(), flows.len(), "every flow must be estimated");
        eprintln!(
            "scale k={k} threads={t}: {:.2} s wall ({:.0}/{:.0}/{:.0}/{:.0} ms \
             decompose/cluster/simulate/aggregate), {} channels -> {} reps (collapse {:.2})",
            wall.as_secs_f64(),
            ms(report.stats.decompose_ns),
            ms(report.stats.cluster_ns),
            ms(report.stats.simulate_ns),
            ms(report.stats.aggregate_ns),
            report.stats.active_channels,
            report.stats.representatives,
            report.stats.collapse_ratio,
        );
        runs.push((t, wall.as_secs_f64() * 1e3, report));
    }
    let thread_invariant = runs.windows(2).all(|w| w[0].2.fcts == w[1].2.fcts);
    ScaleRow { k, hosts: topo.num_hosts(), flows: num_flows, routes_wall_ms:
        routes_wall.as_secs_f64() * 1e3, runs, thread_invariant }
}

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");

    eprintln!("== oracle: estimator vs exact engine at the pinned operating points ==");
    let oracle = vec![
        oracle_case(4, &SizeDist::websearch(), 400, 0.3, 42),
        oracle_case(8, &SizeDist::hadoop(), 1_500, 0.3, 7),
    ];
    for r in &oracle {
        eprintln!(
            "oracle k={} {}: mean err {:.3}, p99 err {:.3}, exact {:.0} ms vs estimate {:.1} ms",
            r.k, r.dist, r.mean_err, r.p99_err, r.exact_wall_ms, r.est_wall_ms
        );
    }

    eprintln!("== scale: the pipeline at fabric sizes the engine cannot reach ==");
    let threads: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .chain(std::iter::once(
            std::thread::available_parallelism().map(usize::from).unwrap_or(4),
        ))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let scale = if quick {
        vec![scale_case(8, 100_000, &threads)]
    } else {
        vec![scale_case(32, 1_200_000, &threads), scale_case(64, 1_000_000, &threads)]
    };

    eprintln!("== collapse: permutation traffic must dedup ==");
    let perm_topo = fat_tree(8);
    let perm_flows: Vec<FlowSpec> = permutation_flows(perm_topo.num_hosts(), 300_000, 4, 400_000);
    let perm_strategy = default_strategy(&perm_topo);
    let perm_routes = SparseRoutes::build(&perm_topo, perm_strategy.as_ref(), &perm_flows);
    let perm = estimate(
        &perm_topo,
        &perm_routes,
        &perm_flows,
        &SimConfig::default(),
        &EstimateConfig::default(),
    );
    eprintln!(
        "permutation k=8: {} channels -> {} reps (collapse {:.2})",
        perm.stats.active_channels, perm.stats.representatives, perm.stats.collapse_ratio
    );

    let mut json = String::new();
    jline!(json, "{{");
    jline!(json, "  \"quick\": {quick},");
    jline!(json, "  \"mean_error_envelope\": {MEAN_ERROR_ENVELOPE},");
    jline!(json, "  \"p99_error_envelope\": {P99_ERROR_ENVELOPE},");
    jline!(json, "  \"oracle\": [");
    for (i, r) in oracle.iter().enumerate() {
        let comma = if i + 1 < oracle.len() { "," } else { "" };
        jline!(
            json,
            "    {{\"k\": {}, \"dist\": \"{}\", \"flows\": {}, \"load\": {}, \
             \"mean_err\": {:.4}, \"p99_err\": {:.4}, \"exact_wall_ms\": {:.3}, \
             \"estimate_wall_ms\": {:.3}, \"speedup\": {:.1}}}{comma}",
            r.k,
            r.dist,
            r.flows,
            r.load,
            r.mean_err,
            r.p99_err,
            r.exact_wall_ms,
            r.est_wall_ms,
            r.exact_wall_ms / r.est_wall_ms.max(1e-9)
        );
    }
    jline!(json, "  ],");
    jline!(json, "  \"scale\": [");
    for (i, s) in scale.iter().enumerate() {
        let comma = if i + 1 < scale.len() { "," } else { "" };
        jline!(json, "    {{");
        jline!(json, "      \"k\": {}, \"hosts\": {}, \"flows\": {},", s.k, s.hosts, s.flows);
        jline!(json, "      \"routes_wall_ms\": {:.3},", s.routes_wall_ms);
        jline!(json, "      \"thread_invariant\": {},", s.thread_invariant);
        jline!(json, "      \"runs\": [");
        for (j, (t, wall, report)) in s.runs.iter().enumerate() {
            let rcomma = if j + 1 < s.runs.len() { "," } else { "" };
            let st = &report.stats;
            jline!(
                json,
                "        {{\"threads\": {t}, \"wall_ms\": {:.3}, \"channels\": {}, \
                 \"crossings\": {}, \"representatives\": {}, \"collapse_ratio\": {:.4}, \
                 \"decompose_ms\": {:.3}, \"cluster_ms\": {:.3}, \"simulate_ms\": {:.3}, \
                 \"aggregate_ms\": {:.3}}}{rcomma}",
                wall,
                st.active_channels,
                st.crossings,
                st.representatives,
                st.collapse_ratio,
                ms(st.decompose_ns),
                ms(st.cluster_ns),
                ms(st.simulate_ns),
                ms(st.aggregate_ns)
            );
        }
        jline!(json, "      ]");
        jline!(json, "    }}{comma}");
    }
    jline!(json, "  ],");
    jline!(json, "  \"permutation\": {{");
    jline!(json, "    \"k\": 8, \"flows\": {},", perm_flows.len());
    jline!(json, "    \"channels\": {},", perm.stats.active_channels);
    jline!(json, "    \"representatives\": {},", perm.stats.representatives);
    jline!(json, "    \"collapse_ratio\": {:.4}", perm.stats.collapse_ratio);
    jline!(json, "  }},");
    jline!(json, "  \"headline\": {{");
    jline!(
        json,
        "    \"worst_mean_err\": {:.4},",
        oracle.iter().map(|r| r.mean_err).fold(0.0, f64::max)
    );
    jline!(
        json,
        "    \"worst_p99_err\": {:.4},",
        oracle.iter().map(|r| r.p99_err).fold(0.0, f64::max)
    );
    jline!(
        json,
        "    \"largest_fabric\": {{\"k\": {}, \"hosts\": {}, \"flows\": {}}},",
        scale.last().map(|s| s.k).unwrap_or(0),
        scale.last().map(|s| s.hosts).unwrap_or(0),
        scale.last().map(|s| s.flows).unwrap_or(0)
    );
    jline!(
        json,
        "    \"best_scale_wall_ms\": {:.3}",
        scale
            .last()
            .map(|s| s.runs.iter().map(|r| r.1).fold(f64::INFINITY, f64::min))
            .unwrap_or(0.0)
    );
    jline!(json, "  }}");
    jline!(json, "}}");

    std::fs::create_dir_all("results")?;
    std::fs::write("results/BENCH_estimate.json", &json)?;
    print!("{json}");

    // Gates.
    let mut failed = false;
    for r in &oracle {
        if r.mean_err > MEAN_ERROR_ENVELOPE {
            eprintln!(
                "FAIL: k={} {} mean error {:.4} outside envelope {MEAN_ERROR_ENVELOPE}",
                r.k, r.dist, r.mean_err
            );
            failed = true;
        }
        if r.p99_err > P99_ERROR_ENVELOPE {
            eprintln!(
                "FAIL: k={} {} p99 error {:.4} outside envelope {P99_ERROR_ENVELOPE}",
                r.k, r.dist, r.p99_err
            );
            failed = true;
        }
    }
    for s in &scale {
        if !s.thread_invariant {
            eprintln!("FAIL: k={} estimates diverge across thread counts", s.k);
            failed = true;
        }
    }
    if perm.stats.collapse_ratio <= 1.0 {
        eprintln!(
            "FAIL: permutation traffic did not collapse (ratio {:.4})",
            perm.stats.collapse_ratio
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "headline: worst mean err {:.3} / p99 err {:.3} within envelope \
         ({MEAN_ERROR_ENVELOPE}/{P99_ERROR_ENVELOPE}); largest fabric k={} with {} flows",
        oracle.iter().map(|r| r.mean_err).fold(0.0, f64::max),
        oracle.iter().map(|r| r.p99_err).fold(0.0, f64::max),
        scale.last().map(|s| s.k).unwrap_or(0),
        scale.last().map(|s| s.flows).unwrap_or(0),
    );
    Ok(())
}
