//! Regenerates Fig. 11: additional 8-hop RTT overhead introduced by SDT vs
//! the full testbed, over pingpong message lengths (IMB -msglen sweep).

use sdt_bench::{fig11_sweep, fmt_ns};

fn main() {
    println!("Fig. 11 — Additional overhead by SDT on 8-hop latency\n");
    let sizes = [
        64u64, 128, 256, 512, 1024, 2048, 4096, 8192, 16 << 10, 64 << 10, 256 << 10, 1 << 20,
        4 << 20,
    ];
    println!("{:>10}{:>16}{:>16}{:>12}", "msglen", "full RTT", "SDT RTT", "overhead");
    let pts = fig11_sweep(&sizes, 50);
    for p in &pts {
        println!(
            "{:>10}{:>16}{:>16}{:>11.3}%",
            p.bytes,
            fmt_ns(p.full_rtt_ns),
            fmt_ns(p.sdt_rtt_ns),
            p.overhead * 100.0
        );
    }
    let max = pts.iter().map(|p| p.overhead).fold(0.0, f64::max);
    println!("\nmax overhead {:.3}% — paper: 0.03%..1.6%, always <2%, shrinking with", max * 100.0);
    println!("message length (serialization dominates the constant crossbar penalty).");
}
