//! Regenerates Table I: qualitative comparison of network evaluation tools.

fn main() {
    println!("Table I — Comparison of Network Evaluation Tools for Various Topologies\n");
    print!("{}", sdt::core::compare::render_table1());
    println!("\n(paper Table I: identical grading — SDT couples testbed-grade scalability");
    println!(" and efficiency with simulator-grade reconfiguration ease at medium price)");
}
