//! Transient-safety benchmark artifact: live traffic through a fat-tree
//! fabric during continuous scheduled reconfiguration, with the two
//! headline gates the PR claims — **zero verified-property violations**
//! across every intermediate table state the scheduler walks through, and
//! **zero packet loss** for the traffic riding the fabric while it
//! migrates. Writes `results/BENCH_transient.json`.
//!
//! Two halves, mirroring how the testbed separates the planes:
//!
//! * **control plane** — a fat-tree k=8 slice is migrated to a torus and
//!   back, repeatedly, next to a co-tenant, through
//!   `SliceController::reconfigure_scheduled` over a control channel that
//!   drops and reorders 20% of flow-mods. Every round boundary is proven
//!   by the static verifier before its round installs;
//!   `ScheduleReport::violations` sums to the first headline number.
//! * **data plane** — the same migration shape inside the simulation
//!   engine: a fat-tree k=8 slice carries flows while its staged
//!   replacement is cut over mid-flight (make-before-break); unfinished
//!   flows plus engine cell drops sum to the second headline number.
//!
//! Run with: `cargo run --release -p sdt-bench --bin bench_transient`
//! (`--quick` drops to k=4 and fewer cycles; used by CI as a smoke test).
//! Exits non-zero unless both headline numbers are exactly zero.

use sdt::core::cluster::ClusterBuilder;
use sdt::core::methods::SwitchModel;
use sdt::openflow::{ControlChannel, ControlConfig};
use sdt::sim::{MultiSliceSim, SimConfig};
use sdt::topology::chain::chain;
use sdt::topology::fattree::fat_tree;
use sdt::topology::meshtorus::torus;
use sdt::topology::{HostId, Topology};
use std::fmt::Write as _;

/// `writeln!` into a `String` cannot fail; swallow the `fmt::Result` so the
/// JSON assembly below stays linear.
macro_rules! jline {
    ($($arg:tt)*) => {
        let _ = writeln!($($arg)*);
    };
}

/// What one reconfiguration cycle contributed to the artifact.
struct Cycle {
    from: String,
    to: String,
    rounds: usize,
    mods: usize,
    merges: usize,
    reverifications: usize,
    violations: usize,
    converged: bool,
    proof_wall_ms: f64,
    install_ms: f64,
    pipelined_ms: f64,
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Continuous scheduled reconfiguration of a slice next to a co-tenant,
/// over a lossy control channel. Returns the per-cycle records; panics are
/// reserved for setup bugs — gate failures flow into the records.
fn control_plane(migrations: &[Topology], cycles: usize, quick: bool) -> Vec<Cycle> {
    // k=4 colocates on the paper's 128-port OpenFlow switches; k=8 plus a
    // co-tenant needs the synthetic 512-port carrier the other benches use
    // for large fabrics (loopback self-link demand grows with the number
    // of sub-switches folded into one physical switch).
    let (model, hosts, inter) = if quick {
        (SwitchModel::openflow_128x100g(), 40, 24)
    } else {
        let wide = SwitchModel {
            name: "synthetic 512x100G",
            ports: 512,
            gbps: 100,
            price_usd: 0,
            table_capacity: 262_144,
            p4: false,
        };
        (wide, 40, 64)
    };
    let cluster = ClusterBuilder::new(model, 4)
        .hosts_per_switch(hosts)
        .inter_links_per_pair(inter)
        .build();
    let mut ctl = sdt::controller::SliceController::new(cluster);
    // A k=8 epoch carries thousands of flow-mods per round; at 20% drop the
    // expected stragglers after r retries are mods * 0.2^(r+1), so the
    // default 5-retry budget leaves ~1 mod unapplied. 12 retries drive the
    // expectation far below one; the seeded channel makes the run exact.
    ctl.manager_mut().set_retry_policy(sdt::tenancy::RetryPolicy {
        max_retries: 12,
        ..Default::default()
    });
    let co = ctl.create("co-tenant", &chain(4), "default");
    if let Err(e) = co {
        panic!("co-tenant admission failed: {e}");
    }
    let id = match ctl.create("migrant", &migrations[0], "default") {
        Ok(id) => id,
        Err(e) => panic!("migrant admission failed: {e}"),
    };

    let mut out = Vec::new();
    for cycle in 0..cycles {
        let from = &migrations[cycle % migrations.len()];
        let to = &migrations[(cycle + 1) % migrations.len()];
        let mut ch = ControlChannel::new(ControlConfig {
            drop_prob: 0.2,
            reorder_prob: 0.2,
            seed: 0x5d7_2026 + cycle as u64,
            ..ControlConfig::reliable()
        });
        let (epoch, sched) = match ctl.reconfigure_scheduled(id, to, "default", &mut ch) {
            Ok(r) => r,
            Err(e) => panic!("scheduled reconfiguration failed in cycle {cycle}: {e}"),
        };
        let audit = ctl.audit();
        if !audit.clean() {
            for e in &audit.per_slice {
                if !e.violations.is_empty() {
                    eprintln!(
                        "cycle {cycle}: slice {} ({}) violations: {:?}",
                        e.id.0,
                        e.name,
                        &e.violations[..e.violations.len().min(5)]
                    );
                }
            }
            eprintln!(
                "cycle {cycle}: port_overlaps={} metadata_overlaps={} cross_leaks={} orphans={}",
                audit.port_overlaps.len(),
                audit.metadata_overlaps.len(),
                audit.cross_leaks.len(),
                audit.orphan_entries
            );
            panic!("cycle {cycle}: isolation audit failed after migration");
        }
        eprintln!(
            "cycle {cycle}: {} -> {}: {} rounds, {} mods, {} violations, converged={}, \
             proof {:.1} ms + install {:.1} ms pipelined into {:.1} ms",
            from.name(),
            to.name(),
            sched.rounds.len(),
            epoch.flow_mods(),
            sched.violations,
            sched.converged,
            ms(sched.proof_wall_ns_total),
            ms(sched.install_ns_total),
            ms(sched.pipelined_ns),
        );
        out.push(Cycle {
            from: from.name().to_string(),
            to: to.name().to_string(),
            rounds: sched.rounds.len(),
            mods: sched.total_mods,
            merges: sched.merges,
            reverifications: sched.reverifications,
            violations: sched.violations,
            converged: sched.converged,
            proof_wall_ms: ms(sched.proof_wall_ns_total),
            install_ms: ms(sched.install_ns_total),
            pipelined_ms: ms(sched.pipelined_ns),
        });
    }
    out
}

/// What the live-traffic-during-migration harness measured.
struct DataPlane {
    flows: usize,
    delivered: usize,
    unfinished: usize,
    cell_drops: u64,
    cutover_at_ns: u64,
    sim_ns: u64,
    outcome: String,
    p50_ns: u64,
    p99_ns: u64,
}

/// Deterministic xorshift64* pair picker — same traffic every run.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Live traffic through the migrating fabric: first wave on the old
/// fat-tree, cutover mid-flight, second wave on the staged replacement —
/// in-flight flows drain on the old component, make-before-break.
fn data_plane(fabric: &Topology, replacement: &Topology, wave: usize) -> DataPlane {
    let co = chain(4);
    let mut sim = MultiSliceSim::new_with_staged(
        &[fabric, &co],
        &[(0, replacement)],
        SimConfig::testbed_10g(),
    );
    let mut rng = XorShift(0x7a5_1e47_5d70_2026);
    let mut start_wave = |sim: &mut MultiSliceSim, hosts: u32| {
        for _ in 0..wave {
            let src = (rng.next() % u64::from(hosts)) as u32;
            let mut dst = (rng.next() % u64::from(hosts)) as u32;
            if dst == src {
                dst = (dst + 1) % hosts;
            }
            sim.start_raw_flow(0, HostId(src), HostId(dst), 100_000);
        }
    };
    start_wave(&mut sim, fabric.num_hosts());
    sim.start_raw_flow(1, HostId(0), HostId(3), 200_000);

    // Advance to mid-flight, then flip new flows onto the replacement.
    let cutover_at_ns = 20_000;
    sim.run_until(cutover_at_ns);
    sim.cutover(0);
    start_wave(&mut sim, replacement.num_hosts());
    let outcome = sim.run();

    let (unfinished, delivered) = sim.slice_loss(0);
    let (co_unfinished, _) = sim.slice_loss(1);
    let fct = sim.slice_fct_summary(0);
    let s = sim.sim().stats();
    DataPlane {
        flows: 2 * wave,
        delivered,
        unfinished: unfinished + co_unfinished,
        cell_drops: s.drops,
        cutover_at_ns,
        sim_ns: s.sim_ns,
        outcome: format!("{outcome:?}"),
        p50_ns: fct.p50_ns,
        p99_ns: fct.p99_ns,
    }
}

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let k: u32 = if quick { 4 } else { 8 };
    let cycles = if quick { 2 } else { 4 };
    let wave = if quick { 16 } else { 32 };
    let migrations = if quick {
        vec![fat_tree(4), torus(&[4, 4])]
    } else {
        vec![fat_tree(8), torus(&[8, 16])]
    };

    eprintln!("== control plane: {cycles} scheduled migrations over a 20%-loss channel ==");
    let control = control_plane(&migrations, cycles, quick);
    let violations: usize = control.iter().map(|c| c.violations).sum();
    let all_converged = control.iter().all(|c| c.converged);
    let proof_ms: f64 = control.iter().map(|c| c.proof_wall_ms).sum();
    let install_ms: f64 = control.iter().map(|c| c.install_ms).sum();
    let pipelined_ms: f64 = control.iter().map(|c| c.pipelined_ms).sum();

    eprintln!("== data plane: k={k} fabric carrying traffic through its cutover ==");
    let dp = data_plane(&migrations[0], &migrations[1], wave);
    let lost_packets = dp.unfinished as u64 + dp.cell_drops;
    eprintln!(
        "data plane: {} flows, {} delivered, {} unfinished, {} cell drops, outcome={}",
        dp.flows + 1,
        dp.delivered,
        dp.unfinished,
        dp.cell_drops,
        dp.outcome
    );

    let mut json = String::new();
    jline!(json, "{{");
    jline!(json, "  \"quick\": {quick},");
    jline!(json, "  \"k\": {k},");
    jline!(json, "  \"control_plane\": {{");
    jline!(json, "    \"cycles\": {cycles},");
    jline!(json, "    \"channel\": {{\"drop_prob\": 0.2, \"reorder_prob\": 0.2}},");
    jline!(json, "    \"violations\": {violations},");
    jline!(json, "    \"all_converged\": {all_converged},");
    jline!(json, "    \"proof_wall_ms_total\": {proof_ms:.3},");
    jline!(json, "    \"install_ms_total\": {install_ms:.3},");
    jline!(json, "    \"pipelined_ms_total\": {pipelined_ms:.3},");
    jline!(
        json,
        "    \"pipeline_speedup\": {:.3},",
        (proof_ms + install_ms) / pipelined_ms.max(1e-9)
    );
    jline!(json, "    \"per_cycle\": [");
    for (i, c) in control.iter().enumerate() {
        let comma = if i + 1 < control.len() { "," } else { "" };
        jline!(
            json,
            "      {{\"cycle\": {i}, \"from\": \"{}\", \"to\": \"{}\", \"rounds\": {}, \
             \"flow_mods\": {}, \"merges\": {}, \"reverifications\": {}, \
             \"violations\": {}, \"converged\": {}, \"proof_wall_ms\": {:.3}, \
             \"install_ms\": {:.3}, \"pipelined_ms\": {:.3}}}{comma}",
            c.from,
            c.to,
            c.rounds,
            c.mods,
            c.merges,
            c.reverifications,
            c.violations,
            c.converged,
            c.proof_wall_ms,
            c.install_ms,
            c.pipelined_ms
        );
    }
    jline!(json, "    ]");
    jline!(json, "  }},");
    jline!(json, "  \"data_plane\": {{");
    jline!(json, "    \"flows\": {},", dp.flows + 1);
    jline!(json, "    \"delivered\": {},", dp.delivered);
    jline!(json, "    \"unfinished\": {},", dp.unfinished);
    jline!(json, "    \"cell_drops\": {},", dp.cell_drops);
    jline!(json, "    \"cutover_at_ns\": {},", dp.cutover_at_ns);
    jline!(json, "    \"sim_ns\": {},", dp.sim_ns);
    jline!(json, "    \"outcome\": \"{}\",", dp.outcome);
    jline!(json, "    \"fct_p50_ns\": {},", dp.p50_ns);
    jline!(json, "    \"fct_p99_ns\": {}", dp.p99_ns);
    jline!(json, "  }},");
    jline!(json, "  \"headline\": {{");
    jline!(json, "    \"violations\": {violations},");
    jline!(json, "    \"lost_packets\": {lost_packets}");
    jline!(json, "  }}");
    jline!(json, "}}");

    std::fs::create_dir_all("results")?;
    std::fs::write("results/BENCH_transient.json", &json)?;
    print!("{json}");

    // The headline gates — both must be exactly zero, and the runs must
    // have actually finished (a wedged sim or non-converged install is not
    // "zero loss").
    let mut failed = false;
    if violations != 0 {
        eprintln!("FAIL: {violations} verified-property violation(s) at round boundaries");
        failed = true;
    }
    if !all_converged {
        eprintln!("FAIL: a scheduled migration did not converge");
        failed = true;
    }
    if lost_packets != 0 {
        eprintln!("FAIL: {lost_packets} lost packet(s) ({} unfinished flows, {} cell drops)",
            dp.unfinished, dp.cell_drops);
        failed = true;
    }
    if dp.outcome != "Completed" {
        eprintln!("FAIL: data-plane run ended {}", dp.outcome);
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "headline: 0 violations across {} proven round boundaries, 0 lost packets across {} flows",
        control.iter().map(|c| c.rounds).sum::<usize>(),
        dp.flows + 1
    );
    Ok(())
}
