//! Static-verification benchmark artifact: cold full verify, memoized
//! cold/warm verify, warm incremental re-verify (empty-delta
//! `check_delta_cached`), the symmetry-collapse ratio (full walks vs
//! replayed walks), and per-thread-count wall times, at fat-tree k=4/8/16.
//! Writes `results/BENCH_verify.json`.
//!
//! Run with: `cargo run --release -p sdt-bench --bin bench_verify`
//! (`--quick` skips k=16 and shrinks repetitions; used by CI as a smoke
//! test). Exits non-zero if the warm memoized re-verify is not at least as
//! fast as the cold verify at the largest preset measured.
//!
//! Honesty rules (shared with `bench_ctrl`): every thread-count row records
//! both the requested and the available worker count, and on a single-core
//! host only the 1-worker timing is taken — multi-worker wall times there
//! would measure fan-out overhead, not parallel speedup. Findings identity
//! across worker counts is asserted regardless.

use sdt::routing::{default_strategy, RouteTable};
use sdt::topology::fattree::fat_tree;
use sdt::verify::{Intent, TableView, Verifier, VerifyStats, WalkCache};
use sdt_bench::experiments::carrier_cluster;
use std::fmt::Write as _;
use std::time::Instant;

/// `writeln!` into a `String` cannot fail; swallow the `fmt::Result` so the
/// JSON assembly below stays linear.
macro_rules! jline {
    ($($arg:tt)*) => {
        let _ = writeln!($($arg)*);
    };
}

/// One preset's measurements.
struct VerifyPoint {
    k: u32,
    hosts: u32,
    cluster_switches: u32,
    model: &'static str,
    header_classes: usize,
    pairs_checked: usize,
    /// Cold full fast-path verify, no cache, 1 worker (best of `reps`).
    cold_s: f64,
    /// Fast-path stats of the cold verify (symmetry collapse counters).
    cold_stats: VerifyStats,
    /// Cold verify that also fills a fresh [`WalkCache`].
    memo_cold_s: f64,
    /// Full re-verify with the hot cache (every class replays from memo).
    memo_warm_s: f64,
    /// Stats of the memoized warm pass (hit/miss counters).
    memo_warm_stats: VerifyStats,
    /// Walk-cache entries retained after the passes.
    cache_entries: usize,
    /// Warm incremental re-verify: empty-delta `check_delta_cached` against
    /// the previous proof (best of `reps`).
    warm_delta_s: f64,
    /// Fast-path findings byte-identical to the unoptimized reference walk
    /// (`None` when the reference was skipped for runtime at this preset).
    identical_to_reference: Option<bool>,
    /// `(threads_requested, wall_s)` rows actually timed.
    thread_walls: Vec<(usize, f64)>,
}

/// Best wall time of `reps` runs of `f`.
fn best_of<T>(reps: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    match last {
        Some(out) => (best, out),
        None => unreachable!("reps >= 1"),
    }
}

fn verify_point(
    k: u32,
    reps: u32,
    check_reference: bool,
    threads_available: usize,
) -> Option<VerifyPoint> {
    let topo = fat_tree(k);
    let (cluster, model) = carrier_cluster(&topo)?;
    let projector =
        sdt::core::sdt::SdtProjector { merge_entries_on_overflow: true, ..Default::default() };
    let strategy = default_strategy(&topo);
    let routes = RouteTable::build_for_hosts(&topo, strategy.as_ref());
    let projection = match projector.project(&topo, &cluster, &routes) {
        Ok(p) => p,
        Err(e) => panic!("fat-tree k={k} projection failed after sizing: {e}"),
    };
    let view = || TableView::of_synthesis(&projection.synthesis);
    let intent = || Intent::of_projection(&projection, &topo, topo.name());

    // Cold fast-path verify, no cache.
    let (cold_s, cold_v) =
        best_of(reps, || Verifier::check_threads(&cluster, view(), intent(), 1));
    assert!(cold_v.holds(), "fat-tree k={k} failed verification: {}", cold_v.report().summary());

    // Findings byte-identical to the unoptimized reference walk. The
    // reference is O(pairs x path length) with no symmetry collapse, so at
    // k=16 (1M pairs) it is skipped here — `memo_differential.rs` proves
    // the same identity on every preset in the test suite.
    let identical_to_reference = check_reference.then(|| {
        let plain = Verifier::check_plain_threads(&cluster, view(), intent(), 1);
        format!("{:?}", plain.report()) == format!("{:?}", cold_v.report())
    });
    if let Some(ok) = identical_to_reference {
        assert!(ok, "fat-tree k={k}: fast findings differ from the reference walk");
    }

    // Memoized: cold fill, then a full warm re-verify, then the warm
    // incremental path (empty-delta check against the previous proof).
    let mut cache = WalkCache::new();
    let t0 = Instant::now();
    let memo_v = Verifier::check_cached(&cluster, view(), intent(), 1, &mut cache);
    let memo_cold_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let warm_v = Verifier::check_cached(&cluster, view(), intent(), 1, &mut cache);
    let memo_warm_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        format!("{:?}", warm_v.report()),
        format!("{:?}", cold_v.report()),
        "fat-tree k={k}: memoized findings differ from the uncached verify"
    );
    let (warm_delta_s, delta_v) = best_of(reps, || {
        Verifier::check_delta_cached(&memo_v, &[], intent(), 1, &mut cache)
    });
    assert!(delta_v.holds(), "fat-tree k={k}: warm delta re-verify failed");

    // Per-thread-count wall times. With one core available only the
    // 1-worker row is timed (see module docs); identity across counts is
    // asserted either way.
    let counts: &[usize] = if threads_available >= 2 { &[1, 2, 4, 8] } else { &[1] };
    let mut thread_walls = Vec::new();
    for &t in counts {
        let (wall, v) = best_of(reps, || Verifier::check_threads(&cluster, view(), intent(), t));
        assert_eq!(
            format!("{:?}", v.report()),
            format!("{:?}", cold_v.report()),
            "fat-tree k={k}: {t} workers changed the findings"
        );
        thread_walls.push((t, wall));
    }

    Some(VerifyPoint {
        k,
        hosts: topo.num_hosts(),
        cluster_switches: cluster.num_switches(),
        model,
        header_classes: cold_v.report().header_classes,
        pairs_checked: cold_v.report().pairs_checked,
        cold_s,
        cold_stats: cold_v.stats().clone(),
        memo_cold_s,
        memo_warm_s,
        memo_warm_stats: warm_v.stats().clone(),
        cache_entries: cache.entries(),
        warm_delta_s,
        identical_to_reference,
        thread_walls,
    })
}

fn jstats(s: &VerifyStats) -> String {
    format!(
        "{{\"symmetric\": {}, \"pairs_walked_full\": {}, \"pairs_replayed\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}}}",
        s.symmetric, s.pairs_walked_full, s.pairs_replayed, s.cache_hits, s.cache_misses
    )
}

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = if quick { 1 } else { 3 };
    let ks: &[u32] = if quick { &[4, 8] } else { &[4, 8, 16] };

    let mut points = Vec::new();
    for &k in ks {
        // The reference walk is quadratic in hosts with no collapse; at
        // k=16 it would dominate the benchmark's runtime, and the identity
        // is already proven per-preset by the differential test suite.
        match verify_point(k, reps, k <= 8, threads_available) {
            Some(p) => {
                eprintln!(
                    "verify k={k} [{}]: cold {:.1} ms, memo warm {:.1} ms, warm delta {:.2} ms \
                     ({} classes, {} full walks, {} replayed, {} cache entries)",
                    p.model,
                    p.cold_s * 1e3,
                    p.memo_warm_s * 1e3,
                    p.warm_delta_s * 1e3,
                    p.header_classes,
                    p.cold_stats.pairs_walked_full,
                    p.cold_stats.pairs_replayed,
                    p.cache_entries
                );
                points.push(p);
            }
            None => eprintln!("verify k={k}: no feasible cluster, skipped"),
        }
    }

    let mut json = String::new();
    jline!(json, "{{");
    jline!(json, "  \"quick\": {quick},");
    jline!(json, "  \"threads_available\": {threads_available},");
    if threads_available < 2 {
        jline!(
            json,
            "  \"threads_note\": \"host offers 1 core; only the 1-worker wall time is \
             recorded (multi-worker timings there measure fan-out overhead, not speedup) — \
             findings identity across worker counts is still asserted\","
        );
    }
    jline!(json, "  \"verify\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let identical = match p.identical_to_reference {
            Some(ok) => format!("{ok}"),
            None => "null".into(),
        };
        let threads: Vec<String> = p
            .thread_walls
            .iter()
            .map(|(t, w)| {
                format!(
                    "{{\"threads_requested\": {t}, \
                     \"threads_available\": {threads_available}, \"wall_s\": {w:.6}}}"
                )
            })
            .collect();
        jline!(
            json,
            "    {{\"k\": {}, \"hosts\": {}, \"cluster_switches\": {}, \"model\": \"{}\", \
             \"header_classes\": {}, \"pairs_checked\": {},",
            p.k,
            p.hosts,
            p.cluster_switches,
            p.model,
            p.header_classes,
            p.pairs_checked
        );
        jline!(json, "     \"cold_s\": {:.6}, \"cold_stats\": {},", p.cold_s, jstats(&p.cold_stats));
        jline!(
            json,
            "     \"memo_cold_s\": {:.6}, \"memo_warm_s\": {:.6}, \"memo_warm_stats\": {}, \
             \"cache_entries\": {},",
            p.memo_cold_s,
            p.memo_warm_s,
            jstats(&p.memo_warm_stats),
            p.cache_entries
        );
        jline!(
            json,
            "     \"warm_delta_s\": {:.6}, \"identical_to_reference\": {identical},",
            p.warm_delta_s
        );
        jline!(json, "     \"threads\": [{}]}}{comma}", threads.join(", "));
    }
    jline!(json, "  ]");
    jline!(json, "}}");

    std::fs::create_dir_all("results")?;
    std::fs::write("results/BENCH_verify.json", &json)?;
    print!("{json}");

    // CI gate: at the largest preset measured, the warm memoized re-verify
    // must not be slower than the cold verify.
    match points.last() {
        Some(p) if p.warm_delta_s <= p.cold_s => Ok(()),
        Some(p) => {
            eprintln!(
                "FAIL: warm re-verify ({:.1} ms) slower than cold verify ({:.1} ms) at k={}",
                p.warm_delta_s * 1e3,
                p.cold_s * 1e3,
                p.k
            );
            std::process::exit(1);
        }
        None => {
            eprintln!("FAIL: no preset produced a measurement");
            std::process::exit(1);
        }
    }
}
