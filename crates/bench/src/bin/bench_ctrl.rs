//! Control-plane benchmark artifact: flow-table lookup (indexed vs the
//! linear oracle), the full reconfiguration pipeline (routes → projection +
//! synthesis → static verify → epoch diff → install) at fat-tree k=4/8/16,
//! multi-tenant admission at 1/4/16-slice scale, and sequential-vs-parallel
//! static verification with a byte-identical findings check. Writes
//! `results/BENCH_ctrl.json`.
//!
//! Run with: `cargo run --release -p sdt-bench --bin bench_ctrl`
//! (`--quick` skips k=16 and shrinks the lookup rep counts; used by CI as a
//! smoke test). Exits non-zero if the indexed lookup is not at least as
//! fast as the linear scan at 512 entries.

use sdt::core::cluster::ClusterBuilder;
use sdt::core::methods::SwitchModel;
use sdt::core::sdt::{SdtProjection, SdtProjector};
use sdt::core::walk::instantiate;
use sdt::openflow::{
    diff_tables, Action, FlowEntry, FlowMatch, FlowMod, FlowTable, HostAddr, PacketMeta, PortNo,
};
use sdt::routing::{default_strategy, generic::Bfs, RouteTable};
use sdt::tenancy::SliceManager;
use sdt::topology::chain::{chain, ring};
use sdt::topology::fattree::fat_tree;
use sdt::topology::meshtorus::mesh;
use sdt::topology::Topology;
use sdt::verify::{Intent, TableView, Verifier};
use sdt_bench::experiments::{carrier_cluster, fmt_ns};
use std::fmt::Write as _;
use std::time::Instant;

/// `writeln!` into a `String` cannot fail; swallow the `fmt::Result` so the
/// JSON assembly below stays linear.
macro_rules! jline {
    ($($arg:tt)*) => {
        let _ = writeln!($($arg)*);
    };
}

/// Deterministic xorshift64* probe-address generator — no RNG dependency,
/// same probe stream on every run.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// An SDT-shaped table-1 workload: `n` (sub-switch metadata, destination)
/// routing entries over 4 sub-switches, plus a probe set with ~1/8 misses.
fn lookup_point(n: usize, reps: u32) -> (f64, f64) {
    let mut table = FlowTable::new(n + 1);
    for i in 0..n {
        let m = FlowMatch::to_dst(HostAddr(i as u32)).and_metadata((i % 4) as u32);
        let e = FlowEntry { m, priority: 1, action: Action::Output(PortNo((i % 48) as u16)) };
        if let Err(e) = table.apply(FlowMod::Add(e)) {
            panic!("building {n}-entry table: {e}");
        }
    }
    let mut rng = XorShift(0x5d70_c0de_2026_0806 ^ n as u64);
    let probes: Vec<(PacketMeta, Option<u32>)> = (0..1024)
        .map(|_| {
            let r = rng.next();
            // 1 in 8 probes misses (unknown destination in a known
            // sub-switch); the rest hit a random installed entry.
            let dst = if r % 8 == 0 { n as u32 + (r >> 8) as u32 % 64 } else { (r >> 8) as u32 % n as u32 };
            let md = Some(if r % 8 == 0 { 0 } else { dst % 4 });
            let meta = PacketMeta {
                in_port: PortNo(1),
                src: HostAddr(0),
                dst: HostAddr(dst),
                l4_src: 4791,
                l4_dst: 4791,
            };
            (meta, md)
        })
        .collect();
    // The two paths must agree on every probe before we time anything.
    for (meta, md) in &probes {
        assert_eq!(
            table.lookup_with(meta, *md),
            table.linear_lookup_with(meta, *md),
            "indexed and linear lookup disagree at {n} entries"
        );
    }
    let time_ns = |f: &dyn Fn(&PacketMeta, Option<u32>) -> usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            let mut acc = 0usize;
            for _ in 0..reps {
                for (meta, md) in &probes {
                    acc += f(meta, *md);
                }
            }
            let ns = t0.elapsed().as_nanos() as f64 / (reps as u128 * probes.len() as u128) as f64;
            std::hint::black_box(acc);
            best = best.min(ns);
        }
        best
    };
    let indexed = time_ns(&|m, md| table.lookup_with(m, md).map_or(0, |_| 1));
    let linear = time_ns(&|m, md| table.linear_lookup_with(m, md).map_or(0, |_| 1));
    (indexed, linear)
}

/// One reconfiguration-pipeline measurement: every control-plane stage from
/// a logical topology to programmed switches, timed separately.
struct PipelinePoint {
    k: u32,
    hosts: u32,
    cluster_switches: u32,
    model: &'static str,
    routes_s: f64,
    project_s: f64,
    verify_s: f64,
    diff_s: f64,
    diff_mods: usize,
    install_s: f64,
    table_entries: usize,
}

fn pipeline_point(k: u32) -> Option<(PipelinePoint, PipelineState)> {
    let topo = fat_tree(k);
    let (cluster, model) = carrier_cluster(&topo)?;
    let projector = SdtProjector { merge_entries_on_overflow: true, ..Default::default() };

    let t = Instant::now();
    let strategy = default_strategy(&topo);
    let routes = RouteTable::build_for_hosts(&topo, strategy.as_ref());
    let routes_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let projection = match projector.project(&topo, &cluster, &routes) {
        Ok(p) => p,
        Err(e) => panic!("fat-tree k={k} projection failed after sizing: {e}"),
    };
    let project_s = t.elapsed().as_secs_f64();

    // The verify stage times the production proof path — memoized walks at
    // the auto-sized worker count — exactly what admission and the epoch
    // scheduler pay, not the unmemoized single-thread baseline (which
    // dominated the k=16 row and misstated the pipeline's bottleneck).
    let t = Instant::now();
    let mut cache = sdt::verify::WalkCache::new();
    let v = Verifier::check_cached(
        &cluster,
        TableView::of_synthesis(&projection.synthesis),
        Intent::of_projection(&projection, &topo, topo.name()),
        sdt::verify::verify_threads(),
        &mut cache,
    );
    let verify_s = t.elapsed().as_secs_f64();
    assert!(v.holds(), "fat-tree k={k} failed static verification: {}", v.report().summary());

    // Epoch diff: reroute the same topology with plain BFS and compute the
    // flow-mod delta the reconfiguration would install.
    let alt_routes = RouteTable::build_for_hosts(&topo, &Bfs::new(&topo));
    let alt = match projector.project(&topo, &cluster, &alt_routes) {
        Ok(p) => p,
        Err(e) => panic!("fat-tree k={k} BFS projection failed: {e}"),
    };
    let t = Instant::now();
    let mut diff_mods = 0usize;
    for sw in 0..cluster.num_switches() as usize {
        diff_mods +=
            diff_tables(&projection.synthesis.table0[sw], &alt.synthesis.table0[sw]).len();
        diff_mods +=
            diff_tables(&projection.synthesis.table1[sw], &alt.synthesis.table1[sw]).len();
    }
    let diff_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let switches = instantiate(&cluster, &projection);
    let install_s = t.elapsed().as_secs_f64();
    let table_entries = switches.iter().map(|s| s.total_entries()).sum();

    let point = PipelinePoint {
        k,
        hosts: topo.num_hosts(),
        cluster_switches: cluster.num_switches(),
        model,
        routes_s,
        project_s,
        verify_s,
        diff_s,
        diff_mods,
        install_s,
        table_entries,
    };
    Some((point, PipelineState { topo, cluster, projection }))
}

/// What the parallel-verify comparison needs to re-run a pipeline's check.
struct PipelineState {
    topo: Topology,
    cluster: sdt::core::cluster::PhysicalCluster,
    projection: SdtProjection,
}

/// Best-of-3 wall time for a full static verification at a thread count,
/// returning the last verifier for the findings comparison.
fn timed_check(
    cluster: &sdt::core::cluster::PhysicalCluster,
    view: &TableView,
    intent: &Intent,
    threads: usize,
) -> (f64, Verifier) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..3 {
        let (v, i) = (view.clone(), intent.clone());
        let t0 = Instant::now();
        let verifier = Verifier::check_threads(cluster, v, i, threads);
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(verifier);
    }
    match last {
        Some(v) => (best, v),
        None => unreachable!("loop ran three times"),
    }
}

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());

    // ---- 1. lookup: indexed vs linear oracle -------------------------
    let lookup_reps = if quick { 40 } else { 400 };
    let sizes = [64usize, 512, 4096];
    let lookup: Vec<(usize, f64, f64)> = sizes
        .iter()
        .map(|&n| {
            let (indexed, linear) = lookup_point(n, lookup_reps);
            eprintln!(
                "lookup {n:>5} entries: indexed {} linear {} ({:.1}x)",
                fmt_ns(indexed),
                fmt_ns(linear),
                linear / indexed
            );
            (n, indexed, linear)
        })
        .collect();

    // ---- 2. reconfiguration pipeline at k = 4 / 8 / 16 ---------------
    let ks: &[u32] = if quick { &[4, 8] } else { &[4, 8, 16] };
    let mut pipeline = Vec::new();
    let mut k8_state = None;
    for &k in ks {
        match pipeline_point(k) {
            Some((p, state)) => {
                eprintln!(
                    "pipeline k={k} [{}]: routes {:.3}s project {:.3}s verify {:.3}s \
                     diff {:.3}s ({} mods) install {:.3}s",
                    p.model, p.routes_s, p.project_s, p.verify_s, p.diff_s, p.diff_mods, p.install_s
                );
                if k == 8 {
                    k8_state = Some(state);
                }
                pipeline.push(p);
            }
            None => eprintln!("pipeline k={k}: no feasible cluster, skipped"),
        }
    }

    // ---- 3. multi-tenant admission at 1 / 4 / 16 slices ---------------
    let mut slices = Vec::new();
    let mut mgr16 = None;
    for &n in &[1usize, 4, 16] {
        let cluster = ClusterBuilder::new(SwitchModel::openflow_128x100g(), 4)
            .hosts_per_switch(24)
            .inter_links_per_pair(24)
            .build();
        let mut mgr = SliceManager::new(cluster);
        let t0 = Instant::now();
        for i in 0..n {
            let topo = match i % 3 {
                0 => chain(4),
                1 => ring(5),
                _ => mesh(&[2, 2]),
            };
            if let Err(e) = mgr.create(&format!("s{i}"), &topo) {
                panic!("slice {i}/{n} admission failed: {e}");
            }
        }
        let admit_s = t0.elapsed().as_secs_f64();
        // Time a cold full proof of the live tables — `verify_report()`
        // would serve the verifier the last admission already cached.
        let t0 = Instant::now();
        let v = Verifier::check(
            mgr.cluster(),
            TableView::of_switches(mgr.switches()),
            mgr.intent(),
        );
        let verify_s = t0.elapsed().as_secs_f64();
        let report = v.report();
        assert!(report.holds(), "{n}-slice deployment failed verification");
        eprintln!(
            "slices {n:>2}: admit {admit_s:.3}s verify {verify_s:.3}s \
             ({} classes, {} pairs walked)",
            report.header_classes, report.pairs_walked
        );
        let stats = (report.header_classes, report.pairs_walked);
        slices.push((n, admit_s, verify_s, stats.0, stats.1));
        if n == 16 {
            mgr16 = Some(mgr);
        }
    }

    // ---- 4. sequential vs parallel static verification ----------------
    // Honest wall-clock at 1 vs 4 workers plus a byte-identical findings
    // check. Every row records both the requested and the available worker
    // count. On a single-core host the timed comparison is skipped — a
    // "speedup" there would only measure fan-out overhead and always land
    // below 1.0 — but the findings-identity check still runs at 4 workers.
    let threads_requested = 4usize;
    let mut verify_parallel = Vec::new();
    let mut configs: Vec<(String, sdt::core::cluster::PhysicalCluster, TableView, Intent)> =
        Vec::new();
    if let Some(s) = k8_state {
        configs.push((
            "fat-tree k=8 synthesis".into(),
            s.cluster.clone(),
            TableView::of_synthesis(&s.projection.synthesis),
            Intent::of_projection(&s.projection, &s.topo, s.topo.name()),
        ));
    }
    if let Some(m) = mgr16 {
        configs.push((
            "16-slice live tables".into(),
            m.cluster().clone(),
            TableView::of_switches(m.switches()),
            m.intent(),
        ));
    }
    for (name, cluster, view, intent) in &configs {
        let (seq_s, seq_v) = timed_check(cluster, view, intent, 1);
        let par_v =
            Verifier::check_threads(cluster, view.clone(), intent.clone(), threads_requested);
        let identical = format!("{:?}", seq_v.report()) == format!("{:?}", par_v.report());
        assert!(identical, "{name}: thread count changed the findings");
        let par_s = if threads_available >= 2 {
            Some(timed_check(cluster, view, intent, threads_requested).0)
        } else {
            None
        };
        match par_s {
            Some(p) => eprintln!(
                "verify [{name}]: 1 thread {seq_s:.3}s, {threads_requested} threads {p:.3}s \
                 ({:.2}x, {threads_available} core(s) available)",
                seq_s / p
            ),
            None => eprintln!(
                "verify [{name}]: 1 thread {seq_s:.3}s; {threads_requested}-thread timing \
                 skipped ({threads_available} core available), findings identical"
            ),
        }
        verify_parallel.push((name.clone(), seq_s, par_s, identical));
    }

    // ---- JSON artifact -------------------------------------------------
    let mut json = String::new();
    jline!(json, "{{");
    jline!(json, "  \"quick\": {quick},");
    jline!(json, "  \"threads_available\": {threads_available},");
    jline!(json, "  \"lookup\": [");
    for (i, (n, indexed, linear)) in lookup.iter().enumerate() {
        let comma = if i + 1 < lookup.len() { "," } else { "" };
        jline!(
            json,
            "    {{\"entries\": {n}, \"indexed_ns\": {indexed:.1}, \
             \"linear_ns\": {linear:.1}, \"speedup\": {:.3}}}{comma}",
            linear / indexed
        );
    }
    jline!(json, "  ],");
    jline!(json, "  \"pipeline\": [");
    for (i, p) in pipeline.iter().enumerate() {
        let comma = if i + 1 < pipeline.len() { "," } else { "" };
        jline!(
            json,
            "    {{\"k\": {}, \"hosts\": {}, \"cluster_switches\": {}, \"model\": \"{}\", \
             \"routes_s\": {:.6}, \"project_synthesize_s\": {:.6}, \
             \"verify_s\": {:.6}, \"epoch_diff_s\": {:.6}, \"epoch_diff_mods\": {}, \
             \"install_s\": {:.6}, \"table_entries\": {}}}{comma}",
            p.k,
            p.hosts,
            p.cluster_switches,
            p.model,
            p.routes_s,
            p.project_s,
            p.verify_s,
            p.diff_s,
            p.diff_mods,
            p.install_s,
            p.table_entries
        );
    }
    jline!(json, "  ],");
    jline!(json, "  \"slices\": [");
    for (i, (n, admit_s, verify_s, classes, walked)) in slices.iter().enumerate() {
        let comma = if i + 1 < slices.len() { "," } else { "" };
        jline!(
            json,
            "    {{\"slices\": {n}, \"admit_s\": {admit_s:.6}, \"verify_s\": {verify_s:.6}, \
             \"header_classes\": {classes}, \"pairs_walked\": {walked}}}{comma}"
        );
    }
    jline!(json, "  ],");
    if threads_available < 2 {
        jline!(
            json,
            "  \"verify_parallel_note\": \"host offers 1 core; the timed multi-worker \
             comparison is skipped (it would only measure fan-out overhead) — \
             findings identity at {threads_requested} workers is still checked\","
        );
    }
    jline!(json, "  \"verify_parallel\": [");
    for (i, (name, seq_s, par_s, identical)) in verify_parallel.iter().enumerate() {
        let comma = if i + 1 < verify_parallel.len() { "," } else { "" };
        let timing = match par_s {
            Some(p) => format!("\"par_s\": {p:.6}, \"speedup\": {:.3}", seq_s / p),
            None => "\"par_s\": null, \"speedup\": null, \"skipped\": \
                     \"single-core host\""
                .into(),
        };
        jline!(
            json,
            "    {{\"config\": \"{name}\", \"seq_s\": {seq_s:.6}, {timing}, \
             \"threads_requested\": {threads_requested}, \
             \"threads_available\": {threads_available}, \
             \"identical_findings\": {identical}}}{comma}"
        );
    }
    jline!(json, "  ]");
    jline!(json, "}}");

    std::fs::create_dir_all("results")?;
    std::fs::write("results/BENCH_ctrl.json", &json)?;
    print!("{json}");

    // CI gate: the index must never lose to the linear scan at 512 entries.
    let gate = lookup.iter().find(|(n, _, _)| *n == 512).map(|(_, i, l)| l / i);
    match gate {
        Some(s) if s >= 1.0 => Ok(()),
        Some(s) => {
            eprintln!("FAIL: indexed lookup slower than linear at 512 entries ({s:.3}x)");
            std::process::exit(1);
        }
        None => {
            eprintln!("FAIL: 512-entry lookup point missing");
            std::process::exit(1);
        }
    }
}
