//! Regenerates Table II: SDT vs SP / SP-OS / TurboNet — reconfiguration
//! time, hardware cost, max projectable link speed per DC topology, and the
//! 261-WAN projectability row.

use sdt::core::methods::{CostModel, Method, ReconfigEstimate, SwitchModel};
use sdt_bench::{speed_cell, table2_dc_grid, table2_wan_counts};

fn main() {
    println!("Table II — Comparison between SDT and other TP methods\n");

    // Reconfiguration time (fat-tree k=4 scale: 48 links, ~300 entries).
    println!("Reconfiguration time (48 links / ~300 flow entries):");
    println!("  paper: SP > 1 hour | SP-OS 100ms~1s | TurboNet 10s~ | SDT 100ms~1s");
    print!("  ours : ");
    for m in Method::ALL {
        let est = ReconfigEstimate::of(m, 48, 300);
        let t = est.time_ns as f64;
        let label = if t >= 3.6e12 {
            format!("{:.1} h", t / 3.6e12)
        } else if t >= 1e9 {
            format!("{:.0} s", t / 1e9)
        } else {
            format!("{:.0} ms", t / 1e6)
        };
        print!("{} {}{} | ", m.name(), label, if est.manual { " (manual)" } else { "" });
    }
    println!("\n");

    // Hardware requirement + cost.
    println!("Hardware requirement and cost (one switch per column):");
    for m in Method::ALL {
        let c64 = CostModel::of(m, &SwitchModel::openflow_64x100g(), 1, 128).total_usd();
        let c128 = CostModel::of(m, &SwitchModel::openflow_128x100g(), 1, 256).total_usd();
        println!(
            "  {:<9} {:<22} 64x100G >=${:<8} 128x100G >=${}",
            m.name(),
            m.hardware().describe(),
            c64,
            c128
        );
    }
    println!("  paper: SP >$10k | SP-OS >$50k | TurboNet >$15k/$30k | SDT >$5k/$10k\n");

    // DC topology grid.
    println!("Max projectable link speed (ours vs [paper], x = not projectable):");
    println!(
        "{:<18}{:>14}{:>14}{:>14}{:>14}{:>14}{:>14}{:>14}{:>14}",
        "", "SP/64", "SP/128", "SPOS/64", "SPOS/128", "TN/64", "TN/128", "SDT/64", "SDT/128"
    );
    for row in table2_dc_grid() {
        print!("{:<18}", row.label);
        for (_, _, ours, paper) in &row.cells {
            let p = match paper {
                Some(v) => format!("[{}]", speed_cell(*v)),
                None => String::new(),
            };
            print!("{:>14}", format!("{}{}", speed_cell(*ours), p));
        }
        println!();
    }

    // WAN row.
    println!("\n261 Internet(-Zoo-like) WAN topologies projectable:");
    println!("  paper: SP 260 | SP-OS 260 | TurboNet 248/249 | SDT 260");
    for (label, model, count) in [
        ("4x 64x100G ", SwitchModel::openflow_64x100g(), 4u32),
        ("2x 128x100G", SwitchModel::openflow_128x100g(), 2),
    ] {
        print!("  ours ({label}): ");
        for (m, n) in table2_wan_counts(&model, count) {
            print!("{} {n} | ", m.name());
        }
        println!();
    }
    println!("\nNotes: SDT == SP == SP-OS in pure projectability (same port mathematics);");
    println!("TurboNet loses half the bandwidth to loopback transit and the densest");
    println!("topologies outright. Torus rows are conservative vs the paper (see");
    println!("EXPERIMENTS.md: the paper's torus accounting is looser than its own");
    println!("§IV-A port rule, which we implement exactly).");
}
