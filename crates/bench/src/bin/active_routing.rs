//! Regenerates the §VI-E active-routing experiment: IMB Alltoall and an
//! adversarial group-shift pattern on Dragonfly(4,9,2), static minimal vs
//! Network-Monitor-driven UGAL.

use sdt::topology::dragonfly::dragonfly;
use sdt::topology::HostId;
use sdt::workloads::apps::{imb_alltoall, permutation_shift};
use sdt::workloads::select_nodes;
use sdt_bench::{active_routing_compare, fmt_ns};

fn main() {
    println!("§VI-E — Active routing on Dragonfly(4,9,2), 32 nodes\n");
    let topo = dragonfly(4, 9, 2, 2);
    let random_hosts = select_nodes(&topo, 32, 2023);
    let packed_hosts: Vec<HostId> = (0..32).map(HostId).collect();
    let cases = [
        ("IMB Alltoall, random nodes", imb_alltoall(32, 64 * 1024, 2), &random_hosts),
        ("group-shift permutation, packed nodes", permutation_shift(32, 8, 512 * 1024, 4), &packed_hosts),
    ];
    println!("{:<40}{:>14}{:>14}{:>12}", "workload", "minimal ACT", "active ACT", "reduction");
    for (label, trace, hosts) in cases {
        let r = active_routing_compare(&trace, hosts);
        println!(
            "{:<40}{:>14}{:>14}{:>11.1}%",
            label,
            fmt_ns(r.minimal_act_ns as f64),
            fmt_ns(r.adaptive_act_ns as f64),
            r.reduction_pct()
        );
    }
    println!("\npaper: active routing reduced Alltoall ACT on their 32-of-72 placement.");
    println!("ours: the gain concentrates where adaptivity has room to help — the");
    println!("adversarial pattern (every group's load aimed at one global link) — while");
    println!("uniform alltoall stays within a few percent of minimal routing, consistent");
    println!("with the UGAL literature.");
}
