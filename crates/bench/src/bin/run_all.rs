//! Run every table/figure regenerator and archive the output under
//! `results/` — one file per paper artifact.
//!
//! The regenerators are independent processes, so they fan out across the
//! sweep pool (`SDT_BENCH_THREADS` workers, default = core count); outputs
//! are archived and reported in the fixed artifact order regardless of
//! completion order.
//!
//! Run with: `cargo run --release -p sdt-bench --bin run_all`

use sdt_bench::{bench_threads, par_map};
use std::io::Write;
use std::path::PathBuf;
use std::process::Command;

const BINS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "fig11",
    "fig12",
    "fig13",
    "active_routing",
    "ablations",
    "bench_engine",
];

enum Run {
    Ok { secs: f64, path: PathBuf },
    Failed { code: Option<i32>, stderr: Vec<u8> },
    Launch(std::io::Error),
}

fn main() -> std::io::Result<()> {
    // Sibling binaries live next to this one.
    let dir = match std::env::current_exe()?.parent() {
        Some(p) => p.to_path_buf(),
        None => unreachable!("an executable path always has a parent dir"),
    };
    let out_dir = PathBuf::from("results");
    std::fs::create_dir_all(&out_dir)?;
    let started = std::time::Instant::now();
    println!("running {} regenerators on {} threads...", BINS.len(), bench_threads());
    let runs = par_map(BINS, |name| {
        let t0 = std::time::Instant::now();
        // Children inherit SDT_BENCH_THREADS; when the caller pinned a
        // thread count it bounds each child's inner sweep too.
        match Command::new(dir.join(name)).output() {
            Ok(o) if o.status.success() => {
                let path = out_dir.join(format!("{name}.txt"));
                match std::fs::write(&path, &o.stdout) {
                    Ok(()) => Run::Ok { secs: t0.elapsed().as_secs_f64(), path },
                    Err(e) => Run::Launch(e),
                }
            }
            Ok(o) => Run::Failed { code: o.status.code(), stderr: o.stderr },
            Err(e) => Run::Launch(e),
        }
    });
    let mut failures = 0;
    for (name, run) in BINS.iter().zip(runs) {
        print!("{name:<16}... ");
        match run {
            Run::Ok { secs, path } => println!("ok ({secs:.1} s) -> {}", path.display()),
            Run::Failed { code, stderr } => {
                failures += 1;
                println!("FAILED (status {code:?})");
                std::io::stderr().write_all(&stderr)?;
            }
            Run::Launch(e) => {
                failures += 1;
                println!("FAILED to launch: {e} (build with `cargo build --release -p sdt-bench --bins` first)");
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "\nall artifacts regenerated under results/ in {:.1} s",
        started.elapsed().as_secs_f64()
    );
    Ok(())
}
