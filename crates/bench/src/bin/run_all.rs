//! Run every table/figure regenerator and archive the output under
//! `results/` — one file per paper artifact.
//!
//! Run with: `cargo run --release -p sdt-bench --bin run_all`

use std::io::Write;
use std::path::PathBuf;
use std::process::Command;

const BINS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "fig11",
    "fig12",
    "fig13",
    "active_routing",
    "ablations",
];

fn main() -> std::io::Result<()> {
    // Sibling binaries live next to this one.
    let dir = std::env::current_exe()?
        .parent()
        .expect("binary has a parent dir")
        .to_path_buf();
    let out_dir = PathBuf::from("results");
    std::fs::create_dir_all(&out_dir)?;
    let mut failures = 0;
    for name in BINS {
        let exe = dir.join(name);
        print!("running {name:<16}... ");
        std::io::stdout().flush()?;
        let started = std::time::Instant::now();
        let output = Command::new(&exe).output();
        match output {
            Ok(o) if o.status.success() => {
                let path = out_dir.join(format!("{name}.txt"));
                std::fs::write(&path, &o.stdout)?;
                println!("ok ({:.1} s) -> {}", started.elapsed().as_secs_f64(), path.display());
            }
            Ok(o) => {
                failures += 1;
                println!("FAILED (status {:?})", o.status.code());
                std::io::stderr().write_all(&o.stderr)?;
            }
            Err(e) => {
                failures += 1;
                println!("FAILED to launch: {e} (build with `cargo build --release -p sdt-bench --bins` first)");
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("\nall artifacts regenerated under results/");
    Ok(())
}
