//! Regenerates Fig. 13: evaluation times of full testbed, simulator, and
//! SDT for IMB Alltoall on Dragonfly(4,9,2) over growing node counts.
//! SDT's time includes the topology deployment; the simulator's is its
//! measured wall-clock.

use sdt::controller::SdtController;
use sdt::core::methods::SwitchModel;
use sdt::topology::dragonfly::dragonfly;
use sdt_bench::{fig13_point, fmt_ns};

fn main() {
    println!("Fig. 13 — Evaluation times: full testbed vs simulator vs SDT");
    println!("(IMB Alltoall, Dragonfly a=4 g=9 h=2, 64 KiB per pair)\n");
    let topo = dragonfly(4, 9, 2, 2);
    let mut ctl = match SdtController::for_campaign(
        std::slice::from_ref(&topo),
        SwitchModel::openflow_128x100g(),
        3,
    ) {
        Ok(c) => c,
        Err(e) => panic!("dragonfly(4,9,2) must fit on 3x128: {e}"),
    };
    let deploy_ns = match ctl.deploy(&topo) {
        Ok(d) => d.deploy_time_ns,
        Err(e) => panic!("deploy failed: {e}"),
    };
    println!("SDT deployment time: {}\n", fmt_ns(deploy_ns as f64));
    println!(
        "{:>6}{:>18}{:>18}{:>18}",
        "nodes", "full testbed", "simulator (wall)", "SDT (deploy+ACT)"
    );
    for n in [1u32, 2, 4, 8, 16, 32] {
        let p = fig13_point(&topo, n, 64 * 1024, deploy_ns);
        println!(
            "{:>6}{:>18}{:>18}{:>18}",
            n,
            fmt_ns(p.act_ns as f64),
            fmt_ns(p.sim_wall_ns as f64),
            fmt_ns(p.sdt_eval_ns as f64)
        );
    }
    println!("\npaper shape: at small node counts SDT's deployment time dominates (still");
    println!("cheaper than simulating); as nodes grow, simulator time climbs steeply while");
    println!("SDT stays at deployment + real-time ACT.");
}
