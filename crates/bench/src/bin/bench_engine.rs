//! Engine hot-path benchmark artifact: wall-clock for the Table IV
//! workloads on fat-tree k=4, run once sequentially and once across the
//! sweep thread pool, plus the dense-vs-HashMap route-lookup comparison.
//! Writes `results/BENCH_engine.json`.
//!
//! Run with: `cargo run --release -p sdt-bench --bin bench_engine`

use sdt::routing::{generic::Bfs, Route, RouteTable};
use sdt::sim::{run_trace, SimConfig};
use sdt::topology::fattree::fat_tree;
use sdt::topology::SwitchId;
use sdt::workloads::select_nodes;
use sdt_bench::{bench_threads, par_map_threads, table4_workloads, SDT_EXTRA_NS};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// `writeln!` into a `String` cannot fail; swallow the `fmt::Result` so the
/// JSON assembly below stays linear.
macro_rules! jline {
    ($($arg:tt)*) => {
        let _ = writeln!($($arg)*);
    };
}

fn main() -> std::io::Result<()> {
    let topo = fat_tree(4);
    let routes = RouteTable::build(&topo, &Bfs::new(&topo));
    let ranks = topo.num_hosts().min(16);
    let workloads = table4_workloads(ranks);
    let threads = bench_threads();

    let sweep = |nthreads: usize| -> (f64, Vec<(String, u64, u128)>) {
        let t0 = Instant::now();
        let cells = par_map_threads(nthreads, &workloads, |(_, trace)| {
            let hosts = select_nodes(&topo, trace.num_ranks(), 2023);
            let cfg = SimConfig { extra_switch_ns: SDT_EXTRA_NS, ..SimConfig::testbed_10g() };
            let res = run_trace(&topo, routes.clone(), cfg, trace, &hosts);
            match res.act_ns {
                Some(act) => (trace.name.clone(), act, res.wall_ns),
                None => panic!("{} did not complete", trace.name),
            }
        });
        (t0.elapsed().as_secs_f64(), cells)
    };
    // Simulated results must be identical; wall-clock (the third field)
    // legitimately differs between passes.
    let acts = |cells: &[(String, u64, u128)]| -> Vec<(String, u64)> {
        cells.iter().map(|(n, a, _)| (n.clone(), *a)).collect()
    };
    let (seq_secs, par_secs, seq_cells, note) = if threads <= 1 {
        // One worker: `sweep(threads)` and `sweep(1)` are the same
        // expression, so timing them separately only measures noise (a
        // past artifact recorded a phantom 0.94x "slowdown" that way).
        // Warm up untimed, measure once, and record the single honest
        // number for both columns.
        let _ = sweep(1);
        let (secs, cells) = sweep(1);
        (secs, secs, cells, Some("pool degenerated to sequential (1 thread)"))
    } else {
        // Warm up untimed, then best-of-3 interleaved passes so neither
        // side pays the cold-cache handicap.
        let _ = sweep(threads);
        let mut seq_best = f64::INFINITY;
        let mut par_best = f64::INFINITY;
        let mut cells = None;
        for _ in 0..3 {
            let (p, par_cells) = sweep(threads);
            let (s, seq_cells) = sweep(1);
            assert_eq!(acts(&seq_cells), acts(&par_cells), "parallel sweep changed results");
            par_best = par_best.min(p);
            seq_best = seq_best.min(s);
            cells = Some(seq_cells);
        }
        match cells {
            Some(c) => (seq_best, par_best, c, None),
            None => unreachable!("loop ran three times"),
        }
    };

    // Route-lookup microcomparison: dense table vs the HashMap it replaced.
    let pairs: Vec<(SwitchId, SwitchId)> = routes.iter().map(|(&p, _)| p).collect();
    let baseline: HashMap<(SwitchId, SwitchId), Route> =
        routes.iter().map(|(&p, r)| (p, r.clone())).collect();
    let time_ns = |f: &dyn Fn() -> usize| -> f64 {
        let reps = 2_000u32;
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            let mut acc = 0usize;
            for _ in 0..reps {
                acc += f();
            }
            let ns = t0.elapsed().as_nanos() as f64 / reps as f64;
            std::hint::black_box(acc);
            best = best.min(ns);
        }
        best
    };
    let dense_ns = time_ns(&|| {
        pairs.iter().map(|&(s, d)| routes.try_route(s, d).map_or(0, |r| r.hops.len())).sum()
    });
    let hashmap_ns = time_ns(&|| {
        pairs.iter().map(|&(s, d)| baseline.get(&(s, d)).map_or(0, |r| r.hops.len())).sum()
    });

    let mut json = String::new();
    jline!(json, "{{");
    jline!(json, "  \"topology\": \"{}\",", topo.name());
    jline!(json, "  \"threads\": {threads},");
    jline!(json, "  \"sweep_sequential_s\": {seq_secs:.6},");
    jline!(json, "  \"sweep_parallel_s\": {par_secs:.6},");
    jline!(json, "  \"sweep_speedup\": {:.3},", seq_secs / par_secs);
    if let Some(n) = note {
        jline!(json, "  \"sweep_note\": \"{n}\",");
    }
    jline!(json, "  \"route_lookup_dense_ns\": {dense_ns:.1},");
    jline!(json, "  \"route_lookup_hashmap_ns\": {hashmap_ns:.1},");
    jline!(json, "  \"route_lookup_speedup\": {:.3},", hashmap_ns / dense_ns);
    jline!(json, "  \"workloads\": [");
    for (i, (name, act_ns, wall_ns)) in seq_cells.iter().enumerate() {
        let comma = if i + 1 < seq_cells.len() { "," } else { "" };
        jline!(
            json,
            "    {{\"app\": \"{name}\", \"act_ns\": {act_ns}, \"sim_wall_ns\": {wall_ns}}}{comma}"
        );
    }
    jline!(json, "  ]");
    jline!(json, "}}");

    std::fs::create_dir_all("results")?;
    std::fs::write("results/BENCH_engine.json", &json)?;
    print!("{json}");
    eprintln!(
        "sweep {seq_secs:.2}s -> {par_secs:.2}s on {threads} threads ({:.2}x); \
         route lookup {hashmap_ns:.0}ns -> {dense_ns:.0}ns ({:.2}x)",
        seq_secs / par_secs,
        hashmap_ns / dense_ns
    );
    Ok(())
}
