//! Daemon churn benchmark: hundreds of concurrent simulated tenants
//! hammering one `sdtd` engine with admit → migrate → destroy cycles over
//! real Unix-domain sockets, batched admission (`batch-max 64`) against
//! the honest one-at-a-time baseline (`batch-max 1`, which pays a static
//! proof *and* a snapshot write per operation). Records per-request
//! latency (p50/p99/p999 via `sdt_bench::stats`) and closed-loop
//! throughput for both modes. Writes `results/BENCH_sdtd.json`.
//!
//! Run with: `cargo run --release -p sdt-bench --bin bench_sdtd`
//! (`--quick` shrinks the tenant count and round count; used by CI as a
//! smoke test). Exits non-zero if any request failed to reach a terminal
//! reply — rejections are terminal, lost requests are not.

use sdt::controller::Json;
use sdt_bench::stats::{latency_json, LatencySummary};
use sdt_sdtd::{run, DaemonMetrics, DaemonOptions, DaemonState};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The daemon's shared cluster: big enough that ~40 three-host slices
/// coexist, small enough that every per-batch static proof stays cheap.
const CLUSTER: &str = "[topology]\nkind = \"chain\"\nn = 3\n\n[cluster]\nswitches = 4\n\
                       model = \"openflow-128x100g\"\nhosts_per_switch = 16\n\
                       inter_links_per_pair = 16\n";

/// What each tenant admits…
const ADMIT: &str = "[topology]\nkind = \"chain\"\nn = 3\n\n[cluster]\nswitches = 4\n\
                     model = \"openflow-128x100g\"\nhosts_per_switch = 16\n\
                     inter_links_per_pair = 16\n";

/// …and then migrates to (make-before-break, so it briefly holds both).
const MIGRATE: &str = "[topology]\nkind = \"ring\"\nn = 3\n\n\
                       [cluster]\nswitches = 4\nmodel = \"openflow-128x100g\"\n\
                       hosts_per_switch = 16\ninter_links_per_pair = 16\n\n\
                       [routing]\nstrategy = \"updown\"\n";

struct TenantResult {
    latencies_ns: Vec<u64>,
    sent: u64,
    answered: u64,
    admitted: u64,
    rejected: u64,
}

struct ModeResult {
    label: &'static str,
    batch_max: usize,
    sent: u64,
    answered: u64,
    admitted: u64,
    rejected: u64,
    wall_s: f64,
    throughput_rps: f64,
    latency: LatencySummary,
    daemon: DaemonMetrics,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (tenants, rounds) = if quick { (24, 1) } else { (192, 2) };
    let dir = std::env::temp_dir().join(format!("bench-sdtd-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("bench_sdtd: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }

    println!("bench_sdtd: {tenants} tenants x {rounds} round(s) per mode");
    let modes = [("batched", 64usize), ("one-at-a-time", 1usize)]
        .map(|(label, batch_max)| run_mode(label, batch_max, tenants, rounds, &dir));
    let _ = std::fs::remove_dir_all(&dir);

    let mut lost = false;
    for m in &modes {
        println!(
            "  {:>13}: {:>7.0} req/s  p50 {:>7} ns  p99 {:>8} ns  p999 {:>8} ns  \
             ({} admitted, {} rejected, {} batches, largest {})",
            m.label,
            m.throughput_rps,
            m.latency.p50_ns,
            m.latency.p99_ns,
            m.latency.p999_ns,
            m.admitted,
            m.rejected,
            m.daemon.batches,
            m.daemon.largest_batch
        );
        if m.sent != m.answered {
            eprintln!(
                "bench_sdtd: {} of {} requests never reached a terminal reply in {} mode",
                m.sent - m.answered,
                m.sent,
                m.label
            );
            lost = true;
        }
    }
    let speedup = modes[0].throughput_rps / modes[1].throughput_rps;
    println!("  batched/unbatched throughput: {speedup:.2}x");

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"tenants\": {tenants},");
    let _ = writeln!(j, "  \"rounds\": {rounds},");
    let _ = writeln!(j, "  \"batched_speedup\": {speedup:.3},");
    let _ = writeln!(j, "  \"modes\": [");
    for (i, m) in modes.iter().enumerate() {
        let comma = if i + 1 < modes.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"mode\": \"{}\", \"batch_max\": {}, \"requests\": {}, \
             \"responses\": {}, \"admitted\": {}, \"rejected\": {}, \
             \"wall_s\": {:.4}, \"throughput_rps\": {:.1}, \"latency\": {}, \
             \"daemon\": {{\"batches\": {}, \"batched_ops\": {}, \
             \"largest_batch\": {}, \"snapshot_writes\": {}}}}}{comma}",
            m.label,
            m.batch_max,
            m.sent,
            m.answered,
            m.admitted,
            m.rejected,
            m.wall_s,
            m.throughput_rps,
            latency_json(&m.latency),
            m.daemon.batches,
            m.daemon.batched_ops,
            m.daemon.largest_batch,
            m.daemon.snapshot_writes,
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_sdtd.json", &j))
    {
        eprintln!("bench_sdtd: cannot write results/BENCH_sdtd.json: {e}");
        std::process::exit(1);
    }
    println!("wrote results/BENCH_sdtd.json");
    if lost {
        std::process::exit(1);
    }
}

/// Start an in-process daemon with the given `batch_max`, run the full
/// tenant fleet against it, shut it down, and collect both sides' numbers.
fn run_mode(
    label: &'static str,
    batch_max: usize,
    tenants: usize,
    rounds: usize,
    dir: &Path,
) -> ModeResult {
    let socket = dir.join(format!("sdtd-{batch_max}.sock"));
    let snapshot = dir.join(format!("state-{batch_max}.json"));
    let _ = std::fs::remove_file(&snapshot);
    let state = match DaemonState::fresh(CLUSTER) {
        Ok(s) => s,
        Err(e) => panic!("daemon state: {e}"),
    };
    let opts = DaemonOptions {
        socket: socket.clone(),
        snapshot: Some(snapshot),
        batch_max,
    };
    let daemon = std::thread::spawn(move || run(state, opts));
    wait_for_socket(&socket);

    let t0 = Instant::now();
    let workers: Vec<_> = (0..tenants)
        .map(|_| {
            let socket = socket.clone();
            std::thread::spawn(move || tenant(&socket, rounds))
        })
        .collect();
    let mut latencies = Vec::new();
    let (mut sent, mut answered, mut admitted, mut rejected) = (0u64, 0u64, 0u64, 0u64);
    for w in workers {
        let Ok(r) = w.join() else { panic!("a tenant thread panicked") };
        latencies.extend(r.latencies_ns);
        sent += r.sent;
        answered += r.answered;
        admitted += r.admitted;
        rejected += r.rejected;
    }
    let wall_s = t0.elapsed().as_secs_f64();

    shutdown(&socket);
    let daemon = match daemon.join() {
        Ok(Ok(m)) => m,
        Ok(Err(e)) => panic!("daemon ({label}): {e}"),
        Err(_) => panic!("daemon thread panicked ({label})"),
    };
    ModeResult {
        label,
        batch_max,
        sent,
        answered,
        admitted,
        rejected,
        wall_s,
        throughput_rps: answered as f64 / wall_s,
        latency: LatencySummary::from_ns(latencies),
        daemon,
    }
}

/// One closed-loop tenant: admit a chain-3, migrate it to a ring-3,
/// destroy it, `rounds` times over one pipelined connection. Admission
/// rejections (the cluster *will* fill under 192 tenants) are terminal
/// outcomes, counted and carried on past.
fn tenant(socket: &Path, rounds: usize) -> TenantResult {
    let stream = match UnixStream::connect(socket) {
        Ok(s) => s,
        Err(e) => panic!("tenant connect: {e}"),
    };
    let Ok(read_half) = stream.try_clone() else { panic!("tenant stream clone failed") };
    let mut conn = Conn { stream, reader: BufReader::new(read_half), next_id: 1 };
    let mut r = TenantResult {
        latencies_ns: Vec::new(),
        sent: 0,
        answered: 0,
        admitted: 0,
        rejected: 0,
    };
    for _ in 0..rounds {
        let resp = conn.call(
            "admit",
            vec![("config".into(), Json::str(ADMIT))],
            &mut r,
        );
        let Some(id) = resp.as_ref().and_then(|j| j.get("slice").and_then(Json::as_u64))
        else {
            r.rejected += 1;
            continue;
        };
        r.admitted += 1;
        let migrate = vec![
            ("id".into(), Json::u64(id)),
            ("config".into(), Json::str(MIGRATE)),
        ];
        let _ = conn.call("migrate", migrate, &mut r);
        let _ = conn.call("destroy", vec![("id".into(), Json::u64(id))], &mut r);
    }
    r
}

struct Conn {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
    next_id: u64,
}

impl Conn {
    /// One timed round trip. Returns the reply only if it carried
    /// `ok: true`; either way the request reached a terminal state and
    /// its latency is recorded.
    fn call(
        &mut self,
        method: &str,
        params: Vec<(String, Json)>,
        r: &mut TenantResult,
    ) -> Option<Json> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = Json::Obj(vec![
            ("id".into(), Json::u64(id)),
            ("method".into(), Json::str(method)),
            ("params".into(), Json::Obj(params)),
        ])
        .emit();
        line.push('\n');
        r.sent += 1;
        let t0 = Instant::now();
        if self.stream.write_all(line.as_bytes()).is_err() {
            return None;
        }
        let mut resp = String::new();
        match self.reader.read_line(&mut resp) {
            Ok(n) if n > 0 => {}
            _ => return None,
        }
        r.latencies_ns.push(t0.elapsed().as_nanos() as u64);
        r.answered += 1;
        let doc = Json::parse(resp.trim_end_matches('\n')).ok()?;
        if doc.get("ok").and_then(Json::as_bool) == Some(true) {
            Some(doc)
        } else {
            None
        }
    }
}

fn wait_for_socket(path: &PathBuf) {
    for _ in 0..500 {
        if UnixStream::connect(path).is_ok() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("daemon socket {} never came up", path.display());
}

fn shutdown(socket: &Path) {
    let Ok(mut s) = UnixStream::connect(socket) else { return };
    let _ = s.write_all(b"{\"id\":0,\"method\":\"shutdown\",\"params\":{}}\n");
    let mut resp = String::new();
    let _ = BufReader::new(s).read_line(&mut resp);
}
