//! Regenerates Table III: routing strategies and deadlock-avoidance schemes
//! per topology, each verified by channel-dependency-graph analysis.

use sdt::routing::cdg::{analyze, DeadlockAnalysis};
use sdt::routing::{default_strategy, RouteTable};
use sdt::topology::dragonfly::dragonfly;
use sdt::topology::fattree::fat_tree;
use sdt::topology::meshtorus::{mesh, torus};
use sdt::topology::Topology;

fn verify(topo: &Topology, scheme: &str) {
    let strategy = default_strategy(topo);
    let table = RouteTable::build_for_hosts(topo, strategy.as_ref());
    let verdict = match analyze(&table) {
        DeadlockAnalysis::Free { nodes, edges } => {
            format!("deadlock-free (CDG: {nodes} nodes, {edges} deps)")
        }
        DeadlockAnalysis::Cycle(c) => format!("CYCLE of length {}", c.len()),
    };
    println!(
        "{:<20}{:<26}{:<28}{:<12}{}",
        topo.name(),
        strategy.name(),
        scheme,
        format!("{} VCs", strategy.num_vcs()),
        verdict,
    );
}

fn main() {
    println!("Table III — Routing strategies and deadlock avoidance (verified)\n");
    println!(
        "{:<20}{:<26}{:<28}{:<12}verification",
        "topology", "routing strategy", "deadlock avoidance", "resources"
    );
    verify(&fat_tree(4), "no need (up/down)");
    verify(&dragonfly(4, 9, 2, 2), "changing VC [44],[3]");
    verify(&mesh(&[4, 4]), "by routing (X-Y)");
    verify(&mesh(&[3, 3, 3]), "by routing (X-Y-Z)");
    verify(&torus(&[5, 5]), "by routing + VC (dateline)");
    verify(&torus(&[4, 4, 4]), "by routing + VC (dateline)");
    println!("\n(paper Table III lists the same strategy/scheme pairs; every row above is");
    println!(" machine-checked with the Dally–Seitz CDG criterion)");
}
