//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. partitioner refinement (FM passes) and balance tolerance — the §IV-C
//!    objective's two terms;
//! 2. the two-table OpenFlow pipeline vs a naive single-table synthesis —
//!    the §VII-C flow-table budget;
//! 3. cut-through vs store-and-forward — the fidelity knob behind Fig. 11;
//! 4. simulator cell granularity — the packet/flit trade driving Table IV.

use sdt::controller::SdtController;
use sdt::core::methods::SwitchModel;
use sdt::core::sdt::SdtProjection;
use sdt::partition::{partition_topology, Graph, PartitionConfig};
use sdt::routing::{default_strategy, generic::Bfs, RouteTable};
use sdt::sim::{run_trace, Granularity, SimConfig};
use sdt::topology::chain::chain;
use sdt::topology::dragonfly::dragonfly;
use sdt::topology::fattree::fat_tree;
use sdt::topology::meshtorus::torus;
use sdt::topology::{HostId, SwitchId, Topology};
use sdt::workloads::apps::{imb_alltoall, imb_pingpong};
use sdt_bench::{fmt_ns, par_map};

fn main() {
    ablate_partitioner();
    ablate_pipeline();
    ablate_cut_through();
    ablate_granularity();
}

fn ablate_partitioner() {
    println!("== Ablation 1: partitioner refinement & balance (§IV-C) ==");
    println!(
        "{:<22}{:>10}{:>10}{:>12}{:>12}",
        "topology", "fm_passes", "epsilon", "cut", "imbalance"
    );
    let grid: Vec<(Topology, usize, f64)> = [fat_tree(4), torus(&[4, 4]), dragonfly(4, 9, 2, 2)]
        .into_iter()
        .flat_map(|topo| {
            [(0usize, 0.10f64), (8, 0.10), (8, 0.50)].map(|(fm, eps)| (topo.clone(), fm, eps))
        })
        .collect();
    for line in par_map(&grid, |(topo, fm, eps)| {
        let (adj, vwgt) = topo.switch_graph();
        let g = Graph::from_adj(adj, vwgt);
        let cfg = PartitionConfig { fm_passes: *fm, epsilon: *eps, ..Default::default() };
        let p = partition_topology(topo, 2, &cfg);
        format!(
            "{:<22}{:>10}{:>10.2}{:>12}{:>11.1}%",
            topo.name(),
            fm,
            eps,
            p.cut_edges(&g),
            p.imbalance(&g) * 100.0
        )
    }) {
        println!("{line}");
    }
    println!("(expected: FM refinement lowers the cut; loosening epsilon trades balance");
    println!(" for cut — the two terms of the paper's alpha*cut + beta*balance objective)\n");
}

/// Entries a naive single-table synthesis would need: every sub-switch pays
/// one exact (in_port, dst) entry per ingress port and routed destination,
/// instead of the pipeline's additive `ports + dsts`.
fn naive_single_table_entries(topo: &Topology, p: &SdtProjection) -> usize {
    let mut dsts_per_subswitch = std::collections::HashMap::new();
    for t in &p.synthesis.table1 {
        for e in t {
            let md = match e.m.metadata {
                Some(md) => md,
                None => unreachable!("table-1 entries are sub-switch-scoped"),
            };
            *dsts_per_subswitch.entry(md).or_insert(0usize) += 1;
        }
    }
    (0..topo.num_switches())
        .map(|s| {
            let s = SwitchId(s);
            topo.radix(s) * dsts_per_subswitch.get(&s.0).copied().unwrap_or(0)
        })
        .sum()
}

fn ablate_pipeline() {
    println!("== Ablation 2: two-table pipeline vs naive single table (§VII-C) ==");
    println!("{:<22}{:>16}{:>16}{:>10}", "topology", "two-table", "naive 1-table", "ratio");
    for topo in [fat_tree(4), torus(&[4, 4]), dragonfly(4, 9, 2, 2)] {
        // Auto-size the cluster to the topology (smallest count that fits).
        let model = SwitchModel::openflow_128x100g();
        let deployment = (1..=4u32).find_map(|n| {
            SdtController::for_campaign(std::slice::from_ref(&topo), model, n)
                .ok()
                .and_then(|mut ctl| ctl.deploy(&topo).ok())
        });
        let Some(d) = deployment else {
            println!("{:<22}{:>16}", topo.name(), "does not fit");
            continue;
        };
        let p = d.projection;
        let two_table: usize = p.synthesis.entries_per_switch.iter().sum();
        let naive = naive_single_table_entries(&topo, &p);
        println!(
            "{:<22}{:>16}{:>16}{:>10.1}",
            topo.name(),
            two_table,
            naive,
            naive as f64 / two_table as f64
        );
    }
    println!("(the metadata stage keeps the budget additive instead of multiplicative,");
    println!(" which is how fat-tree k=4 stays in the low hundreds per switch)\n");
}

fn ablate_cut_through() {
    println!("== Ablation 3: cut-through vs store-and-forward ==");
    let topo = chain(8);
    let routes = RouteTable::build(&topo, &Bfs::new(&topo));
    let hosts = [HostId(0), HostId(7)];
    for line in par_map(&[true, false], |&ct| {
        let cfg = SimConfig { cut_through: ct, ..SimConfig::testbed_10g() };
        let res = run_trace(&topo, routes.clone(), cfg, &imb_pingpong(1500, 50), &hosts);
        let rtt = res.act_ns.map_or(f64::NAN, |a| a as f64) / 50.0;
        format!(
            "  {:<18} 8-hop 1500B pingpong RTT: {}",
            if ct { "cut-through" } else { "store-and-forward" },
            fmt_ns(rtt)
        )
    }) {
        println!("{line}");
    }
    println!("(the paper's fabric runs cut-through; store-and-forward pays one extra");
    println!(" serialization per hop and would inflate small-message RTTs)\n");
}

fn ablate_granularity() {
    println!("== Ablation 4: simulator cell granularity (Table IV's trade) ==");
    let topo = dragonfly(4, 9, 2, 2);
    let strategy = default_strategy(&topo);
    let routes = RouteTable::build(&topo, strategy.as_ref());
    let hosts: Vec<HostId> = (0..16).map(HostId).collect();
    let trace = imb_alltoall(16, 32 * 1024, 1);
    println!("{:>12}{:>14}{:>14}{:>14}", "cell bytes", "ACT", "wall", "events");
    for line in par_map(&[1500u32, 512, 256, 64], |&cell| {
        let cfg = SimConfig {
            granularity: Granularity::Custom(cell),
            ..SimConfig::testbed_10g()
        };
        let res = run_trace(&topo, routes.clone(), cfg, &trace, &hosts);
        format!(
            "{:>12}{:>14}{:>14}{:>14}",
            cell,
            fmt_ns(res.act_ns.map_or(f64::NAN, |a| a as f64)),
            fmt_ns(res.wall_ns as f64),
            res.events
        )
    }) {
        println!("{line}");
    }
    println!("(ACT converges across granularities — the Table IV deviation band — while");
    println!(" event count and wall-clock scale inversely with cell size)");
}
