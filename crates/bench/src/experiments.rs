//! Experiment drivers, one per paper artifact.

use sdt::controller::SdtController;
use sdt::core::cluster::PhysicalCluster;
use sdt::core::feasibility::{max_link_gbps, projectable_count};
use sdt::core::methods::{Method, SwitchModel};
use sdt::core::sdt::SdtProjector;
use sdt::routing::dragonfly::{DragonflyMinimal, DragonflyUgal};
use sdt::routing::{default_strategy, generic::Bfs, RouteTable};
use sdt::sim::mpi::run_trace_adaptive;
use sdt::sim::{run_trace, SimConfig, Simulator};
use sdt::topology::chain::chain;
use sdt::topology::dragonfly::dragonfly;
use sdt::topology::fattree::fat_tree;
use sdt::topology::meshtorus::torus;
use sdt::topology::{HostId, Topology};
use sdt::workloads::apps;
use sdt::workloads::{select_nodes, MachineModel, Trace};

/// The calibrated SDT crossbar-sharing penalty per switch transit, ns
/// (reproduces the paper's ≤2% latency overhead band — see
/// `tests/accuracy.rs`).
pub const SDT_EXTRA_NS: u64 = 8;

/// Application completion time of a finished replay. The benchmark traces
/// are closed workloads on connected fabrics, so a `None` here means the
/// simulation horizon was mis-set — fail loudly rather than fabricate a 0.
fn act_ns(ns: Option<u64>, what: &str) -> u64 {
    match ns {
        Some(v) => v,
        None => panic!("{what} did not complete within the simulated horizon"),
    }
}

// ---------------------------------------------------------------- Fig. 11

/// One point of the Fig. 11 latency-overhead sweep.
#[derive(Clone, Copy, Debug)]
pub struct Fig11Point {
    /// Pingpong message size, bytes.
    pub bytes: u64,
    /// Full-testbed round-trip time, ns.
    pub full_rtt_ns: f64,
    /// SDT round-trip time, ns.
    pub sdt_rtt_ns: f64,
    /// Relative overhead `(sdt - full) / full`.
    pub overhead: f64,
}

/// Fig. 11: pingpong across the Fig. 10 8-switch chain (node 1 → node 8),
/// full testbed vs SDT, over message sizes. Sizes run in parallel; each
/// point owns its simulator, so the sweep is bit-identical to sequential.
pub fn fig11_sweep(sizes: &[u64], reps: u32) -> Vec<Fig11Point> {
    let topo = chain(8);
    let routes = RouteTable::build(&topo, &Bfs::new(&topo));
    let hosts = [HostId(0), HostId(7)];
    let rtt = |extra: u64, bytes: u64| -> f64 {
        let trace = apps::imb_pingpong(bytes, reps);
        let cfg = SimConfig { extra_switch_ns: extra, ..SimConfig::testbed_10g() };
        let res = run_trace(&topo, routes.clone(), cfg, &trace, &hosts);
        act_ns(res.act_ns, "pingpong") as f64 / reps as f64
    };
    crate::par::par_map(sizes, |&b| {
        let full = rtt(0, b);
        let sdt = rtt(SDT_EXTRA_NS, b);
        Fig11Point { bytes: b, full_rtt_ns: full, sdt_rtt_ns: sdt, overhead: (sdt - full) / full }
    })
}

// ---------------------------------------------------------------- Fig. 12

/// One sender of the Fig. 12 incast.
#[derive(Clone, Copy, Debug)]
pub struct Fig12Row {
    /// Sender node number (1-based, as in the paper's legend).
    pub node: u32,
    /// Switch hops to the sink.
    pub hops: u32,
    /// Goodput on the full testbed, Gbit/s.
    pub full_gbps: f64,
    /// Goodput on SDT, Gbit/s.
    pub sdt_gbps: f64,
}

/// Fig. 12: 7-to-1 iperf3/TCP incast on the 8-switch chain; all nodes send
/// to node 4 (host index 3). Returns per-sender goodputs for full + SDT.
pub fn fig12_incast(lossless: bool, sim_ms: u64) -> Vec<Fig12Row> {
    let run = |extra: u64| -> Vec<f64> {
        let topo = chain(8);
        let routes = RouteTable::build(&topo, &Bfs::new(&topo));
        let cfg = SimConfig {
            lossless,
            extra_switch_ns: extra,
            queue_cap_bytes: 64 * 1500,
            max_sim_ns: sim_ms * 1_000_000,
            ..SimConfig::testbed_10g()
        };
        let mut sim = Simulator::new(&topo, routes, cfg);
        let mut flows = Vec::new();
        for h in 0..8u32 {
            if h != 3 {
                flows.push(sim.start_tcp_flow(HostId(h), HostId(3), u64::MAX));
            }
        }
        sim.run();
        let now = sim.now_ns();
        flows.iter().map(|&f| sim.flow_stats(f).goodput_gbps(now)).collect()
    };
    // Full-testbed and SDT runs are independent simulations; fan them out.
    let both = crate::par::par_map(&[0u64, SDT_EXTRA_NS], |&extra| run(extra));
    let (full, sdt) = (&both[0], &both[1]);
    [0u32, 1, 2, 4, 5, 6, 7]
        .iter()
        .enumerate()
        .map(|(i, &h)| Fig12Row {
            node: h + 1,
            hops: h.abs_diff(3) + 1,
            full_gbps: full[i],
            sdt_gbps: sdt[i],
        })
        .collect()
}

// ---------------------------------------------------------------- Table IV

/// One cell of Table IV.
#[derive(Clone, Debug)]
pub struct Table4Cell {
    /// Application label.
    pub app: String,
    /// ACT measured on the SDT fabric model (packet cells + overhead), ns.
    pub sdt_act_ns: u64,
    /// ACT reported by the flit-level simulator, ns.
    pub sim_act_ns: u64,
    /// Wall-clock the flit simulator burned, ns.
    pub sim_wall_ns: u128,
    /// SDT evaluation time: ACT (real-time execution) + deployment, ns.
    pub sdt_eval_ns: u64,
    /// Events the flit simulation processed.
    pub sim_events: u64,
}

impl Table4Cell {
    /// "Ax" — evaluation-time speedup of SDT over the simulator. The
    /// topology deployment (~hundreds of ms, reported separately and in
    /// Fig. 13) amortizes over the whole application suite run on one
    /// deployment, as in the paper's evaluation, so the per-application
    /// comparison is simulator wall-clock vs real-time ACT.
    pub fn speedup(&self) -> f64 {
        self.sim_wall_ns as f64 / self.sdt_act_ns as f64
    }

    /// "(B%)" — ACT deviation of SDT vs the simulator, percent.
    pub fn act_dev_pct(&self) -> f64 {
        100.0 * (self.sdt_act_ns as f64 - self.sim_act_ns as f64) / self.sim_act_ns as f64
    }
}

/// Run one (topology, workload) cell: the workload through the SDT fabric
/// (packet cells + crossbar overhead) and through the flit-level
/// "simulator", measuring the latter's wall-clock.
pub fn table4_cell(
    topo: &Topology,
    trace: &Trace,
    hosts: &[HostId],
    deploy_ns: u64,
) -> Table4Cell {
    let strategy = default_strategy(topo);
    let routes = RouteTable::build(topo, strategy.as_ref());
    let sdt_cfg = SimConfig { extra_switch_ns: SDT_EXTRA_NS, ..SimConfig::testbed_10g() };
    let sdt = run_trace(topo, routes.clone(), sdt_cfg, trace, hosts);
    let sim = run_trace(topo, routes, SimConfig::simulator_flit(), trace, hosts);
    let sdt_act = act_ns(sdt.act_ns, "the workload on SDT");
    Table4Cell {
        app: trace.name.clone(),
        sdt_act_ns: sdt_act,
        sim_act_ns: act_ns(sim.act_ns, "the workload in the simulator"),
        sim_wall_ns: sim.wall_ns,
        sdt_eval_ns: sdt_act + deploy_ns,
        sim_events: sim.events,
    }
}

/// The Table IV topologies with an auto-planned SDT deployment each;
/// returns (topology, modeled deployment time ns).
pub fn table4_topologies() -> Vec<(Topology, u64)> {
    let model = SwitchModel::openflow_128x100g();
    [dragonfly(4, 9, 2, 2), fat_tree(4), torus(&[5, 5]), torus(&[4, 4, 4])]
        .into_iter()
        .map(|t| {
            // Smallest cluster that carries the topology.
            for n in 1..=6u32 {
                if let Ok(mut ctl) = SdtController::for_campaign(std::slice::from_ref(&t), model, n) {
                    if let Ok(d) = ctl.deploy(&t) {
                        return (t, d.deploy_time_ns);
                    }
                }
            }
            panic!("{} does not fit on 6x128 ports", t.name());
        })
        .collect()
}

/// The whole Table IV grid, one [`Table4Cell`] per (topology, workload),
/// topology-major. Cells are independent simulations, so they fan out
/// across the sweep pool ([`crate::par::par_map`]); results are ordered and
/// bit-identical regardless of thread count (`tests/determinism.rs`).
pub fn table4_grid(topologies: &[(Topology, u64)], max_ranks: u32) -> Vec<Vec<Table4Cell>> {
    let cells: Vec<(usize, Trace)> = topologies
        .iter()
        .enumerate()
        .flat_map(|(ti, (topo, _))| {
            let ranks = topo.num_hosts().min(max_ranks);
            table4_workloads(ranks).into_iter().map(move |(_, trace)| (ti, trace))
        })
        .collect();
    let flat = crate::par::par_map(&cells, |(ti, trace)| {
        let (topo, deploy_ns) = &topologies[*ti];
        let hosts = select_nodes(topo, trace.num_ranks(), 2023);
        table4_cell(topo, trace, &hosts, *deploy_ns)
    });
    let mut rows: Vec<Vec<Table4Cell>> = topologies.iter().map(|_| Vec::new()).collect();
    for ((ti, _), cell) in cells.iter().zip(flat) {
        rows[*ti].push(cell);
    }
    rows
}

/// The Table IV workload columns for `n` ranks, scaled so flit-level
/// simulation stays tractable. Communication fractions preserve the
/// paper's ordering (HPL < HPCG < miniGhost < miniFE < IMB).
pub fn table4_workloads(n: u32) -> Vec<(&'static str, Trace)> {
    let m = MachineModel::default();
    vec![
        ("HPCG 64^3", apps::hpcg(n, 32, 3, &m)),
        ("HPL", apps::hpl(n, 8192, 64, &m)),
        ("miniGhost", apps::minighost(n, 16, 10, 3, &m)),
        ("miniFE 264^3", apps::minife(n, 16, 4, &m)),
        ("miniFE 264x512^2", apps::minife(n, 22, 4, &m)),
        ("IMB Alltoall", apps::imb_alltoall(n, 32 * 1024, 2)),
        ("IMB Pingpong", apps::imb_pingpong(16 * 1024, 200)),
    ]
}

// ---------------------------------------------------------------- Fig. 13

/// One x-position of Fig. 13.
#[derive(Clone, Copy, Debug)]
pub struct Fig13Point {
    /// Node count.
    pub nodes: u32,
    /// Full-testbed evaluation time = ACT, ns.
    pub act_ns: u64,
    /// Simulator evaluation time = measured wall-clock, ns.
    pub sim_wall_ns: u128,
    /// SDT evaluation time = deployment + ACT, ns.
    pub sdt_eval_ns: u64,
}

/// Fig. 13: IMB Alltoall on Dragonfly(4,9,2) with growing node counts.
pub fn fig13_point(topo: &Topology, n: u32, msg_bytes: u64, deploy_ns: u64) -> Fig13Point {
    let hosts = select_nodes(topo, n.max(2), 2023);
    let hosts = &hosts[..n.max(1) as usize];
    let trace = if n >= 2 {
        apps::imb_alltoall(n, msg_bytes, 2)
    } else {
        // A single node has no one to talk to: a pure compute blip.
        let mut t = Trace::new("imb-alltoall-1r", 1);
        t.push(0, sdt::workloads::MpiOp::Compute { ns: 1_000_000 });
        t
    };
    let strategy = default_strategy(topo);
    let routes = RouteTable::build(topo, strategy.as_ref());
    let sdt_cfg = SimConfig { extra_switch_ns: SDT_EXTRA_NS, ..SimConfig::testbed_10g() };
    let sdt = run_trace(topo, routes.clone(), sdt_cfg, &trace, hosts);
    let act = act_ns(sdt.act_ns, "the scaling workload");
    let sim = run_trace(topo, routes, SimConfig::simulator_flit(), &trace, hosts);
    Fig13Point {
        nodes: n,
        act_ns: act,
        sim_wall_ns: sim.wall_ns,
        sdt_eval_ns: act + deploy_ns,
    }
}

// ---------------------------------------------------------------- Table II

/// One DC-topology row of Table II: our computed max link speed per
/// (method, switch model), plus the paper's published cell for comparison.
/// One grid cell: (method, column name, our Gbps, paper's Gbps).
/// `None` speed = not projectable; the paper value is `None` when the
/// paper does not list that cell at all.
pub type Table2Cell = (Method, &'static str, Option<u32>, Option<Option<u32>>);

/// One DC-topology row of Table II.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Row label (e.g. `"Fat-Tree k=4"`).
    pub label: String,
    /// Cells, method-major then column.
    pub cells: Vec<Table2Cell>,
}

/// The Table II DC-topology grid, computed with the §IV-A port rule.
///
/// Fat-Tree and Dragonfly rows use a single switch per column and then
/// match the paper cell-for-cell. The tori cannot fit one switch at any
/// channelization under that rule, so their rows are sized at the paper's
/// own cluster scale — 3 switches per column (the SDT testbed has 3
/// switches) — which reproduces the published SP/SP-OS/SDT torus cells
/// exactly (see EXPERIMENTS.md for the one TurboNet torus cell that
/// differs).
pub fn table2_dc_grid() -> Vec<Table2Row> {
    let m64 = SwitchModel::openflow_64x100g();
    let m128 = SwitchModel::openflow_128x100g();
    // Paper cells: (method, 64col, 128col); None = not listed, Some(None) = "x".
    type P = Option<Option<u32>>;
    type PaperRow = Vec<(Method, P, P)>;
    let paper = |sp128: u32, tn64: Option<u32>, tn128: Option<u32>, sdt64: Option<u32>, sdt128: u32|
     -> PaperRow {
        vec![
            (Method::Sp, None, Some(Some(sp128))),
            (Method::SpOs, None, Some(Some(sp128))),
            (Method::Turbonet, Some(tn64), Some(tn128)),
            (Method::Sdt, Some(sdt64), Some(Some(sdt128))),
        ]
    };
    let rows: Vec<(String, Topology, u32, PaperRow)> = vec![
        ("Fat-Tree k=4".into(), fat_tree(4), 1, paper(100, Some(50), Some(50), Some(100), 100)),
        ("Fat-Tree k=6".into(), fat_tree(6), 1, paper(50, None, Some(25), Some(25), 50)),
        ("Fat-Tree k=8".into(), fat_tree(8), 1, paper(25, None, None, None, 25)),
        ("Dragonfly 4-9-2".into(), dragonfly(4, 9, 2, 2), 1, paper(50, None, Some(25), Some(25), 50)),
        ("Torus 4x4x4".into(), torus(&[4, 4, 4]), 3, paper(100, Some(25), Some(50), Some(50), 100)),
        ("Torus 5x5x5".into(), torus(&[5, 5, 5]), 3, paper(50, None, Some(25), Some(25), 50)),
        ("Torus 6x6x6".into(), torus(&[6, 6, 6]), 3, paper(25, None, None, None, 25)),
    ];
    rows.into_iter()
        .map(|(label, topo, count, paper_cells)| {
            let mut cells = Vec::new();
            for (method, p64, p128) in paper_cells {
                let ours64 = max_link_gbps(method, &topo, &m64, count).max_gbps;
                let ours128 = max_link_gbps(method, &topo, &m128, count).max_gbps;
                cells.push((method, "64x100G", ours64, p64));
                cells.push((method, "128x100G", ours128, p128));
            }
            Table2Row { label, cells }
        })
        .collect()
}

/// The Table II WAN row: projectable count out of 261 per method.
/// `switches` of `model` per cluster.
pub fn table2_wan_counts(model: &SwitchModel, switches: u32) -> Vec<(Method, usize)> {
    let corpus = sdt::topology::zoo::zoo_corpus();
    Method::ALL
        .iter()
        .map(|&m| (m, projectable_count(m, &corpus, model, switches)))
        .collect()
}

// ---------------------------------------------------------------- §VI-E

/// Active-routing comparison result.
#[derive(Clone, Copy, Debug)]
pub struct ActiveRoutingResult {
    /// ACT under static minimal routing, ns.
    pub minimal_act_ns: u64,
    /// ACT under monitor-driven UGAL, ns.
    pub adaptive_act_ns: u64,
}

impl ActiveRoutingResult {
    /// Percent ACT reduction from active routing.
    pub fn reduction_pct(&self) -> f64 {
        100.0 * (self.minimal_act_ns as f64 - self.adaptive_act_ns as f64)
            / self.minimal_act_ns as f64
    }
}

/// §VI-E: run a trace with minimal vs monitor-driven adaptive routing.
pub fn active_routing_compare(trace: &Trace, hosts: &[HostId]) -> ActiveRoutingResult {
    let topo = dragonfly(4, 9, 2, 2);
    let minimal = DragonflyMinimal::new(4, 9, 2, 2, &topo);
    let routes = RouteTable::build(&topo, &minimal);
    let cfg = SimConfig {
        extra_switch_ns: SDT_EXTRA_NS,
        monitor_interval_ns: 200_000,
        ..SimConfig::testbed_10g()
    };
    let base = run_trace(&topo, routes.clone(), cfg.clone(), trace, hosts);
    let ugal = DragonflyUgal::new(4, 9, 2, 2, &topo);
    let adaptive = run_trace_adaptive(&topo, routes, cfg, trace, hosts, Box::new(ugal));
    ActiveRoutingResult {
        minimal_act_ns: act_ns(base.act_ns, "minimal routing"),
        adaptive_act_ns: act_ns(adaptive.act_ns, "adaptive routing"),
    }
}

/// Format a speed cell (`None` = "x").
pub fn speed_cell(v: Option<u32>) -> String {
    match v {
        Some(g) => format!("<={g}G"),
        None => "x".into(),
    }
}

/// Smallest cluster that carries `topo`, per the Table IV sizing idiom.
/// The paper's 128-port model is tried first; topologies too big for any
/// such cluster (fat-tree k=16 needs more cable ends than 128-port hardware
/// can offer at this scale) fall back to a synthetic wide model — the
/// control-plane benchmarks measure controller cost, not hardware
/// feasibility. Returns the cluster and the model name used.
pub fn carrier_cluster(topo: &Topology) -> Option<(PhysicalCluster, &'static str)> {
    let wide = SwitchModel {
        name: "synthetic 512x100G",
        ports: 512,
        gbps: 100,
        price_usd: 0,
        table_capacity: 262_144,
        p4: false,
    };
    let projector = SdtProjector { merge_entries_on_overflow: true, ..Default::default() };
    for model in [SwitchModel::openflow_128x100g(), wide] {
        let start = (topo.num_hosts() / model.ports).max(1);
        for n in start..start + 40 {
            let Ok(ctl) = SdtController::for_campaign(std::slice::from_ref(topo), model, n)
            else {
                continue;
            };
            if projector.project_default(topo, ctl.cluster()).is_ok() {
                return Some((ctl.cluster().clone(), model.name));
            }
        }
    }
    None
}

/// Format nanoseconds human-readably.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_points_monotone_rtt() {
        let pts = fig11_sweep(&[256, 65_536], 5);
        assert!(pts[1].full_rtt_ns > pts[0].full_rtt_ns);
        assert!(pts.iter().all(|p| p.overhead >= 0.0 && p.overhead < 0.02));
    }

    #[test]
    fn table2_grid_shape() {
        let rows = table2_dc_grid();
        assert_eq!(rows.len(), 7);
        // SDT at 128 ports must match the paper on every fat-tree row.
        for row in rows.iter().take(3) {
            for (m, col, ours, paper) in &row.cells {
                if *m == Method::Sdt && *col == "128x100G" {
                    assert_eq!(Some(*ours), *paper, "{}", row.label);
                }
            }
        }
    }

    #[test]
    fn fig13_single_node_has_tiny_act() {
        let topo = dragonfly(4, 9, 2, 2);
        let p = fig13_point(&topo, 1, 1024, 100);
        assert!(p.act_ns <= 2_000_000);
    }
}
