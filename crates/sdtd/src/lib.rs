//! `sdtd` — the persistent SDT control-plane daemon.
//!
//! Everything below this crate models one deployment at a time: a
//! [`SliceController`](sdt_controller::SliceController) lives exactly as
//! long as the process that built it, and every `sdtctl` invocation wires
//! a throwaway cluster. A real testbed-as-a-service (the paper's §I pitch:
//! one small cluster, many tenants, sub-second swaps) needs the opposite —
//! a long-running owner of the physical cluster that tenants talk to over
//! a wire. This crate is that owner:
//!
//! * [`daemon`] — a JSON-RPC server on a Unix-domain socket (plain std
//!   `UnixListener` + threads; the workspace is registry-offline, so no
//!   async runtime). Concurrent tenant requests land in one admission
//!   queue; the engine drains the queue and hands *runs* of
//!   create/reconfigure/destroy to
//!   [`SliceManager::apply_batch`](sdt_tenancy::SliceManager::apply_batch),
//!   which amortizes match-universe construction and the static-verifier
//!   pass across the run while preserving per-request named
//!   [`AdmissionError`](sdt_tenancy::AdmissionError)s and FCFS fairness.
//! * [`snapshot`] — a versioned, byte-deterministic dump of the cluster
//!   spec, every slice (config text, namespace, projection, installed
//!   pipeline) and the live per-switch flow tables, written atomically
//!   (tmp + rename) after every mutating batch *before* the responses go
//!   out. A daemon killed mid-scenario restarts from the file: tables are
//!   re-applied and re-fingerprinted, the proof is re-established through
//!   the walk cache, and service continues where it stopped.
//!
//! `sdtctl --daemon <socket>` drives the same `slices` / `verify` /
//! `reconfigure` commands through the wire; the daemon renders reports
//! with the shared `sdt_controller::output` functions, so daemon-mode
//! output is byte-for-byte local-mode output.

pub mod daemon;
pub mod engine;
pub mod snapshot;

pub use daemon::{run, DaemonMetrics, DaemonOptions, DaemonState};
pub use snapshot::{ClusterSpec, SliceSnap, Snapshot, SnapshotError, SNAPSHOT_VERSION};
