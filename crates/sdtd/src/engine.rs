//! The engine loop, extracted from the daemon so it is scheduler-agnostic:
//! pure control flow over two small traits, with no I/O, no clock, and no
//! direct thread use. The daemon drives it with a real mpsc receiver and
//! the slice controller; the model tests drive it with `sdt-check`
//! channels and a recording host, exploring every interleaving of
//! producers against the drain/batch/persist/reply sequence.
//!
//! The loop owns the ordering guarantees the daemon advertises:
//!
//! * **FCFS per connection** — items are popped strictly in queue order
//!   and batch coalescing only groups a *prefix* of consecutive batchable
//!   items, so replies map back to requests in arrival order;
//! * **persist-before-reply** — [`EngineHost::persist_if_dirty`] runs
//!   before any of a group's replies are delivered, so a client that saw
//!   an `ok` knows the state that produced it is durable;
//! * **terminal replies on shutdown** — once the shutdown item is
//!   answered, everything still queued (and anything already in the
//!   channel) is handed to [`EngineHost::reject_undelivered`] instead of
//!   being dropped, so no client hangs waiting on a reply that will never
//!   come.

use std::collections::VecDeque;

use sdt_sync::sync::mpsc::{Receiver, TryRecvError};

/// Non-blocking pull from a work source.
pub enum Poll<I> {
    /// An item was queued.
    Item(I),
    /// Nothing queued right now, but producers may still send.
    Empty,
    /// Nothing queued and every producer is gone.
    Closed,
}

/// Where work items come from. The engine blocks on [`next_blocking`] when
/// idle and drains opportunistically with [`poll`].
///
/// [`next_blocking`]: WorkSource::next_blocking
/// [`poll`]: WorkSource::poll
pub trait WorkSource<I> {
    /// Block until an item arrives; `None` when every producer is gone.
    fn next_blocking(&self) -> Option<I>;
    /// Non-blocking pull.
    fn poll(&self) -> Poll<I>;
}

impl<I> WorkSource<I> for Receiver<I> {
    fn next_blocking(&self) -> Option<I> {
        self.recv().ok()
    }

    fn poll(&self) -> Poll<I> {
        match self.try_recv() {
            Ok(item) => Poll::Item(item),
            Err(TryRecvError::Empty) => Poll::Empty,
            Err(TryRecvError::Disconnected) => Poll::Closed,
        }
    }
}

/// What the engine does to items: classification, application, durability,
/// and reply delivery. Implemented by the daemon's `Engine` (real slices,
/// real snapshot file, real sockets) and by the model tests' recording
/// host (invariant assertions).
pub trait EngineHost {
    /// One queued work item.
    type Item;
    /// One computed reply, produced by `apply_*` and consumed by
    /// [`deliver`](EngineHost::deliver).
    type Reply;

    /// May this item ride in a coalesced lifecycle run?
    fn batchable(&self, item: &Self::Item) -> bool;
    /// Does this item stop the engine after its reply?
    fn is_shutdown(&self, item: &Self::Item) -> bool;
    /// Apply one coalesced run of batchable items; one reply per item, in
    /// item order.
    fn apply_run(&mut self, run: &[Self::Item]) -> Vec<Self::Reply>;
    /// Apply one non-batchable item.
    fn apply_one(&mut self, item: &Self::Item) -> Self::Reply;
    /// Make any state the group mutated durable. Always called before the
    /// group's replies are delivered — this call site *is* the
    /// snapshot-before-reply contract.
    fn persist_if_dirty(&mut self);
    /// Hand a reply back to the item's originator.
    fn deliver(&mut self, item: &Self::Item, reply: Self::Reply);
    /// The engine is shutting down and will never apply this queued item:
    /// give its originator a terminal error reply.
    fn reject_undelivered(&mut self, item: Self::Item);
    /// One blocking-drain cycle started (metrics hook).
    fn note_drain_cycle(&mut self);
}

/// Persist-then-respond for one applied group.
fn finish<H: EngineHost>(host: &mut H, items: &[H::Item], replies: Vec<H::Reply>) {
    host.persist_if_dirty();
    for (item, reply) in items.iter().zip(replies) {
        host.deliver(item, reply);
    }
}

/// Serve until a shutdown item is answered or every producer disconnects.
///
/// Each cycle blocks for one item, drains up to `drain_cap` more without
/// blocking, then walks the backlog in order: runs of consecutive
/// batchable items (at most `batch_max` long) become one
/// [`EngineHost::apply_run`]; everything else is applied alone. After a
/// shutdown item's reply, the remaining backlog and channel contents get
/// terminal rejections rather than silence.
pub fn engine_loop<H, S>(host: &mut H, source: &S, batch_max: usize, drain_cap: usize)
where
    H: EngineHost,
    S: WorkSource<H::Item>,
{
    let mut pending: VecDeque<H::Item> = VecDeque::new();
    'serve: loop {
        if pending.is_empty() {
            match source.next_blocking() {
                Some(item) => pending.push_back(item),
                None => break, // every producer hung up
            }
        }
        while pending.len() < drain_cap {
            match source.poll() {
                Poll::Item(item) => pending.push_back(item),
                Poll::Empty | Poll::Closed => break,
            }
        }
        host.note_drain_cycle();
        while let Some(item) = pending.pop_front() {
            if host.batchable(&item) {
                let mut group = vec![item];
                while group.len() < batch_max
                    && pending.front().is_some_and(|n| host.batchable(n))
                {
                    let Some(next) = pending.pop_front() else { break };
                    group.push(next);
                }
                let replies = host.apply_run(&group);
                finish(host, &group, replies);
            } else {
                let shutdown = host.is_shutdown(&item);
                let reply = host.apply_one(&item);
                finish(host, std::slice::from_ref(&item), vec![reply]);
                if shutdown {
                    // Nothing past this point will be applied; every
                    // queued request still deserves a terminal reply.
                    for rest in pending.drain(..) {
                        host.reject_undelivered(rest);
                    }
                    while let Poll::Item(rest) = source.poll() {
                        host.reject_undelivered(rest);
                    }
                    break 'serve;
                }
            }
        }
    }
}
