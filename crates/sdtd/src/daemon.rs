//! The daemon engine: one admission queue, one owner of the cluster.
//!
//! Concurrency model — plain std, no async runtime:
//!
//! * an **acceptor** thread owns the `UnixListener` and spawns one reader
//!   thread per connection;
//! * each **reader** thread parses newline-delimited JSON-RPC requests
//!   and forwards them — in arrival order — into one shared mpsc queue
//!   (even unparsable lines enter the queue, as `Request::Bad`, so a
//!   connection's replies always come back in request order);
//! * one **engine** thread owns the [`SliceController`], drains the
//!   queue, and is the only thing that ever touches slices, switches, or
//!   the snapshot file. No locks around the cluster — the queue *is* the
//!   serialization.
//!
//! Draining is where batching happens: after blocking on the first
//! request, the engine opportunistically grabs everything else already
//! queued, then slices the backlog into *runs* of consecutive lifecycle
//! operations (admit / migrate / destroy), each at most
//! [`DaemonOptions::batch_max`] long. A run becomes one
//! [`apply_batch`](sdt_tenancy::SliceManager::apply_batch) call, which
//! pays match-universe
//! construction and the static proof once per run instead of once per
//! request, while still returning a per-request named
//! [`AdmissionError`](sdt_tenancy::AdmissionError). `batch_max = 1` is
//! the honest one-at-a-time baseline: same code path, runs of length 1,
//! one snapshot write per mutation.
//!
//! Durability contract: after any group that mutated state, the snapshot
//! is rewritten (atomically) *before* the group's replies are flushed. A
//! client that has seen an `ok` therefore knows the state that produced
//! it survives `kill -9`.

use crate::engine::{engine_loop, EngineHost};
use crate::snapshot::{write_atomic, ClusterSpec, Snapshot};
use sdt_controller::output::{self, AdmitInfo, AdmitRow, StatsBlock};
use sdt_controller::{Json, SliceController, SliceOpError, TestbedConfig};
use sdt_sync::atomic::{AtomicBool, Ordering};
use sdt_sync::sync::mpsc::Sender;
use sdt_sync::sync::{Arc, Mutex};
use sdt_sync::thread;
use sdt_tenancy::{OpOutcome, SliceId, SliceOp};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

/// How the daemon runs: where it listens, where it persists, how greedy
/// a batch may get.
#[derive(Clone, Debug)]
pub struct DaemonOptions {
    /// Unix-domain socket path to serve on (stale files are replaced).
    pub socket: PathBuf,
    /// Snapshot file; `None` disables persistence (bench-only).
    pub snapshot: Option<PathBuf>,
    /// Longest run of lifecycle ops coalesced into one
    /// [`SliceManager::apply_batch`](sdt_tenancy::SliceManager::apply_batch)
    /// call. `1` = sequential baseline.
    pub batch_max: usize,
}

/// Engine-side counters, served by the `metrics` method and returned by
/// [`run`] when the daemon shuts down.
#[derive(Clone, Copy, Default, Debug)]
pub struct DaemonMetrics {
    /// Requests answered (any method, including errors).
    pub requests: u64,
    /// `apply_batch` calls issued for runs of length ≥ 2.
    pub batches: u64,
    /// Lifecycle operations that rode in those runs.
    pub batched_ops: u64,
    /// Longest run coalesced.
    pub largest_batch: u64,
    /// Snapshot files written.
    pub snapshot_writes: u64,
    /// Queue drain cycles (each blocks once, then drains).
    pub drain_cycles: u64,
}

/// Everything the engine owns: the spec that rebuilds the cluster, the
/// live controller, and the per-slice config text needed to snapshot.
pub struct DaemonState {
    spec: ClusterSpec,
    require_deadlock_free: bool,
    ctl: SliceController,
    configs: BTreeMap<u32, String>,
}

impl DaemonState {
    /// A fresh daemon: wire the cluster from a config file's `[cluster]`
    /// section, no slices admitted.
    pub fn fresh(cfg_text: &str) -> Result<DaemonState, String> {
        let cfg = TestbedConfig::parse(cfg_text).map_err(|e| e.to_string())?;
        let spec = ClusterSpec::of_config(&cfg).map_err(|e| e.to_string())?;
        Ok(DaemonState {
            spec,
            require_deadlock_free: cfg.require_deadlock_free,
            ctl: SliceController::from_config(&cfg),
            configs: BTreeMap::new(),
        })
    }

    /// Recover a killed daemon from its snapshot file: decode, rebuild
    /// the cluster, re-install the live tables, re-admit the slices.
    pub fn from_snapshot_file(path: &Path) -> Result<DaemonState, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let snap = Snapshot::decode(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let (mgr, configs) = snap.restore().map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(DaemonState {
            spec: snap.cluster.clone(),
            require_deadlock_free: snap.require_deadlock_free,
            ctl: SliceController::from_manager(mgr, snap.require_deadlock_free),
            configs,
        })
    }

    /// Admitted slice count (startup reporting).
    pub fn slice_count(&self) -> usize {
        self.ctl.status().slices.len()
    }

    /// Re-prove the restored tables (startup reporting): `true` iff the
    /// full static pass holds.
    pub fn verify_holds(&mut self) -> bool {
        self.ctl.manager_mut().verify_report().holds()
    }
}

// ------------------------------------------------------------- protocol

/// One parsed request. `Bad` keeps its queue slot so per-connection reply
/// order always matches request order.
enum Request {
    Ping,
    Bad(String),
    Admit { name: String, text: String },
    Destroy { id: u32 },
    Migrate { id: u32, text: String },
    Slices { json: bool, items: Vec<(String, String)> },
    Reconfigure(Box<ReconfigureReq>),
    Verify { json: bool, stats: bool },
    Status,
    Metrics,
    SnapshotNow,
    Shutdown,
}

struct ReconfigureReq {
    json: bool,
    scheduled: bool,
    drop_prob: f64,
    reorder_prob: f64,
    seed: u64,
    from_path: String,
    from_text: String,
    to_text: String,
}

impl Request {
    /// Lifecycle operations the engine may coalesce into one
    /// `apply_batch` run.
    fn batchable(&self) -> bool {
        matches!(
            self,
            Request::Admit { .. } | Request::Destroy { .. } | Request::Migrate { .. }
        )
    }
}

/// Serialized write half of one connection, shared by every queued
/// request from it.
struct ConnWriter {
    stream: Mutex<UnixStream>,
}

impl ConnWriter {
    fn send_line(&self, line: &str) {
        // The facade lock is poison-recovering; a vanished client is its
        // own problem; the engine keeps serving either way.
        let mut guard = self.stream.lock();
        let _ = guard.write_all(line.as_bytes());
        let _ = guard.write_all(b"\n");
    }
}

struct WorkItem {
    writer: Arc<ConnWriter>,
    id: u64,
    req: Request,
}

/// One reply, with optional method-specific extras ahead of the rendered
/// report.
struct Reply {
    id: u64,
    ok: bool,
    extra: Vec<(String, Json)>,
    output: String,
    error: Option<String>,
}

impl Reply {
    fn ok(id: u64) -> Reply {
        Reply { id, ok: true, extra: Vec::new(), output: String::new(), error: None }
    }

    fn err(id: u64, e: impl Into<String>) -> Reply {
        Reply { id, ok: false, extra: Vec::new(), output: String::new(), error: Some(e.into()) }
    }

    fn emit(&self) -> String {
        let mut obj = vec![
            ("id".to_string(), Json::u64(self.id)),
            ("ok".to_string(), Json::Bool(self.ok)),
        ];
        obj.extend(self.extra.iter().cloned());
        obj.push(("output".to_string(), Json::str(self.output.as_str())));
        if let Some(e) = &self.error {
            obj.push(("error".to_string(), Json::str(e.as_str())));
        }
        Json::Obj(obj).emit()
    }
}

fn pstr<'a>(p: &'a Json, key: &str) -> Option<&'a str> {
    p.get(key).and_then(Json::as_str)
}

fn parse_request(line: &str) -> (u64, Request) {
    let doc = match Json::parse(line) {
        Ok(d) => d,
        Err(e) => return (0, Request::Bad(format!("bad request JSON: {e}"))),
    };
    let id = doc.get("id").and_then(Json::as_u64).unwrap_or(0);
    let Some(method) = doc.get("method").and_then(Json::as_str) else {
        return (id, Request::Bad("request has no method".into()));
    };
    let empty = Json::Obj(Vec::new());
    let p = doc.get("params").unwrap_or(&empty);
    let json = p.get("json").and_then(Json::as_bool).unwrap_or(false);
    let req = match method {
        "ping" => Request::Ping,
        "status" => Request::Status,
        "metrics" => Request::Metrics,
        "snapshot" => Request::SnapshotNow,
        "shutdown" => Request::Shutdown,
        "verify" => Request::Verify {
            json,
            stats: p.get("stats").and_then(Json::as_bool).unwrap_or(false),
        },
        "admit" => match pstr(p, "config") {
            Some(text) => Request::Admit {
                name: pstr(p, "name").unwrap_or("").to_string(),
                text: text.to_string(),
            },
            None => Request::Bad("admit: missing `config`".into()),
        },
        "destroy" => match p.get("id").and_then(Json::as_u64) {
            Some(id) => Request::Destroy { id: id as u32 },
            None => Request::Bad("destroy: missing `id`".into()),
        },
        "migrate" => match (p.get("id").and_then(Json::as_u64), pstr(p, "config")) {
            (Some(id), Some(text)) => {
                Request::Migrate { id: id as u32, text: text.to_string() }
            }
            _ => Request::Bad("migrate: needs `id` and `config`".into()),
        },
        "slices" => {
            let mut items = Vec::new();
            for c in p.get("configs").and_then(Json::as_arr).unwrap_or(&[]) {
                match (pstr(c, "path"), pstr(c, "text")) {
                    (Some(path), Some(text)) => {
                        items.push((path.to_string(), text.to_string()))
                    }
                    _ => return (id, Request::Bad("slices: bad config entry".into())),
                }
            }
            if items.is_empty() {
                Request::Bad("slices: need at least one config".into())
            } else {
                Request::Slices { json, items }
            }
        }
        "reconfigure" => {
            match (pstr(p, "from_path"), pstr(p, "from_text"), pstr(p, "to_text")) {
                (Some(from_path), Some(from_text), Some(to_text)) => {
                    Request::Reconfigure(Box::new(ReconfigureReq {
                        json,
                        scheduled: p.get("scheduled").and_then(Json::as_bool).unwrap_or(false),
                        drop_prob: p.get("drop").and_then(Json::as_f64).unwrap_or(0.0),
                        reorder_prob: p.get("reorder").and_then(Json::as_f64).unwrap_or(0.0),
                        seed: p.get("seed").and_then(Json::as_u64).unwrap_or(0),
                        from_path: from_path.to_string(),
                        from_text: from_text.to_string(),
                        to_text: to_text.to_string(),
                    }))
                }
                _ => Request::Bad("reconfigure: needs from/to config texts".into()),
            }
        }
        other => Request::Bad(format!("unknown method `{other}`")),
    };
    (id, req)
}

// --------------------------------------------------------------- server

/// Live connections, tracked so shutdown can close them under their
/// parked reader threads. Without this a client that pipelined requests
/// and got every reply would hang forever waiting for EOF: its daemon-side
/// reader is parked in `read_line` and only notices the engine is gone on
/// the *next* request. Closing the socket is the wake-up.
#[derive(Default)]
struct ConnRegistry {
    conns: Mutex<ConnSet>,
}

#[derive(Default)]
struct ConnSet {
    /// Shutdown has happened; connections arriving late are closed on the
    /// spot instead of being tracked.
    closed: bool,
    next_token: u64,
    streams: Vec<(u64, UnixStream)>,
}

impl ConnRegistry {
    /// Track a connection for shutdown teardown. `None` if the daemon is
    /// already shutting down — the stream has then been closed already.
    fn track(&self, stream: &UnixStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let mut set = self.conns.lock();
        if set.closed {
            let _ = clone.shutdown(Shutdown::Both);
            return None;
        }
        set.next_token += 1;
        let token = set.next_token;
        set.streams.push((token, clone));
        Some(token)
    }

    /// Drop a finished connection so a long-lived daemon does not
    /// accumulate dead file descriptors.
    fn untrack(&self, token: u64) {
        let mut set = self.conns.lock();
        if let Some(i) = set.streams.iter().position(|(t, _)| *t == token) {
            set.streams.swap_remove(i);
        }
    }

    /// Close every live connection and refuse to track new ones. Called
    /// after the engine loop has returned, i.e. after every terminal
    /// reply (including shutdown rejections) has been written.
    fn close_all(&self) {
        let mut set = self.conns.lock();
        set.closed = true;
        for (_, stream) in set.streams.drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// Serve until a `shutdown` request arrives. Binds the socket (replacing
/// a stale file), spawns the acceptor, and runs the engine loop on the
/// calling thread. Returns the final metrics.
pub fn run(state: DaemonState, opts: DaemonOptions) -> Result<DaemonMetrics, String> {
    if opts.batch_max == 0 {
        return Err("batch_max must be at least 1".into());
    }
    // A previous daemon that died uncleanly leaves its socket file behind;
    // binding over it needs the unlink first.
    let _ = std::fs::remove_file(&opts.socket);
    let listener = UnixListener::bind(&opts.socket)
        .map_err(|e| format!("bind {}: {e}", opts.socket.display()))?;
    let (tx, rx) = sdt_sync::sync::mpsc::channel::<WorkItem>();
    let stop = Arc::new(AtomicBool::new(false));
    let registry = Arc::new(ConnRegistry::default());

    let acceptor = {
        let stop = Arc::clone(&stop);
        let registry = Arc::clone(&registry);
        thread::spawn(move || accept_loop(listener, tx, stop, registry))
    };

    let mut engine = Engine {
        state,
        opts: opts.clone(),
        metrics: DaemonMetrics::default(),
        dirty: false,
    };
    engine_loop(&mut engine, &rx, opts.batch_max, DRAIN_CAP);
    let metrics = engine.metrics;
    drop(rx); // remaining readers see a closed channel and exit

    // Every terminal reply is on the wire (the engine loop wrote them all
    // before returning); now close the connections so parked readers and
    // pipelining clients waiting for EOF unblock, then wake the acceptor
    // out of `accept()` so it can observe the stop flag.
    stop.store(true, Ordering::SeqCst);
    registry.close_all();
    let _ = UnixStream::connect(&opts.socket);
    let _ = acceptor.join();
    let _ = std::fs::remove_file(&opts.socket);
    Ok(metrics)
}

fn accept_loop(
    listener: UnixListener,
    tx: Sender<WorkItem>,
    stop: Arc<AtomicBool>,
    registry: Arc<ConnRegistry>,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let tx = tx.clone();
        let registry = Arc::clone(&registry);
        thread::spawn(move || conn_loop(stream, tx, registry));
    }
}

fn conn_loop(stream: UnixStream, tx: Sender<WorkItem>, registry: Arc<ConnRegistry>) {
    // `track` clones the stream for shutdown teardown; `None` means the
    // daemon is already closing and the socket was shut under us — the
    // read loop below then sees instant EOF, which is the point.
    let token = registry.track(&stream);
    serve_conn(stream, tx);
    if let Some(token) = token {
        registry.untrack(token);
    }
}

fn serve_conn(stream: UnixStream, tx: Sender<WorkItem>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(ConnWriter { stream: Mutex::new(stream) });
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let trimmed = line.trim_end_matches('\n');
        if trimmed.is_empty() {
            continue;
        }
        let (id, req) = parse_request(trimmed);
        if tx.send(WorkItem { writer: Arc::clone(&writer), id, req }).is_err() {
            return; // engine is gone; shutdown in progress
        }
    }
}

// --------------------------------------------------------------- engine

/// Upper bound on how much backlog one drain cycle pulls off the queue.
/// Bounds reply latency under a flood without limiting batch formation
/// (it is far above any sensible `batch_max`).
const DRAIN_CAP: usize = 1024;

struct Engine {
    state: DaemonState,
    opts: DaemonOptions,
    metrics: DaemonMetrics,
    /// State changed since the last snapshot write.
    dirty: bool,
}

/// The daemon side of the [`engine_loop`] contract: classification
/// delegates to the request parser, application to the slice controller,
/// durability to the snapshot writer, delivery to the per-connection
/// writers. The loop itself (drain, batch coalescing, persist-then-reply,
/// shutdown drain) lives in [`crate::engine`] where the model tests can
/// explore it under every schedule.
impl EngineHost for Engine {
    type Item = WorkItem;
    type Reply = Reply;

    fn batchable(&self, item: &WorkItem) -> bool {
        item.req.batchable()
    }

    fn is_shutdown(&self, item: &WorkItem) -> bool {
        matches!(item.req, Request::Shutdown)
    }

    fn apply_run(&mut self, run: &[WorkItem]) -> Vec<Reply> {
        self.lifecycle_group(run)
    }

    fn apply_one(&mut self, item: &WorkItem) -> Reply {
        self.one_request(item)
    }

    /// Snapshot first if anything mutated, so every `ok` a client sees is
    /// already durable.
    fn persist_if_dirty(&mut self) {
        if self.dirty {
            self.persist();
        }
    }

    fn deliver(&mut self, item: &WorkItem, reply: Reply) {
        item.writer.send_line(&reply.emit());
        self.metrics.requests += 1;
    }

    fn reject_undelivered(&mut self, item: WorkItem) {
        item.writer.send_line(&Reply::err(item.id, "daemon is shutting down").emit());
        self.metrics.requests += 1;
    }

    fn note_drain_cycle(&mut self) {
        self.metrics.drain_cycles += 1;
    }
}

impl Engine {
    fn persist(&mut self) {
        let Some(path) = self.opts.snapshot.clone() else {
            self.dirty = false;
            return;
        };
        match Snapshot::capture(
            &self.state.spec,
            self.state.require_deadlock_free,
            self.state.ctl.manager(),
            &self.state.configs,
        ) {
            Ok(snap) => match write_atomic(&path, &snap.encode()) {
                Ok(()) => {
                    self.metrics.snapshot_writes += 1;
                    self.dirty = false;
                }
                Err(e) => eprintln!("sdtd: snapshot write failed: {e}"),
            },
            Err(e) => eprintln!("sdtd: snapshot capture failed: {e}"),
        }
    }

    /// One coalesced run of admit / migrate / destroy. Strategy resolution
    /// and the deadlock gate run per request up front (their rejections
    /// are batch-independent); what survives becomes one `apply_batch`
    /// call whose per-op results map back onto the originating requests.
    fn lifecycle_group(&mut self, group: &[WorkItem]) -> Vec<Reply> {
        let mut replies: Vec<Option<Reply>> = Vec::with_capacity(group.len());
        let mut ops: Vec<SliceOp> = Vec::new();
        let mut op_source: Vec<usize> = Vec::new();
        for (i, item) in group.iter().enumerate() {
            let prepared = self.prepare_op(&item.req);
            match prepared {
                Ok(op) => {
                    ops.push(op);
                    op_source.push(i);
                    replies.push(None);
                }
                Err(e) => replies.push(Some(Reply::err(item.id, e))),
            }
        }
        if ops.len() >= 2 {
            self.metrics.batches += 1;
            self.metrics.batched_ops += ops.len() as u64;
            self.metrics.largest_batch = self.metrics.largest_batch.max(ops.len() as u64);
        }
        let results = self.state.ctl.manager_mut().apply_batch(ops);
        for (slot, result) in op_source.into_iter().zip(results) {
            let item = &group[slot];
            replies[slot] = Some(match result {
                Ok(outcome) => {
                    self.dirty = true;
                    self.record_outcome(&item.req, &outcome);
                    let mut r = Reply::ok(item.id);
                    r.extra = outcome_fields(&outcome);
                    r
                }
                Err(e) => Reply::err(item.id, e.to_string()),
            });
        }
        replies
            .into_iter()
            .map(|r| match r {
                Some(r) => r,
                None => unreachable!("every slot is filled by prepare or apply"),
            })
            .collect()
    }

    /// The admission-independent half of a lifecycle request: parse the
    /// config, resolve its strategy, run the deadlock gate.
    fn prepare_op(&self, req: &Request) -> Result<SliceOp, String> {
        match req {
            Request::Admit { name, text } => {
                let cfg = TestbedConfig::parse(text).map_err(|e| e.to_string())?;
                let routes = self
                    .state
                    .ctl
                    .resolve_routes(&cfg.topology, &cfg.strategy)
                    .map_err(|e| e.to_string())?;
                let name =
                    if name.is_empty() { cfg.topology.name().to_string() } else { name.clone() };
                Ok(SliceOp::Create { name, topo: cfg.topology, routes })
            }
            Request::Migrate { id, text } => {
                let cfg = TestbedConfig::parse(text).map_err(|e| e.to_string())?;
                let routes = self
                    .state
                    .ctl
                    .resolve_routes(&cfg.topology, &cfg.strategy)
                    .map_err(|e| e.to_string())?;
                Ok(SliceOp::Reconfigure { id: SliceId(*id), topo: cfg.topology, routes })
            }
            Request::Destroy { id } => Ok(SliceOp::Destroy { id: SliceId(*id) }),
            _ => unreachable!("lifecycle_group only receives batchable requests"),
        }
    }

    /// Keep the per-slice config map in step with a successful outcome —
    /// it is what the snapshot needs to rebuild topology and routes.
    fn record_outcome(&mut self, req: &Request, outcome: &OpOutcome) {
        match (req, outcome) {
            (Request::Admit { text, .. }, OpOutcome::Created(id)) => {
                self.state.configs.insert(id.0, text.clone());
            }
            (Request::Migrate { id, text }, OpOutcome::Reconfigured(_)) => {
                self.state.configs.insert(*id, text.clone());
            }
            (Request::Destroy { id }, OpOutcome::Destroyed(_)) => {
                self.state.configs.remove(id);
            }
            _ => {}
        }
    }

    fn one_request(&mut self, item: &WorkItem) -> Reply {
        match &item.req {
            Request::Ping => Reply::ok(item.id),
            Request::Bad(msg) => Reply::err(item.id, msg.clone()),
            Request::Shutdown => Reply::ok(item.id),
            Request::Status => self.status_reply(item.id),
            Request::Metrics => self.metrics_reply(item.id),
            Request::SnapshotNow => {
                self.dirty = true;
                self.persist();
                if self.dirty {
                    Reply::err(item.id, "snapshot write failed (see daemon log)")
                } else {
                    Reply::ok(item.id)
                }
            }
            Request::Verify { json, stats } => self.verify_reply(item.id, *json, *stats),
            Request::Slices { json, items } => self.slices_reply(item.id, *json, items),
            Request::Reconfigure(r) => self.reconfigure_reply(item.id, r),
            Request::Admit { .. } | Request::Destroy { .. } | Request::Migrate { .. } => {
                unreachable!("batchable requests go through lifecycle_group")
            }
        }
    }

    fn status_reply(&self, id: u64) -> Reply {
        let s = self.state.ctl.status();
        let mut r = Reply::ok(id);
        r.extra = vec![
            ("slices".to_string(), Json::u64(s.slices.len() as u64)),
            ("host_ports_used".to_string(), Json::u64(s.host_ports_used as u64)),
            ("host_ports_total".to_string(), Json::u64(s.host_ports_total as u64)),
            ("cables_used".to_string(), Json::u64(s.cables_used as u64)),
            ("cables_total".to_string(), Json::u64(s.cables_total as u64)),
        ];
        let mut out = String::new();
        for sl in &s.slices {
            out.push_str(&format!("{}  {}  ({})\n", sl.id, sl.name, sl.topology));
        }
        out.push_str(&format!(
            "{} slice(s); {}/{} host ports, {}/{} cables in use",
            s.slices.len(),
            s.host_ports_used,
            s.host_ports_total,
            s.cables_used,
            s.cables_total
        ));
        r.output = out;
        r
    }

    fn metrics_reply(&self, id: u64) -> Reply {
        let m = &self.metrics;
        let mut r = Reply::ok(id);
        r.extra = vec![
            ("requests".to_string(), Json::u64(m.requests)),
            ("batches".to_string(), Json::u64(m.batches)),
            ("batched_ops".to_string(), Json::u64(m.batched_ops)),
            ("largest_batch".to_string(), Json::u64(m.largest_batch)),
            ("snapshot_writes".to_string(), Json::u64(m.snapshot_writes)),
            ("drain_cycles".to_string(), Json::u64(m.drain_cycles)),
        ];
        r
    }

    /// `sdtctl verify --daemon`: the multi-config local path, against the
    /// daemon's live slices, rendered by the shared output module — hence
    /// byte-for-byte local output.
    fn verify_reply(&mut self, id: u64, json: bool, stats: bool) -> Reply {
        let mgr = self.state.ctl.manager_mut();
        let (report, block) = if stats {
            let t0 = std::time::Instant::now();
            let (r, vstats, cache_entries) = mgr.verify_report_with_stats();
            let wall_s = t0.elapsed().as_secs_f64();
            (r, Some(StatsBlock { wall_s, warm_s: None, stats: vstats, cache_entries }))
        } else {
            (mgr.verify_report(), None)
        };
        let text = if json {
            output::verify_json("slices", &report, block.as_ref())
        } else {
            output::verify_human("slices", &report, block.as_ref())
        };
        let mut r = if report.holds() {
            Reply::ok(id)
        } else {
            Reply::err(id, "static verification failed")
        };
        r.output = text;
        r
    }

    /// `sdtctl slices --daemon`: admit every config of the request as a
    /// slice of the daemon's persistent cluster (one internal
    /// `apply_batch`), then render admissions + occupancy + cross-slice
    /// audit exactly as local mode does.
    fn slices_reply(&mut self, id: u64, json: bool, items: &[(String, String)]) -> Reply {
        let mut rows: Vec<Option<AdmitRow>> = Vec::with_capacity(items.len());
        let mut ops = Vec::new();
        let mut op_source = Vec::new();
        let mut texts = Vec::new();
        let mut rejected = 0usize;
        for (i, (path, text)) in items.iter().enumerate() {
            let prepared = TestbedConfig::parse(text).map_err(|e| e.to_string()).and_then(
                |cfg| {
                    let routes = self
                        .state
                        .ctl
                        .resolve_routes(&cfg.topology, &cfg.strategy)
                        .map_err(|e| e.to_string())?;
                    Ok((cfg.topology.name().to_string(), cfg.topology, routes))
                },
            );
            match prepared {
                Ok((name, topo, routes)) => {
                    ops.push(SliceOp::Create { name: name.clone(), topo, routes });
                    op_source.push(i);
                    texts.push(text.clone());
                    rows.push(None);
                }
                Err(e) => {
                    rejected += 1;
                    rows.push(Some(AdmitRow {
                        path: path.clone(),
                        slice: slice_label(text),
                        result: Err(e),
                    }));
                }
            }
        }
        if ops.len() >= 2 {
            self.metrics.batches += 1;
            self.metrics.batched_ops += ops.len() as u64;
            self.metrics.largest_batch = self.metrics.largest_batch.max(ops.len() as u64);
        }
        let results = self.state.ctl.manager_mut().apply_batch(ops);
        for ((slot, result), text) in op_source.into_iter().zip(results).zip(texts) {
            let (path, _) = &items[slot];
            let row = match result {
                Ok(OpOutcome::Created(sid)) => {
                    self.dirty = true;
                    self.state.configs.insert(sid.0, text);
                    let info = self.state.ctl.manager().slice(sid).map(|s| AdmitInfo {
                        id: sid.0,
                        host_ports: s.projection.host_port.len(),
                        cables: s.projection.link_real.len(),
                        entries: s.entries(),
                    });
                    match info {
                        Some(info) => Ok(info),
                        None => unreachable!("apply_batch returned a live slice id"),
                    }
                }
                Ok(_) => unreachable!("a Create op only yields Created"),
                Err(e) => {
                    rejected += 1;
                    Err(SliceOpError::Admission(e).to_string())
                }
            };
            rows[slot] = Some(AdmitRow {
                path: path.clone(),
                slice: slice_label(&items[slot].1),
                result: row,
            });
        }
        let rows: Vec<AdmitRow> = rows
            .into_iter()
            .map(|r| match r {
                Some(r) => r,
                None => unreachable!("every row is filled by prepare or apply"),
            })
            .collect();
        let status = self.state.ctl.status();
        let audit = self.state.ctl.audit();
        let text = if json {
            output::slices_json(&rows, &status, &audit)
        } else {
            output::slices_human(&rows, &status, &audit)
        };
        let mut r = if rejected > 0 {
            Reply::err(id, format!("{rejected} slice(s) rejected"))
        } else if !audit.clean() {
            Reply::err(id, "cross-slice audit found violations")
        } else {
            Reply::ok(id)
        };
        r.output = text;
        r
    }

    /// `sdtctl reconfigure --daemon`: migrate the slice named by the
    /// `from` config's topology (admitting it first if absent — the local
    /// command's create-then-migrate, against persistent state), then
    /// render the epoch report exactly as local mode does.
    fn reconfigure_reply(&mut self, id: u64, req: &ReconfigureReq) -> Reply {
        let from = match TestbedConfig::parse(&req.from_text) {
            Ok(c) => c,
            Err(e) => return Reply::err(id, format!("{}: {e}", req.from_path)),
        };
        let to = match TestbedConfig::parse(&req.to_text) {
            Ok(c) => c,
            Err(e) => return Reply::err(id, e.to_string()),
        };
        let existing = self
            .state
            .ctl
            .manager()
            .slices()
            .find(|s| s.name == from.topology.name())
            .map(|s| s.id);
        let sid = match existing {
            Some(sid) => sid,
            None => {
                match self.state.ctl.create(
                    from.topology.name(),
                    &from.topology,
                    &from.strategy,
                ) {
                    Ok(sid) => {
                        self.dirty = true;
                        self.state.configs.insert(sid.0, req.from_text.clone());
                        sid
                    }
                    Err(e) => {
                        return Reply::err(
                            id,
                            format!("{}: admission failed: {e}", req.from_path),
                        )
                    }
                }
            }
        };
        let attempt = if req.scheduled {
            let mut ch = sdt_openflow::ControlChannel::new(sdt_openflow::ControlConfig {
                drop_prob: req.drop_prob,
                reorder_prob: req.reorder_prob,
                seed: req.seed,
                ..sdt_openflow::ControlConfig::reliable()
            });
            self.state
                .ctl
                .reconfigure_scheduled(sid, &to.topology, &to.strategy, &mut ch)
                .map(|(r, s)| (r, Some(s)))
        } else {
            self.state.ctl.reconfigure(sid, &to.topology, &to.strategy).map(|r| (r, None))
        };
        let (report, sched) = match attempt {
            Ok(x) => x,
            Err(e) => return Reply::err(id, e.to_string()),
        };
        self.dirty = true;
        self.state.configs.insert(sid.0, req.to_text.clone());
        let audit = self.state.ctl.audit();
        let text = if req.json {
            output::reconfigure_json(
                from.topology.name(),
                to.topology.name(),
                req.scheduled,
                &report,
                sched.as_ref(),
                audit.clean(),
            )
        } else {
            output::reconfigure_human(
                from.topology.name(),
                to.topology.name(),
                &report,
                sched.as_ref(),
                audit.clean(),
            )
        };
        let diverged = sched.as_ref().is_some_and(|s| !s.converged);
        let mut r = if !audit.clean() {
            Reply::err(id, "post-reconfiguration audit found violations")
        } else if diverged {
            Reply::err(id, "scheduled migration did not converge")
        } else {
            Reply::ok(id)
        };
        r.extra = vec![("slice".to_string(), Json::u64(sid.0.into()))];
        r.output = text;
        r
    }
}

/// The display name a config would admit under — best effort for rows
/// whose config failed before producing a topology.
fn slice_label(text: &str) -> String {
    TestbedConfig::parse(text)
        .map(|c| c.topology.name().to_string())
        .unwrap_or_else(|_| "<invalid>".to_string())
}

fn outcome_fields(outcome: &OpOutcome) -> Vec<(String, Json)> {
    match outcome {
        OpOutcome::Created(id) => vec![("slice".to_string(), Json::u64(id.0.into()))],
        OpOutcome::Reconfigured(report) => {
            vec![("flow_mods".to_string(), Json::u64(report.flow_mods() as u64))]
        }
        OpOutcome::Destroyed(r) => vec![
            ("host_ports".to_string(), Json::u64(r.host_ports as u64)),
            ("cables".to_string(), Json::u64(r.cables as u64)),
            ("flow_entries".to_string(), Json::u64(r.flow_entries as u64)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_request_maps_methods_and_bad_lines() {
        let (id, req) = parse_request(r#"{"id":7,"method":"ping","params":{}}"#);
        assert_eq!(id, 7);
        assert!(matches!(req, Request::Ping));

        let (_, req) = parse_request(r#"{"id":1,"method":"admit","params":{}}"#);
        assert!(matches!(req, Request::Bad(_)));

        let (id, req) = parse_request("not json at all");
        assert_eq!(id, 0);
        assert!(matches!(req, Request::Bad(_)));

        let (_, req) = parse_request(
            r#"{"id":2,"method":"migrate","params":{"id":3,"config":"x"}}"#,
        );
        match req {
            Request::Migrate { id, text } => {
                assert_eq!(id, 3);
                assert_eq!(text, "x");
            }
            _ => panic!("expected migrate"),
        }
    }

    #[test]
    fn reply_emit_shape() {
        let mut r = Reply::ok(5);
        r.extra = vec![("slice".to_string(), Json::u64(2))];
        r.output = "done".to_string();
        assert_eq!(r.emit(), r#"{"id":5,"ok":true,"slice":2,"output":"done"}"#);
        let e = Reply::err(6, "nope");
        assert_eq!(e.emit(), r#"{"id":6,"ok":false,"output":"","error":"nope"}"#);
    }
}
