//! Versioned, byte-deterministic daemon snapshots.
//!
//! The snapshot is the daemon's crash-recovery story: after every mutating
//! batch the engine serializes its whole world — cluster spec, tenancy
//! bookkeeping, every slice, and the live flow tables — and atomically
//! replaces the state file *before* acknowledging the batch. A `kill -9`
//! at any instant therefore loses at most un-acknowledged work; restart
//! reloads the file and continues serving.
//!
//! What is stored, and why:
//!
//! * **cluster spec, not wiring** — the physical cluster is deterministic
//!   in its spec (model name, switch count, ports, cables), so the
//!   builder re-derives it.
//! * **per-slice config text** — topology generators and routing-strategy
//!   resolution are deterministic, so the slice's `Topology` and
//!   `RouteTable` are re-derived from the config that created (or last
//!   reconfigured) it. Custom topologies serialize through the config
//!   grammar's `kind = "custom"` edge list.
//! * **the projection, verbatim** — a slice's port/cable assignment
//!   depends on what was free *at admission time*, which depends on the
//!   full create/destroy history; it is NOT re-derivable from the configs
//!   alone. Same for the namespaced `installed` pipeline.
//! * **live table dumps, verbatim** — the flow tables are the ground
//!   truth the verifier proves things about. They are re-applied entry by
//!   entry on restore and the switches re-fingerprint themselves; walk
//!   caches start cold, which is safe (fingerprint-validated: a miss,
//!   never a lie).
//!
//! Encoding uses [`Json`]'s deterministic emitter and the flow-entry text
//! codec from [`sdt_openflow::snap`]; map-typed projection fields are
//! key-sorted. Equal states therefore encode to equal bytes, giving the
//! tested property: snapshot → restore → re-snapshot is byte-identical.

use sdt_controller::controller::resolve_strategy;
use sdt_controller::{model_by_name, model_config_name, Json, TestbedConfig};
use sdt_core::cluster::{ClusterBuilder, PhysLink, PhysLinkKind, PhysPort, PhysicalCluster};
use sdt_core::sdt::SdtProjection;
use sdt_core::synthesis::SynthesisOutput;
use sdt_openflow::{snap, FlowEntry, PortNo};
use sdt_routing::RouteTable;
use sdt_tenancy::{ManagerExport, Slice, SliceId, SliceManager};
use sdt_topology::{HostId, LinkId, SwitchId};
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Current snapshot format version. Bump on any incompatible change; the
/// decoder refuses other versions by name instead of misreading them.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Why a snapshot failed to encode, decode, or restore.
#[derive(Clone, Debug)]
pub struct SnapshotError(pub String);

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

fn bad(msg: impl Into<String>) -> SnapshotError {
    SnapshotError(msg.into())
}

/// The physical cluster's deterministic description: enough to rebuild
/// the wiring with [`ClusterBuilder`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClusterSpec {
    /// Switch model, by its `[cluster] model` config name.
    pub model: String,
    /// Physical switch count.
    pub switches: u32,
    /// Host ports reserved per switch.
    pub hosts_per_switch: u16,
    /// Inter-switch cables per switch pair.
    pub inter_links_per_pair: u16,
}

impl ClusterSpec {
    /// The spec of a config file's `[cluster]` section.
    pub fn of_config(cfg: &TestbedConfig) -> Result<ClusterSpec, SnapshotError> {
        let model = model_config_name(&cfg.model)
            .ok_or_else(|| bad(format!("model `{}` has no config name", cfg.model.name)))?;
        Ok(ClusterSpec {
            model: model.to_string(),
            switches: cfg.switches,
            hosts_per_switch: cfg.hosts_per_switch,
            inter_links_per_pair: cfg.inter_links_per_pair,
        })
    }

    /// Rebuild the physical cluster this spec describes.
    pub fn build(&self) -> Result<PhysicalCluster, SnapshotError> {
        let model = model_by_name(&self.model)
            .ok_or_else(|| bad(format!("unknown switch model `{}`", self.model)))?;
        Ok(ClusterBuilder::new(model, self.switches)
            .hosts_per_switch(self.hosts_per_switch)
            .inter_links_per_pair(self.inter_links_per_pair)
            .build())
    }
}

/// One slice as persisted: identity, the config text that (re)creates its
/// topology and routing, its namespace reservation, and the two
/// admission-history-dependent artifacts stored verbatim.
#[derive(Clone, Debug)]
pub struct SliceSnap {
    /// Slice id.
    pub id: u32,
    /// Operator-facing name.
    pub name: String,
    /// Config text of the creating (or last reconfiguring) request.
    pub config: String,
    /// First metadata value of the slice's namespace.
    pub metadata_base: u32,
    /// Reserved metadata values.
    pub metadata_reserved: u32,
    /// First host address of the slice's namespace.
    pub addr_base: u32,
    /// Reserved host addresses.
    pub addr_reserved: u32,
    /// Epochs applied (1 = initial install).
    pub epochs: u32,
    /// Projection onto the shared cluster, verbatim.
    pub projection: SdtProjection,
    /// Namespaced pipeline as installed, verbatim.
    pub installed: SynthesisOutput,
}

/// A complete daemon state dump.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u64,
    /// Cluster wiring description.
    pub cluster: ClusterSpec,
    /// Whether the deadlock gate vetoes cyclic-CDG routing.
    pub require_deadlock_free: bool,
    /// Next slice id.
    pub next_id: u32,
    /// Next free metadata namespace base.
    pub next_metadata: u32,
    /// Next free host-address namespace base.
    pub next_addr: u32,
    /// Admitted slices, in id order.
    pub slices: Vec<SliceSnap>,
    /// Per physical switch: live `(table 0, table 1)` dumps in first-match
    /// order.
    pub tables: Vec<(Vec<FlowEntry>, Vec<FlowEntry>)>,
}

impl Snapshot {
    /// Capture the daemon's current state. `configs` maps slice id to the
    /// config text that created / last reconfigured it.
    pub fn capture(
        spec: &ClusterSpec,
        require_deadlock_free: bool,
        mgr: &SliceManager,
        configs: &BTreeMap<u32, String>,
    ) -> Result<Snapshot, SnapshotError> {
        let ex = mgr.export();
        let mut slices = Vec::new();
        for s in ex.slices {
            let config = configs
                .get(&s.id.0)
                .ok_or_else(|| bad(format!("no config text recorded for {}", s.id)))?
                .clone();
            slices.push(SliceSnap {
                id: s.id.0,
                name: s.name,
                config,
                metadata_base: s.metadata_base,
                metadata_reserved: s.metadata_reserved,
                addr_base: s.addr_base,
                addr_reserved: s.addr_reserved,
                epochs: s.epochs,
                projection: s.projection,
                installed: s.installed,
            });
        }
        Ok(Snapshot {
            version: SNAPSHOT_VERSION,
            cluster: spec.clone(),
            require_deadlock_free,
            next_id: ex.next_id,
            next_metadata: ex.next_metadata,
            next_addr: ex.next_addr,
            slices,
            tables: ex.tables,
        })
    }

    /// Rebuild a live manager (and the per-slice config map) from this
    /// snapshot. All-or-nothing: any inconsistency — unknown model,
    /// unparsable config, table dumps that do not match the slices'
    /// accounting — rejects the whole restore with the reason named.
    pub fn restore(&self) -> Result<(SliceManager, BTreeMap<u32, String>), SnapshotError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(bad(format!(
                "version {} (this build reads {SNAPSHOT_VERSION})",
                self.version
            )));
        }
        let cluster = self.cluster.build()?;
        let mut slices = Vec::new();
        let mut configs = BTreeMap::new();
        for s in &self.slices {
            let cfg = TestbedConfig::parse(&s.config)
                .map_err(|e| bad(format!("slice {}: config: {e}", s.id)))?;
            let strategy = resolve_strategy(&cfg.strategy, &cfg.topology)
                .map_err(|e| bad(format!("slice {}: {e}", s.id)))?;
            let routes = RouteTable::build_for_hosts(&cfg.topology, strategy.as_ref());
            configs.insert(s.id, s.config.clone());
            slices.push(Slice {
                id: SliceId(s.id),
                name: s.name.clone(),
                topology: cfg.topology,
                routes,
                projection: s.projection.clone(),
                metadata_base: s.metadata_base,
                metadata_reserved: s.metadata_reserved,
                addr_base: s.addr_base,
                addr_reserved: s.addr_reserved,
                installed: s.installed.clone(),
                epochs: s.epochs,
            });
        }
        let export = ManagerExport {
            slices,
            next_id: self.next_id,
            next_metadata: self.next_metadata,
            next_addr: self.next_addr,
            tables: self.tables.clone(),
        };
        let mgr = SliceManager::restore(cluster, export).map_err(|e| bad(e.to_string()))?;
        Ok((mgr, configs))
    }

    /// Serialize to the on-disk JSON form. Deterministic: equal snapshots
    /// emit equal bytes.
    pub fn encode(&self) -> String {
        let slices = Json::Arr(self.slices.iter().map(slice_json).collect());
        let tables = Json::Arr(
            self.tables
                .iter()
                .map(|(t0, t1)| {
                    Json::Obj(vec![
                        ("t0".into(), entries_json(t0)),
                        ("t1".into(), entries_json(t1)),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("version".into(), Json::u64(self.version)),
            (
                "cluster".into(),
                Json::Obj(vec![
                    ("model".into(), Json::str(self.cluster.model.as_str())),
                    ("switches".into(), Json::u64(self.cluster.switches.into())),
                    (
                        "hosts_per_switch".into(),
                        Json::u64(self.cluster.hosts_per_switch.into()),
                    ),
                    (
                        "inter_links_per_pair".into(),
                        Json::u64(self.cluster.inter_links_per_pair.into()),
                    ),
                ]),
            ),
            ("require_deadlock_free".into(), Json::Bool(self.require_deadlock_free)),
            ("next_id".into(), Json::u64(self.next_id.into())),
            ("next_metadata".into(), Json::u64(self.next_metadata.into())),
            ("next_addr".into(), Json::u64(self.next_addr.into())),
            ("slices".into(), slices),
            ("tables".into(), tables),
        ])
        .emit()
    }

    /// Parse the on-disk form.
    pub fn decode(text: &str) -> Result<Snapshot, SnapshotError> {
        let doc = Json::parse(text).map_err(|e| bad(e.to_string()))?;
        let version = want_u64(member(&doc, "version")?, "version")?;
        if version != SNAPSHOT_VERSION {
            return Err(bad(format!(
                "version {version} (this build reads {SNAPSHOT_VERSION})"
            )));
        }
        let c = member(&doc, "cluster")?;
        let cluster = ClusterSpec {
            model: want_str(member(c, "model")?, "cluster.model")?.to_string(),
            switches: want_u32(member(c, "switches")?, "cluster.switches")?,
            hosts_per_switch: want_u64(member(c, "hosts_per_switch")?, "hosts_per_switch")?
                as u16,
            inter_links_per_pair: want_u64(
                member(c, "inter_links_per_pair")?,
                "inter_links_per_pair",
            )? as u16,
        };
        let require_deadlock_free = member(&doc, "require_deadlock_free")?
            .as_bool()
            .ok_or_else(|| bad("require_deadlock_free: not a bool"))?;
        let slices = want_arr(member(&doc, "slices")?, "slices")?
            .iter()
            .map(slice_from)
            .collect::<Result<Vec<_>, _>>()?;
        let tables = want_arr(member(&doc, "tables")?, "tables")?
            .iter()
            .map(|t| {
                Ok((
                    entries_from(member(t, "t0")?, "tables.t0")?,
                    entries_from(member(t, "t1")?, "tables.t1")?,
                ))
            })
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        Ok(Snapshot {
            version,
            cluster,
            require_deadlock_free,
            next_id: want_u32(member(&doc, "next_id")?, "next_id")?,
            next_metadata: want_u32(member(&doc, "next_metadata")?, "next_metadata")?,
            next_addr: want_u32(member(&doc, "next_addr")?, "next_addr")?,
            slices,
            tables,
        })
    }
}

/// Atomically replace `path` with `text`: write a sibling tmp file, sync
/// it, rename over the target. A crash mid-write leaves the old snapshot
/// intact; rename is atomic on POSIX filesystems.
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_file_name(format!(
        "{}.tmp",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("snapshot")
    ));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(text.as_bytes())?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)
}

// -------------------------------------------------------- JSON helpers

fn member<'a>(j: &'a Json, key: &str) -> Result<&'a Json, SnapshotError> {
    j.get(key).ok_or_else(|| bad(format!("missing member `{key}`")))
}

fn want_u64(j: &Json, what: &str) -> Result<u64, SnapshotError> {
    j.as_u64().ok_or_else(|| bad(format!("{what}: not an unsigned integer")))
}

fn want_u32(j: &Json, what: &str) -> Result<u32, SnapshotError> {
    u32::try_from(want_u64(j, what)?).map_err(|_| bad(format!("{what}: out of u32 range")))
}

fn want_str<'a>(j: &'a Json, what: &str) -> Result<&'a str, SnapshotError> {
    j.as_str().ok_or_else(|| bad(format!("{what}: not a string")))
}

fn want_arr<'a>(j: &'a Json, what: &str) -> Result<&'a [Json], SnapshotError> {
    j.as_arr().ok_or_else(|| bad(format!("{what}: not an array")))
}

fn u32s_json(ns: impl IntoIterator<Item = u32>) -> Json {
    Json::Arr(ns.into_iter().map(|n| Json::u64(n.into())).collect())
}

fn u32s_from(j: &Json, what: &str) -> Result<Vec<u32>, SnapshotError> {
    want_arr(j, what)?.iter().map(|n| want_u32(n, what)).collect()
}

fn port_json(p: PhysPort) -> Json {
    Json::Arr(vec![Json::u64(p.switch.into()), Json::u64(p.port.0.into())])
}

fn port_from(j: &Json, what: &str) -> Result<PhysPort, SnapshotError> {
    let a = want_arr(j, what)?;
    let [sw, port] = a else {
        return Err(bad(format!("{what}: expected [switch, port]")));
    };
    Ok(PhysPort {
        switch: want_u32(sw, what)?,
        port: PortNo(want_u64(port, what)? as u16),
    })
}

fn entries_json(entries: &[FlowEntry]) -> Json {
    Json::Arr(snap::encode_entries(entries).into_iter().map(Json::Str).collect())
}

fn entries_from(j: &Json, what: &str) -> Result<Vec<FlowEntry>, SnapshotError> {
    want_arr(j, what)?
        .iter()
        .map(|l| {
            snap::decode_entry(want_str(l, what)?).map_err(|e| bad(format!("{what}: {e}")))
        })
        .collect()
}

fn synth_json(s: &SynthesisOutput) -> Json {
    let tab = |t: &Vec<Vec<FlowEntry>>| Json::Arr(t.iter().map(|e| entries_json(e)).collect());
    Json::Obj(vec![
        ("t0".into(), tab(&s.table0)),
        ("t1".into(), tab(&s.table1)),
        (
            "n".into(),
            Json::Arr(s.entries_per_switch.iter().map(|&n| Json::u64(n as u64)).collect()),
        ),
    ])
}

fn synth_from(j: &Json, what: &str) -> Result<SynthesisOutput, SnapshotError> {
    let tab = |m: &Json| -> Result<Vec<Vec<FlowEntry>>, SnapshotError> {
        want_arr(m, what)?.iter().map(|t| entries_from(t, what)).collect()
    };
    Ok(SynthesisOutput {
        table0: tab(member(j, "t0")?)?,
        table1: tab(member(j, "t1")?)?,
        entries_per_switch: want_arr(member(j, "n")?, what)?
            .iter()
            .map(|n| want_u64(n, what).map(|n| n as usize))
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn projection_json(p: &SdtProjection) -> Json {
    let mut links: Vec<(&LinkId, &PhysLink)> = p.link_real.iter().collect();
    links.sort_by_key(|(lid, _)| lid.0);
    let link_real = Json::Arr(
        links
            .into_iter()
            .map(|(lid, l)| {
                Json::Arr(vec![
                    Json::u64(lid.0.into()),
                    Json::str(match l.kind {
                        PhysLinkKind::SelfLink => "self",
                        PhysLinkKind::InterSwitch => "inter",
                    }),
                    port_json(l.a),
                    port_json(l.b),
                ])
            })
            .collect(),
    );
    let mut ports: Vec<(&(SwitchId, LinkId), &PhysPort)> = p.port_of.iter().collect();
    ports.sort_by_key(|((s, l), _)| (s.0, l.0));
    let port_of = Json::Arr(
        ports
            .into_iter()
            .map(|((s, l), pp)| {
                Json::Arr(vec![Json::u64(s.0.into()), Json::u64(l.0.into()), port_json(*pp)])
            })
            .collect(),
    );
    let mut hosts: Vec<(&(HostId, LinkId), &PhysPort)> = p.host_port.iter().collect();
    hosts.sort_by_key(|((h, l), _)| (h.0, l.0));
    let host_port = Json::Arr(
        hosts
            .into_iter()
            .map(|((h, l), pp)| {
                Json::Arr(vec![Json::u64(h.0.into()), Json::u64(l.0.into()), port_json(*pp)])
            })
            .collect(),
    );
    let subswitches = Json::Arr(
        p.subswitches
            .iter()
            .map(|per_switch| {
                Json::Arr(
                    per_switch
                        .iter()
                        .map(|(sid, ports)| {
                            Json::Arr(vec![
                                Json::u64(sid.0.into()),
                                Json::Arr(ports.iter().map(|&pp| port_json(pp)).collect()),
                            ])
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    Json::Obj(vec![
        ("assignment".into(), u32s_json(p.assignment.iter().copied())),
        ("link_real".into(), link_real),
        ("port_of".into(), port_of),
        ("host_port".into(), host_port),
        ("subswitches".into(), subswitches),
        ("synthesis".into(), synth_json(&p.synthesis)),
        ("inter".into(), Json::u64(p.inter_switch_links_used as u64)),
    ])
}

fn projection_from(j: &Json) -> Result<SdtProjection, SnapshotError> {
    let assignment = u32s_from(member(j, "assignment")?, "assignment")?;
    let mut link_real = std::collections::HashMap::new();
    for row in want_arr(member(j, "link_real")?, "link_real")? {
        let r = want_arr(row, "link_real row")?;
        let [lid, kind, a, b] = r else {
            return Err(bad("link_real row: expected [link, kind, a, b]"));
        };
        let kind = match want_str(kind, "link kind")? {
            "self" => PhysLinkKind::SelfLink,
            "inter" => PhysLinkKind::InterSwitch,
            other => return Err(bad(format!("unknown link kind `{other}`"))),
        };
        link_real.insert(
            LinkId(want_u32(lid, "link id")?),
            PhysLink { kind, a: port_from(a, "link end a")?, b: port_from(b, "link end b")? },
        );
    }
    let mut port_of = std::collections::HashMap::new();
    for row in want_arr(member(j, "port_of")?, "port_of")? {
        let r = want_arr(row, "port_of row")?;
        let [s, l, pp] = r else {
            return Err(bad("port_of row: expected [switch, link, port]"));
        };
        port_of.insert(
            (SwitchId(want_u32(s, "port_of switch")?), LinkId(want_u32(l, "port_of link")?)),
            port_from(pp, "port_of port")?,
        );
    }
    let mut host_port = std::collections::HashMap::new();
    for row in want_arr(member(j, "host_port")?, "host_port")? {
        let r = want_arr(row, "host_port row")?;
        let [h, l, pp] = r else {
            return Err(bad("host_port row: expected [host, link, port]"));
        };
        host_port.insert(
            (HostId(want_u32(h, "host_port host")?), LinkId(want_u32(l, "host_port link")?)),
            port_from(pp, "host_port port")?,
        );
    }
    let mut subswitches = Vec::new();
    for per_switch in want_arr(member(j, "subswitches")?, "subswitches")? {
        let mut subs = Vec::new();
        for entry in want_arr(per_switch, "subswitch entry")? {
            let r = want_arr(entry, "subswitch entry")?;
            let [sid, ports] = r else {
                return Err(bad("subswitch entry: expected [switch, ports]"));
            };
            let ports = want_arr(ports, "subswitch ports")?
                .iter()
                .map(|pp| port_from(pp, "subswitch port"))
                .collect::<Result<Vec<_>, _>>()?;
            subs.push((SwitchId(want_u32(sid, "subswitch id")?), ports));
        }
        subswitches.push(subs);
    }
    Ok(SdtProjection {
        assignment,
        link_real,
        port_of,
        host_port,
        subswitches,
        synthesis: synth_from(member(j, "synthesis")?, "projection.synthesis")?,
        inter_switch_links_used: want_u64(member(j, "inter")?, "inter")? as usize,
    })
}

fn slice_json(s: &SliceSnap) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::u64(s.id.into())),
        ("name".into(), Json::str(s.name.as_str())),
        ("config".into(), Json::str(s.config.as_str())),
        ("metadata_base".into(), Json::u64(s.metadata_base.into())),
        ("metadata_reserved".into(), Json::u64(s.metadata_reserved.into())),
        ("addr_base".into(), Json::u64(s.addr_base.into())),
        ("addr_reserved".into(), Json::u64(s.addr_reserved.into())),
        ("epochs".into(), Json::u64(s.epochs.into())),
        ("projection".into(), projection_json(&s.projection)),
        ("installed".into(), synth_json(&s.installed)),
    ])
}

fn slice_from(j: &Json) -> Result<SliceSnap, SnapshotError> {
    Ok(SliceSnap {
        id: want_u32(member(j, "id")?, "slice.id")?,
        name: want_str(member(j, "name")?, "slice.name")?.to_string(),
        config: want_str(member(j, "config")?, "slice.config")?.to_string(),
        metadata_base: want_u32(member(j, "metadata_base")?, "metadata_base")?,
        metadata_reserved: want_u32(member(j, "metadata_reserved")?, "metadata_reserved")?,
        addr_base: want_u32(member(j, "addr_base")?, "addr_base")?,
        addr_reserved: want_u32(member(j, "addr_reserved")?, "addr_reserved")?,
        epochs: want_u32(member(j, "epochs")?, "epochs")?,
        projection: projection_from(member(j, "projection")?)?,
        installed: synth_from(member(j, "installed")?, "installed")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdt_controller::SliceController;

    const CLUSTER: &str = "[cluster]\nswitches = 2\nmodel = \"openflow-128x100g\"\n\
                           hosts_per_switch = 16\ninter_links_per_pair = 16\n";

    fn cfg(topo: &str) -> String {
        format!("[topology]\n{topo}\n{CLUSTER}")
    }

    fn populated() -> (ClusterSpec, SliceController, BTreeMap<u32, String>) {
        let ft = cfg("kind = \"fat-tree\"\nk = 4");
        let ch = cfg("kind = \"chain\"\nn = 4");
        let first = TestbedConfig::parse(&ft).unwrap();
        let spec = ClusterSpec::of_config(&first).unwrap();
        let mut ctl = SliceController::from_config(&first);
        let mut configs = BTreeMap::new();
        for text in [&ft, &ch] {
            let c = TestbedConfig::parse(text).unwrap();
            let id = ctl.create(c.topology.name(), &c.topology, &c.strategy).unwrap();
            configs.insert(id.0, text.clone());
        }
        (spec, ctl, configs)
    }

    #[test]
    fn encode_decode_restore_re_encode_is_byte_identical() {
        let (spec, ctl, configs) = populated();
        let snap = Snapshot::capture(&spec, true, ctl.manager(), &configs).unwrap();
        let text = snap.encode();

        let decoded = Snapshot::decode(&text).unwrap();
        assert_eq!(decoded.encode(), text, "decode → encode must be identity");

        let (mgr, configs2) = decoded.restore().unwrap();
        assert_eq!(configs2, configs);
        let again = Snapshot::capture(&spec, true, &mgr, &configs2).unwrap();
        assert_eq!(again.encode(), text, "restore → capture must be identity");
    }

    #[test]
    fn restored_manager_serves_and_verifies() {
        let (spec, mut ctl, configs) = populated();
        let snap = Snapshot::capture(&spec, true, ctl.manager(), &configs).unwrap();
        let before = ctl.manager_mut().verify_report();

        let (mut mgr, _) = snap.restore().unwrap();
        let after = mgr.verify_report();
        assert!(after.holds());
        assert_eq!(format!("{before:?}"), format!("{after:?}"));

        // The restored manager keeps working: destroy one slice cleanly.
        let r = mgr.destroy(SliceId(0)).unwrap();
        assert!(r.host_ports > 0);
    }

    #[test]
    fn version_mismatch_refused_by_name() {
        let (spec, ctl, configs) = populated();
        let snap = Snapshot::capture(&spec, true, ctl.manager(), &configs).unwrap();
        let text = snap.encode().replacen("\"version\":1", "\"version\":9", 1);
        let e = match Snapshot::decode(&text) {
            Err(e) => e,
            Ok(_) => panic!("future version must be refused"),
        };
        assert!(e.to_string().contains("version 9"), "{e}");
    }

    #[test]
    fn corrupt_entry_names_the_record() {
        let (spec, ctl, configs) = populated();
        let text = Snapshot::capture(&spec, true, ctl.manager(), &configs)
            .unwrap()
            .encode()
            .replacen("|out:", "|warp:", 1);
        let e = match Snapshot::decode(&text) {
            Err(e) => e,
            Ok(_) => panic!("corrupt record must be refused"),
        };
        assert!(e.to_string().contains("warp"), "{e}");
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("sdtd-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        write_atomic(&path, "first").unwrap();
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(!dir.join("state.json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
