//! `sdtd` — the persistent SDT control-plane daemon.
//!
//! ```text
//! sdtd --socket <path> [--config <cluster.toml>] [--snapshot <state.json>]
//!      [--batch-max <n>]
//! ```
//!
//! Startup resolves state in this order: an existing `--snapshot` file
//! wins (crash recovery — the file describes the cluster *and* every
//! admitted slice), else `--config` wires a fresh cluster from its
//! `[cluster]` section. At least one of the two must be given. After a
//! restore the full static proof runs once; a failing proof is reported
//! but the daemon keeps serving — the operator decides what to tear down,
//! and `sdtctl --daemon <socket> verify` shows the findings.
//!
//! The daemon then serves `sdtctl --daemon` clients (and anything else
//! speaking the newline-delimited JSON-RPC protocol) until a `shutdown`
//! request or a signal; every mutation is snapshotted before its reply is
//! sent, so `kill -9` at any point loses nothing acknowledged.

use sdt_sdtd::{run, DaemonOptions, DaemonState};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: sdtd --socket <path> [--config <cluster.toml>] \
                     [--snapshot <state.json>] [--batch-max <n>]";

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sdtd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let mut socket: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut snapshot: Option<PathBuf> = None;
    let mut batch_max = 64usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(PathBuf::from(need(&mut it, "--socket")?)),
            "--config" => config = Some(PathBuf::from(need(&mut it, "--config")?)),
            "--snapshot" => snapshot = Some(PathBuf::from(need(&mut it, "--snapshot")?)),
            "--batch-max" => {
                batch_max = need(&mut it, "--batch-max")?
                    .parse()
                    .map_err(|_| "--batch-max needs a positive integer".to_string())?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let socket = socket.ok_or(format!("--socket is required\n{USAGE}"))?;

    let mut state = match &snapshot {
        Some(path) if path.exists() => {
            let mut s = DaemonState::from_snapshot_file(path)?;
            eprintln!(
                "sdtd: restored {} slice(s) from {}",
                s.slice_count(),
                path.display()
            );
            // Re-prove the restored tables once, up front. A failure is
            // loud but not fatal: the state is what it is, and serving it
            // (with `verify` exposing the findings) beats refusing to
            // start.
            if s.verify_holds() {
                eprintln!("sdtd: restored state re-verified clean");
            } else {
                eprintln!(
                    "sdtd: WARNING: restored state fails static verification; \
                     run `sdtctl --daemon` verify for findings"
                );
            }
            s
        }
        _ => {
            let path = config.ok_or(format!(
                "need --config (fresh start) or an existing --snapshot file\n{USAGE}"
            ))?;
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            DaemonState::fresh(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
    };
    let _ = &mut state;

    eprintln!("sdtd: serving on {} (batch-max {batch_max})", socket.display());
    let metrics = run(state, DaemonOptions { socket, snapshot, batch_max })?;
    eprintln!(
        "sdtd: shut down after {} request(s), {} batch(es) covering {} op(s), \
         {} snapshot write(s)",
        metrics.requests, metrics.batches, metrics.batched_ops, metrics.snapshot_writes
    );
    Ok(())
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or(format!("{flag} needs a value\n{USAGE}"))
}
