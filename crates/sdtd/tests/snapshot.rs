//! Property tests for the snapshot codec: on ANY reachable daemon state —
//! any interleaving of admissions (some rejected) and teardowns over a
//! shared cluster — the snapshot round trip is exact:
//!
//! (a) `encode → decode → encode` is byte-identical (codec identity);
//! (b) `capture → restore → capture → encode` is byte-identical (the
//!     restored manager IS the original, as far as persistence can see);
//! (c) the restored manager's full static-verification report renders
//!     byte-identical to the original's — findings, counts, everything.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use sdt_controller::{SliceController, TestbedConfig};
use sdt_sdtd::{ClusterSpec, Snapshot};
use sdt_tenancy::SliceId;
use std::collections::BTreeMap;

fn cfg(topology: &str) -> String {
    format!(
        "[topology]\n{topology}\n\n[cluster]\nswitches = 2\n\
         model = \"openflow-128x100g\"\nhosts_per_switch = 16\n\
         inter_links_per_pair = 16\n"
    )
}

/// The tenant config pool: small topologies across the generator zoo,
/// including one (fat-tree k=4) big enough to draw honest rejections once
/// the little cluster fills up.
fn pool() -> Vec<String> {
    vec![
        cfg("kind = \"chain\"\nn = 2"),
        cfg("kind = \"chain\"\nn = 4"),
        cfg("kind = \"ring\"\nn = 4"),
        format!("{}\n[routing]\nstrategy = \"updown\"\n", cfg("kind = \"ring\"\nn = 5")),
        cfg("kind = \"mesh\"\ndims = [2, 2]"),
        cfg("kind = \"star\"\nleaves = 3"),
        cfg("kind = \"fat-tree\"\nk = 4"),
    ]
}

/// Replay a random op sequence the way the daemon would: admissions keep
/// the per-slice config text, teardowns drop it. Returns the populated
/// controller plus the config map a snapshot capture needs.
fn build(ops: &[(u8, u8)]) -> (SliceController, BTreeMap<u32, String>) {
    let pool = pool();
    let first = TestbedConfig::parse(&pool[0]).unwrap();
    let mut ctl = SliceController::from_config(&first);
    let mut configs: BTreeMap<u32, String> = BTreeMap::new();
    for &(sel, action) in ops {
        if action % 4 == 0 && !configs.is_empty() {
            // Destroy the (sel % len)-th live slice.
            let ids: Vec<u32> = configs.keys().copied().collect();
            let id = ids[sel as usize % ids.len()];
            ctl.destroy(SliceId(id)).unwrap();
            configs.remove(&id);
        } else {
            let text = &pool[sel as usize % pool.len()];
            let c = TestbedConfig::parse(text).unwrap();
            if let Ok(id) = ctl.create(c.topology.name(), &c.topology, &c.strategy) {
                configs.insert(id.0, text.clone());
            }
        }
    }
    (ctl, configs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn snapshot_round_trip_is_byte_identical(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..10),
    ) {
        let (mut ctl, configs) = build(&ops);
        let spec = ClusterSpec {
            model: "openflow-128x100g".to_string(),
            switches: 2,
            hosts_per_switch: 16,
            inter_links_per_pair: 16,
        };
        let snap = Snapshot::capture(&spec, true, ctl.manager(), &configs).unwrap();
        let text = snap.encode();

        // (a) codec identity.
        let decoded = Snapshot::decode(&text).unwrap();
        prop_assert_eq!(decoded.encode(), text.clone());

        // (b) restore → capture identity, byte for byte.
        let (mgr, restored_configs) = decoded.restore().unwrap();
        prop_assert_eq!(&restored_configs, &configs);
        let again = Snapshot::capture(&spec, true, &mgr, &restored_configs).unwrap();
        prop_assert_eq!(again.encode(), text);

        // (c) the restored verifier findings render byte-identical.
        let mut mgr = mgr;
        let original = format!("{:?}", ctl.manager_mut().verify_report());
        let restored = format!("{:?}", mgr.verify_report());
        prop_assert_eq!(original, restored);
    }
}
