//! Model-checked invariants of the extracted engine loop
//! (`sdt_sdtd::engine::engine_loop`), explored under **every** schedule a
//! bounded DFS reaches — producers racing the drain, batch coalescing,
//! persist-then-reply, and the shutdown drain. The daemon's own `Engine`
//! implements the same `EngineHost` trait against real slices and
//! sockets; these tests implement it with a recording host that asserts
//! the contract at each step:
//!
//! - **snapshot-before-reply**: a mutation's `ok` is delivered only after
//!   a persist covered it (the crash-safety linchpin the kill-9 chaos
//!   test can only sample);
//! - **batched == sequential multiset**: coalescing runs never lose,
//!   duplicate, or reorder work;
//! - **FCFS per connection**: replies come back in request order;
//! - **terminal replies on shutdown**: a queued request is either applied
//!   or rejected — never silently dropped.
//!
//! These run in the plain build: the engine loop's concurrency surface is
//! injected through traits, so it can be exhaustively explored without
//! the `--cfg sdt_check` shim swap that the in-crate ports need.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;

use sdt_check::sync::mpsc::{Receiver, TryRecvError};
use sdt_check::thread;
use sdt_sdtd::engine::{engine_loop, EngineHost, Poll, WorkSource};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    /// Batchable state mutation (the daemon's admit/migrate/destroy).
    Mutate,
    /// Read-only request, applied alone.
    Read,
    /// Stops the engine after its reply.
    Shutdown,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Item {
    conn: u8,
    seq: u32,
    kind: Kind,
}

/// What happened to one request, in per-connection delivery order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Outcome {
    Replied(u32),
    Rejected(u32),
}

impl Outcome {
    fn seq(self) -> u32 {
        match self {
            Outcome::Replied(s) | Outcome::Rejected(s) => s,
        }
    }
}

/// Recording host: applies mutations to an in-memory log, models the
/// snapshot as a durable prefix length, and asserts the contract on every
/// delivery.
#[derive(Default)]
struct RecordingHost {
    /// Mutations applied, in application order.
    applied: Vec<(u8, u32)>,
    /// How many of `applied` the last persist made durable.
    durable: usize,
    dirty: bool,
    /// Terminal outcomes per connection, in delivery order.
    outcomes: BTreeMap<u8, Vec<Outcome>>,
    /// Sizes of the coalesced runs that reached apply_run.
    run_sizes: Vec<usize>,
    rejected: usize,
}

impl EngineHost for RecordingHost {
    type Item = Item;
    type Reply = ();

    fn batchable(&self, item: &Item) -> bool {
        item.kind == Kind::Mutate
    }

    fn is_shutdown(&self, item: &Item) -> bool {
        item.kind == Kind::Shutdown
    }

    fn apply_run(&mut self, run: &[Item]) -> Vec<()> {
        assert!(!run.is_empty());
        assert!(run.iter().all(|i| i.kind == Kind::Mutate), "only mutations coalesce");
        self.run_sizes.push(run.len());
        for item in run {
            self.applied.push((item.conn, item.seq));
        }
        self.dirty = true;
        vec![(); run.len()]
    }

    fn apply_one(&mut self, item: &Item) {
        assert_ne!(item.kind, Kind::Mutate, "mutations go through apply_run");
    }

    fn persist_if_dirty(&mut self) {
        if self.dirty {
            self.durable = self.applied.len();
            self.dirty = false;
        }
    }

    fn deliver(&mut self, item: &Item, (): ()) {
        if item.kind == Kind::Mutate {
            // Snapshot-before-reply: the mutation acked here must already
            // be inside the durable prefix.
            let pos = self
                .applied
                .iter()
                .position(|&e| e == (item.conn, item.seq))
                .expect("an acked mutation was applied");
            assert!(
                pos < self.durable,
                "reply for {:?} delivered before the snapshot covered it",
                item
            );
        }
        self.outcomes.entry(item.conn).or_default().push(Outcome::Replied(item.seq));
    }

    fn reject_undelivered(&mut self, item: Item) {
        assert!(
            !self.applied.contains(&(item.conn, item.seq)),
            "an applied mutation must never be rejected"
        );
        self.outcomes.entry(item.conn).or_default().push(Outcome::Rejected(item.seq));
        self.rejected += 1;
    }

    fn note_drain_cycle(&mut self) {}
}

impl RecordingHost {
    /// Per-connection outcomes arrive in strictly increasing seq order.
    fn assert_fcfs(&self) {
        for (conn, outs) in &self.outcomes {
            let seqs: Vec<u32> = outs.iter().map(|o| o.seq()).collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(seqs, sorted, "connection {conn} replies out of FCFS order");
        }
    }

    fn terminal_count(&self) -> usize {
        self.outcomes.values().map(Vec::len).sum()
    }
}

/// Bridges the checked channel into the engine's `WorkSource` (the daemon
/// uses the `sdt_sync` receiver, which is this same type only under
/// `--cfg sdt_check`).
struct CheckedSource(Receiver<Item>);

impl WorkSource<Item> for CheckedSource {
    fn next_blocking(&self) -> Option<Item> {
        self.0.recv().ok()
    }

    fn poll(&self) -> Poll<Item> {
        match self.0.try_recv() {
            Ok(item) => Poll::Item(item),
            Err(TryRecvError::Empty) => Poll::Empty,
            Err(TryRecvError::Disconnected) => Poll::Closed,
        }
    }
}

const M: Kind = Kind::Mutate;

/// Two connections racing mutations (plus one read) against the engine:
/// on every schedule the applied multiset equals exactly what was sent,
/// per-connection FCFS holds, and every mutation ack happens only after
/// its snapshot — regardless of how the drain slices the backlog into
/// batches.
#[test]
fn engine_batching_preserves_multiset_fcfs_and_durability() {
    let exploration = sdt_check::Config::dfs()
        .explore(|| {
            let (tx, rx) = sdt_check::sync::mpsc::channel::<Item>();
            let p1 = {
                let tx = tx.clone();
                thread::spawn(move || {
                    tx.send(Item { conn: 1, seq: 1, kind: M }).unwrap();
                    tx.send(Item { conn: 1, seq: 2, kind: M }).unwrap();
                })
            };
            let p2 = {
                let tx = tx.clone();
                thread::spawn(move || {
                    tx.send(Item { conn: 2, seq: 1, kind: M }).unwrap();
                    tx.send(Item { conn: 2, seq: 2, kind: Kind::Read }).unwrap();
                })
            };
            drop(tx);

            let mut host = RecordingHost::default();
            engine_loop(&mut host, &CheckedSource(rx), 2, 4);

            // Batched == sequential multiset: nothing lost, duplicated,
            // or invented, however the runs were coalesced.
            let mut applied = host.applied.clone();
            applied.sort_unstable();
            assert_eq!(applied, vec![(1, 1), (1, 2), (2, 1)]);
            assert!(host.run_sizes.iter().all(|&s| (1..=2).contains(&s)));
            host.assert_fcfs();
            assert_eq!(host.terminal_count(), 4, "every request is answered");
            assert_eq!(host.rejected, 0);
            // All acks delivered => the final persist covered everything.
            assert_eq!(host.durable, 3);
            p1.join().unwrap();
            p2.join().unwrap();
        })
        .expect("no schedule may violate the engine contract");
    assert!(
        exploration.schedules > 50,
        "producer/drain races must fan out into many schedules, got {}",
        exploration.schedules
    );
}

/// Shutdown ordered *after* all mutations (producer join barrier): every
/// request — applied or not — gets exactly one terminal outcome, and the
/// engine stops.
#[test]
fn shutdown_after_backlog_answers_everything() {
    sdt_check::model(|| {
        let (tx, rx) = sdt_check::sync::mpsc::channel::<Item>();
        let shutdown_sender = {
            let tx = tx.clone();
            let producer = {
                let tx = tx.clone();
                thread::spawn(move || {
                    tx.send(Item { conn: 1, seq: 1, kind: M }).unwrap();
                    tx.send(Item { conn: 1, seq: 2, kind: M }).unwrap();
                })
            };
            thread::spawn(move || {
                producer.join().unwrap();
                tx.send(Item { conn: 9, seq: 1, kind: Kind::Shutdown }).unwrap();
            })
        };
        drop(tx);

        let mut host = RecordingHost::default();
        engine_loop(&mut host, &CheckedSource(rx), 2, 4);

        host.assert_fcfs();
        assert_eq!(host.terminal_count(), 3, "every request is answered, shutdown included");
        shutdown_sender.join().unwrap();
    });
}

/// Shutdown racing a two-request mutation producer: rejected items are never
/// applied, per-connection order still holds, and across the exploration
/// at least one schedule actually exercises the reject path (a queued
/// mutation stranded behind the shutdown).
#[test]
fn shutdown_racing_mutations_never_drops_a_queued_request() {
    // Outside the model on purpose: post-hoc statistics over all explored
    // schedules. The model never branches on it, so determinism holds.
    let reject_schedules = std::sync::atomic::AtomicUsize::new(0);
    sdt_check::model(|| {
        let (tx, rx) = sdt_check::sync::mpsc::channel::<Item>();
        // On schedules where shutdown wins the race the engine exits and
        // drops the receiver before a producer sends; that send fails,
        // exactly like a reader thread's send after the real engine
        // stops. The producers tolerate it (the reader logs and exits).
        let p1 = {
            let tx = tx.clone();
            thread::spawn(move || {
                let _ = tx.send(Item { conn: 1, seq: 1, kind: M });
                let _ = tx.send(Item { conn: 1, seq: 2, kind: M });
            })
        };
        let p3 = {
            let tx = tx.clone();
            thread::spawn(move || {
                let _ = tx.send(Item { conn: 9, seq: 1, kind: Kind::Shutdown });
            })
        };
        drop(tx);

        let mut host = RecordingHost::default();
        engine_loop(&mut host, &CheckedSource(rx), 2, 4);

        host.assert_fcfs();
        // The shutdown itself is always answered; each mutation the
        // engine pulled is either applied+acked or rejected — never
        // silently dropped while sitting in the queue.
        assert!(host.outcomes.get(&9).is_some_and(|o| o == &[Outcome::Replied(1)]));
        assert_eq!(host.applied.len() + host.rejected + 1, host.terminal_count());
        if host.rejected > 0 {
            reject_schedules.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        p1.join().unwrap();
        p3.join().unwrap();
    });
    assert!(
        reject_schedules.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "some schedule must strand a mutation behind the shutdown and reject it"
    );
}
