//! Crash-recovery proof against the real `sdtd` binary: admit slices over
//! the wire, `kill -9` the daemon (mid-churn in the chaos case), restart
//! it from its snapshot file, and hold it to the durability contract:
//!
//! * a quiesced daemon's verify report is byte-identical across the kill;
//! * re-snapshotting the restored state reproduces the snapshot file byte
//!   for byte;
//! * every operation that was ACKED before the kill is visible after the
//!   restart (acked create ⇒ slice exists; acked destroy ⇒ gone) — the
//!   engine persists before it replies, so `kill -9` can only lose work
//!   nobody was told succeeded.

#![allow(clippy::unwrap_used, clippy::expect_used)]

mod util;

use sdt_controller::Json;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use util::{cfg, outcome, output, wait_for_socket, Client};

struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn start(dir: &Path, fresh_config: Option<&Path>) -> Daemon {
        let socket = dir.join("sdtd.sock");
        let snapshot = dir.join("state.json");
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_sdtd"));
        cmd.arg("--socket").arg(&socket).arg("--snapshot").arg(&snapshot);
        if let Some(cfg_path) = fresh_config {
            cmd.arg("--config").arg(cfg_path);
        }
        let child = cmd
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn sdtd");
        wait_for_socket(&socket);
        Daemon { child, socket }
    }

    /// SIGKILL — no shutdown handshake, no flush, nothing.
    fn kill9(&mut self) {
        self.child.kill().expect("kill -9 sdtd");
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn write_config(dir: &Path) -> PathBuf {
    let path = dir.join("cluster.toml");
    std::fs::write(&path, cfg("kind = \"chain\"\nn = 3")).unwrap();
    path
}

#[test]
fn kill9_and_restart_preserves_verify_report_and_snapshot_bytes() {
    let dir = util::scratch("restart-quiesced");
    let config = write_config(&dir);
    let mut daemon = Daemon::start(&dir, Some(&config));

    let mut c = Client::connect(&daemon.socket);
    for topo in ["kind = \"fat-tree\"\nk = 4", "kind = \"chain\"\nn = 4", "kind = \"ring\"\nn = 4"]
    {
        let reply =
            c.call("admit", vec![("config".into(), Json::str(cfg(topo).as_str()))]);
        let (ok, err) = outcome(&reply);
        assert!(ok, "admit {topo}: {err}");
    }
    let before = c.call("verify", vec![("json".into(), Json::Bool(true))]);
    assert!(outcome(&before).0, "pre-kill verify must hold");
    let snapshot_before = std::fs::read_to_string(dir.join("state.json")).unwrap();

    daemon.kill9();

    // Restart purely from the snapshot — no --config.
    let mut daemon = Daemon::start(&dir, None);
    let mut c = Client::connect(&daemon.socket);
    let after = c.call("verify", vec![("json".into(), Json::Bool(true))]);
    assert!(outcome(&after).0, "post-restart verify must hold");
    assert_eq!(
        output(&before),
        output(&after),
        "verify report must be byte-identical across kill -9"
    );

    // Forcing a re-snapshot of the restored state must reproduce the
    // pre-kill file byte for byte.
    assert!(outcome(&c.call("snapshot", vec![])).0);
    let snapshot_after = std::fs::read_to_string(dir.join("state.json")).unwrap();
    assert_eq!(snapshot_before, snapshot_after, "re-snapshot must be byte-identical");

    daemon.kill9();
}

/// What one churn client saw acknowledged before the lights went out.
#[derive(Default)]
struct Acked {
    created: Vec<u64>,
    destroyed: Vec<u64>,
}

/// Hammer the daemon with create/destroy churn until the connection dies
/// (= the kill landed), remembering every acked outcome.
fn churn(socket: &Path) -> Acked {
    let mut c = Client::connect(socket);
    let mut acked = Acked::default();
    let admit_cfg = cfg("kind = \"chain\"\nn = 3");
    loop {
        let Ok(id) =
            c.send("admit", vec![("config".into(), Json::str(admit_cfg.as_str()))])
        else {
            return acked;
        };
        let Some(reply) = c.read_reply() else { return acked };
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(id));
        let slice = reply.get("slice").and_then(Json::as_u64);
        if let Some(sid) = slice {
            acked.created.push(sid);
            // Tear down every other slice so the fleet keeps churning
            // instead of saturating and rejecting everything.
            if sid % 2 == 0 {
                if c.send("destroy", vec![("id".into(), Json::u64(sid))]).is_err() {
                    return acked;
                }
                let Some(reply) = c.read_reply() else { return acked };
                if outcome(&reply).0 {
                    acked.destroyed.push(sid);
                }
            }
        }
    }
}

#[test]
fn kill9_mid_churn_loses_nothing_that_was_acked() {
    let dir = util::scratch("restart-churn");
    let config = write_config(&dir);
    let mut daemon = Daemon::start(&dir, Some(&config));

    let socket = daemon.socket.clone();
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let socket = socket.clone();
            std::thread::spawn(move || churn(&socket))
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(400));
    daemon.kill9();

    let mut created: BTreeSet<u64> = BTreeSet::new();
    let mut destroyed: BTreeSet<u64> = BTreeSet::new();
    for h in clients {
        let acked = h.join().expect("churn client panicked");
        created.extend(acked.created);
        destroyed.extend(acked.destroyed);
    }
    assert!(!created.is_empty(), "chaos run admitted nothing — kill came too early");

    let mut daemon = Daemon::start(&dir, None);
    let mut c = Client::connect(&daemon.socket);

    // The restored fleet must contain every acked create that was not
    // acked-destroyed, and none of the acked destroys. Slices from
    // UNacked requests may legitimately exist (persisted, reply lost).
    let status = c.call("status", vec![]);
    assert!(outcome(&status).0);
    let live: BTreeSet<u64> = output(&status)
        .lines()
        .filter_map(|l| l.strip_prefix("slice-"))
        .filter_map(|l| l.split_whitespace().next())
        .filter_map(|n| n.parse().ok())
        .collect();
    for id in &created {
        if !destroyed.contains(id) {
            assert!(live.contains(id), "acked slice-{id} vanished across kill -9");
        }
    }
    for id in &destroyed {
        assert!(!live.contains(id), "acked-destroyed slice-{id} came back");
    }

    // And whatever survived must still prove out.
    let verify = c.call("verify", vec![("json".into(), Json::Bool(true))]);
    assert!(outcome(&verify).0, "restored chaos state must verify clean");

    daemon.kill9();
    let _ = std::fs::remove_dir_all(&dir);
}
