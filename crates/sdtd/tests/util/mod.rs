//! Shared wire-protocol client for the daemon integration tests: a thin
//! synchronous JSON-RPC connection speaking the same newline-delimited
//! frames `sdtctl --daemon` uses.

#![allow(dead_code, clippy::unwrap_used, clippy::expect_used)]

use sdt_controller::Json;
use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::Path;

pub struct Client {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
    next_id: u64,
}

impl Client {
    pub fn connect(socket: &Path) -> Client {
        let stream = UnixStream::connect(socket)
            .unwrap_or_else(|e| panic!("connect {}: {e}", socket.display()));
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader, next_id: 1 }
    }

    /// One request/reply round trip. Panics on transport errors; protocol
    /// errors come back as `ok:false` replies for the caller to inspect.
    pub fn call(&mut self, method: &str, params: Vec<(String, Json)>) -> Json {
        let id = self.send(method, params).expect("daemon write failed");
        let reply = self.read_reply().expect("daemon closed mid-call");
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(id), "reply out of order");
        reply
    }

    /// Fire a request without waiting for its reply (pipelining). Returns
    /// the request id, or `Err` if the daemon is gone.
    pub fn send(
        &mut self,
        method: &str,
        params: Vec<(String, Json)>,
    ) -> Result<u64, std::io::Error> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = Json::Obj(vec![
            ("id".into(), Json::u64(id)),
            ("method".into(), Json::str(method)),
            ("params".into(), Json::Obj(params)),
        ])
        .emit();
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        Ok(id)
    }

    /// Read the next reply frame, `None` on EOF.
    pub fn read_reply(&mut self) -> Option<Json> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(n) if n > 0 => {
                Some(Json::parse(line.trim_end_matches('\n')).expect("daemon sent bad JSON"))
            }
            _ => None,
        }
    }
}

/// `true` + no error, or the named failure.
pub fn outcome(reply: &Json) -> (bool, String) {
    (
        reply.get("ok").and_then(Json::as_bool) == Some(true),
        reply.get("error").and_then(Json::as_str).unwrap_or("").to_string(),
    )
}

/// The rendered report a reply carries.
pub fn output(reply: &Json) -> String {
    reply.get("output").and_then(Json::as_str).unwrap_or("").to_string()
}

/// A config file text over the tests' standard 4-switch cluster.
pub fn cfg(topology: &str) -> String {
    format!(
        "[topology]\n{topology}\n\n[cluster]\nswitches = 4\n\
         model = \"openflow-128x100g\"\nhosts_per_switch = 16\n\
         inter_links_per_pair = 16\n"
    )
}

/// Like [`cfg`], with an explicit `[routing]` strategy.
pub fn cfg_routed(topology: &str, strategy: &str) -> String {
    format!("{}\n[routing]\nstrategy = \"{strategy}\"\n", cfg(topology))
}

/// Spin until the daemon's socket accepts, or panic after ~5s.
pub fn wait_for_socket(path: &Path) {
    for _ in 0..500 {
        if UnixStream::connect(path).is_ok() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("daemon socket {} never came up", path.display());
}

/// A scratch directory unique to this test process.
pub fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sdtd-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
