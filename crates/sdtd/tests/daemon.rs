//! Integration tests for the daemon engine over a live Unix socket:
//! batched admission must be outcome-equivalent to sequential admission
//! (same accept/reject multiset, same *named* rejection reasons), replies
//! on one connection must come back in request order (FCFS), and
//! daemon-rendered reports must be byte-identical to local `sdtctl`
//! rendering of the same state.

#![allow(clippy::unwrap_used, clippy::expect_used)]

mod util;

use sdt_controller::output::{self, AdmitInfo, AdmitRow};
use sdt_controller::{Json, SliceController, TestbedConfig};
use sdt_sdtd::{run, DaemonOptions, DaemonState};
use std::path::{Path, PathBuf};
use util::{cfg, outcome, output as reply_output, wait_for_socket, Client};

/// Start an in-process daemon; returns its socket and the join handle the
/// caller uses to collect metrics after sending `shutdown`.
fn start(
    tag: &str,
    batch_max: usize,
) -> (PathBuf, std::thread::JoinHandle<Result<sdt_sdtd::DaemonMetrics, String>>) {
    let dir = util::scratch(tag);
    let socket = dir.join("sdtd.sock");
    let state = DaemonState::fresh(&cfg("kind = \"chain\"\nn = 3")).unwrap();
    let opts = DaemonOptions { socket: socket.clone(), snapshot: None, batch_max };
    let handle = std::thread::spawn(move || run(state, opts));
    wait_for_socket(&socket);
    (socket, handle)
}

fn stop(socket: &Path) {
    let mut c = Client::connect(socket);
    let (ok, _) = outcome(&c.call("shutdown", vec![]));
    assert!(ok);
}

/// The equivalence workload: requests whose verdicts do not depend on
/// admission order — the cluster has ample room for every valid config,
/// and the invalid ones are *intrinsically* invalid (deadlock-vetoed
/// routing, unknown strategy), rejected by gates that never look at
/// cluster state.
fn workload() -> Vec<String> {
    let mut w = Vec::new();
    for _ in 0..6 {
        w.push(cfg("kind = \"chain\"\nn = 3"));
        w.push(cfg("kind = \"ring\"\nn = 4"));
    }
    // BFS on an odd ring has a cyclic channel-dependency graph.
    w.push(util::cfg_routed("kind = \"ring\"\nn = 5", "bfs"));
    w.push(util::cfg_routed("kind = \"chain\"\nn = 3", "warp-drive"));
    w
}

/// Fire every request from its own thread over its own connection, so the
/// engine actually sees a concurrent backlog to coalesce.
fn run_concurrent(socket: &Path, reqs: &[String]) -> Vec<(bool, String)> {
    let workers: Vec<_> = reqs
        .iter()
        .cloned()
        .map(|text| {
            let socket = socket.to_path_buf();
            std::thread::spawn(move || {
                let mut c = Client::connect(&socket);
                outcome(&c.call("admit", vec![("config".into(), Json::str(text.as_str()))]))
            })
        })
        .collect();
    workers.into_iter().map(|w| w.join().unwrap()).collect()
}

#[test]
fn concurrent_batched_admission_matches_sequential_with_named_reasons() {
    let reqs = workload();

    // The reference verdicts: a plain sequential controller.
    let first = TestbedConfig::parse(&reqs[0]).unwrap();
    let mut ctl = SliceController::from_config(&first);
    let mut expected: Vec<(bool, String)> = Vec::new();
    for text in &reqs {
        let c = TestbedConfig::parse(text).unwrap();
        expected.push(match ctl.create(c.topology.name(), &c.topology, &c.strategy) {
            Ok(_) => (true, String::new()),
            Err(e) => (false, e.to_string()),
        });
    }

    for batch_max in [64, 1] {
        let (socket, handle) = start(&format!("equiv-{batch_max}"), batch_max);
        let mut got = run_concurrent(&socket, &reqs);
        stop(&socket);
        let metrics = handle.join().unwrap().unwrap();

        // Concurrent arrival order is arbitrary; the workload is built so
        // the outcome MULTISET is order-independent.
        let mut want = expected.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want, "batch_max={batch_max}");
        assert!(
            got.iter().any(|(_, e)| e.contains("channel dependency cycle")),
            "deadlock veto must keep its named reason through the wire"
        );
        assert!(
            got.iter().any(|(_, e)| e.contains("unknown routing strategy `warp-drive`")),
            "strategy errors must keep their named reason through the wire"
        );
        if batch_max == 1 {
            assert_eq!(metrics.batches, 0, "batch_max=1 must never coalesce");
        }
    }
}

#[test]
fn replies_on_one_connection_are_fcfs() {
    let (socket, handle) = start("fcfs", 8);
    let mut c = Client::connect(&socket);
    // Pipeline a burst mixing batchable ops, reports, and a parse error —
    // replies must still come back in exact request order.
    let mut sent = Vec::new();
    for i in 0..20u32 {
        let id = match i % 4 {
            0 => c.send("ping", vec![]),
            1 => c.send(
                "admit",
                vec![("config".into(), Json::str(cfg("kind = \"chain\"\nn = 2").as_str()))],
            ),
            2 => c.send("destroy", vec![("id".into(), Json::u64(9999))]),
            _ => c.send("no-such-method", vec![]),
        }
        .unwrap();
        sent.push(id);
    }
    for want in sent {
        let reply = c.read_reply().expect("daemon closed mid-burst");
        assert_eq!(
            reply.get("id").and_then(Json::as_u64),
            Some(want),
            "replies must be FCFS per connection"
        );
    }
    stop(&socket);
    handle.join().unwrap().unwrap();
}

#[test]
fn daemon_reports_are_byte_identical_to_local_rendering() {
    let configs =
        [("a.toml", cfg("kind = \"fat-tree\"\nk = 4")), ("b.toml", cfg("kind = \"chain\"\nn = 4"))];

    // Local mode: what `sdtctl slices a.toml b.toml` renders.
    let first = TestbedConfig::parse(&configs[0].1).unwrap();
    let mut ctl = SliceController::from_config(&first);
    let mut rows = Vec::new();
    for (path, text) in &configs {
        let c = TestbedConfig::parse(text).unwrap();
        let name = c.topology.name().to_string();
        let result = match ctl.create(&name, &c.topology, &c.strategy) {
            Ok(id) => {
                let s = ctl.manager().slice(id).unwrap();
                Ok(AdmitInfo {
                    id: id.0,
                    host_ports: s.projection.host_port.len(),
                    cables: s.projection.link_real.len(),
                    entries: s.entries(),
                })
            }
            Err(e) => Err(e.to_string()),
        };
        rows.push(AdmitRow { path: path.to_string(), slice: name, result });
    }
    let status = ctl.status();
    let audit = ctl.audit();
    let local_human = output::slices_human(&rows, &status, &audit);
    let local_json = output::slices_json(&rows, &status, &audit);
    let local_verify = output::verify_json("slices", &ctl.manager_mut().verify_report(), None);

    // Daemon mode: same configs through the wire, fresh daemon.
    for (json, want) in [(false, &local_human), (true, &local_json)] {
        let (socket, handle) = start(&format!("bytes-{json}"), 64);
        let mut c = Client::connect(&socket);
        let items = configs
            .iter()
            .map(|(path, text)| {
                Json::Obj(vec![
                    ("path".into(), Json::str(*path)),
                    ("text".into(), Json::str(text.as_str())),
                ])
            })
            .collect();
        let reply = c.call(
            "slices",
            vec![("json".into(), Json::Bool(json)), ("configs".into(), Json::Arr(items))],
        );
        let (ok, err) = outcome(&reply);
        assert!(ok, "slices failed: {err}");
        assert_eq!(&reply_output(&reply), want, "json={json}");

        if json {
            let verify = c.call("verify", vec![("json".into(), Json::Bool(true))]);
            assert_eq!(reply_output(&verify), local_verify);
        }
        stop(&socket);
        handle.join().unwrap().unwrap();
    }
}
