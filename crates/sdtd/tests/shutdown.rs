//! Shutdown-path integration tests over a live socket: a `shutdown`
//! racing pipelined admits from several concurrent connections must leave
//! no client hanging — every reply that does come back is terminal and in
//! FCFS order, everything else ends in a clean EOF — the listener must
//! actually close, and the snapshot on disk must contain every admit that
//! was acknowledged (the wire-level face of the engine's
//! persist-before-reply contract, which `tests/model.rs` proves on every
//! schedule of the extracted loop).

#![allow(clippy::unwrap_used, clippy::expect_used)]

mod util;

use sdt_controller::Json;
use sdt_sdtd::{run, DaemonMetrics, DaemonOptions, DaemonState, Snapshot};
use std::collections::BTreeSet;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use util::{cfg, outcome, wait_for_socket, Client};

fn start(
    tag: &str,
) -> (PathBuf, PathBuf, std::thread::JoinHandle<Result<DaemonMetrics, String>>) {
    let dir = util::scratch(tag);
    let socket = dir.join("sdtd.sock");
    let snapshot = dir.join("state.json");
    let state = DaemonState::fresh(&cfg("kind = \"chain\"\nn = 3")).unwrap();
    let opts = DaemonOptions {
        socket: socket.clone(),
        snapshot: Some(snapshot.clone()),
        batch_max: 4,
    };
    let handle = std::thread::spawn(move || run(state, opts));
    wait_for_socket(&socket);
    (socket, snapshot, handle)
}

/// What one pipelining client observed before its connection ended.
struct Observed {
    sent: u64,
    /// `(ok, error, slice)` per reply, in arrival order.
    replies: Vec<(bool, String, Option<u64>)>,
}

/// Pipeline a burst of admits on one connection, then read replies until
/// they are all in or the daemon hangs up mid-burst.
fn pipelined_admits(socket: &Path, burst: u64) -> Observed {
    let mut c = Client::connect(socket);
    let admit = cfg("kind = \"chain\"\nn = 3");
    let mut sent = 0;
    for _ in 0..burst {
        // A failed write means the daemon is already gone; everything
        // sent so far still gets a terminal reply or an EOF.
        if c.send("admit", vec![("config".into(), Json::str(admit.as_str()))]).is_err() {
            break;
        }
        sent += 1;
    }
    let mut replies = Vec::new();
    for want in 1..=sent {
        let Some(reply) = c.read_reply() else { break };
        assert_eq!(
            reply.get("id").and_then(Json::as_u64),
            Some(want),
            "replies must stay FCFS even while shutting down"
        );
        let (ok, err) = outcome(&reply);
        let slice = reply.get("slice").and_then(Json::as_u64);
        replies.push((ok, err, slice));
    }
    // Past the last reply there is nothing but EOF — the daemon never
    // leaves a connection half-served with the socket still open.
    assert!(c.read_reply().is_none(), "no frames may follow the final reply");
    Observed { sent, replies }
}

#[test]
fn shutdown_racing_pipelined_connections_leaves_no_client_hanging() {
    let (socket, snapshot, handle) = start("shutdown-race");

    // One synchronous admit up front so the durability assertion below is
    // never vacuous, whichever way the race goes.
    let mut warmup = Client::connect(&socket);
    let first = warmup.call("admit", vec![(
        "config".into(),
        Json::str(cfg("kind = \"ring\"\nn = 4").as_str()),
    )]);
    let (ok, err) = outcome(&first);
    assert!(ok, "warmup admit failed: {err}");
    let first_slice = first.get("slice").and_then(Json::as_u64).unwrap();

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let socket = socket.clone();
            std::thread::spawn(move || pipelined_admits(&socket, 6))
        })
        .collect();

    // Shutdown races the bursts. Its own reply is guaranteed: the request
    // reached the queue, and queued requests always get terminal replies.
    let mut killer = Client::connect(&socket);
    assert!(outcome(&killer.call("shutdown", vec![])).0, "shutdown must be acked");

    let mut acked: BTreeSet<u64> = BTreeSet::new();
    acked.insert(first_slice);
    let mut saw_shutdown_reject = false;
    for w in workers {
        let obs = w.join().expect("pipelining client panicked");
        assert!(obs.replies.len() as u64 <= obs.sent);
        for (ok, err, slice) in obs.replies {
            if ok {
                acked.insert(slice.expect("acked admit must name its slice"));
            } else {
                assert!(!err.is_empty(), "a failure reply must carry a named error");
                saw_shutdown_reject |= err == "daemon is shutting down";
            }
        }
    }
    // `saw_shutdown_reject` depends on how the race lands; it is recorded
    // only so the variable documents what the reject path looks like on
    // the wire — the schedule-exhaustive version lives in tests/model.rs.
    let _ = saw_shutdown_reject;

    let metrics = handle.join().unwrap().expect("daemon exited with an error");
    assert!(metrics.requests > acked.len() as u64);

    // The listener is really gone, not just idle.
    assert!(
        UnixStream::connect(&socket).is_err(),
        "listener must be closed after shutdown"
    );

    // Durability: every acknowledged admit is in the snapshot that
    // survived the shutdown. (Unacked admits may also be there — applied,
    // persisted, reply lost — that is the safe direction of the race.)
    let snap = Snapshot::decode(&std::fs::read_to_string(&snapshot).unwrap())
        .expect("snapshot must parse after shutdown");
    let durable: BTreeSet<u64> = snap.slices.iter().map(|s| u64::from(s.id)).collect();
    for id in &acked {
        assert!(
            durable.contains(id),
            "slice-{id} was acked but is missing from the shutdown snapshot"
        );
    }
}

/// A daemon with nothing in flight shuts down cleanly: shutdown is acked,
/// the listener closes, and a fresh daemon restores the snapshot it left.
#[test]
fn quiet_shutdown_closes_listener_and_leaves_a_restorable_snapshot() {
    let (socket, snapshot, handle) = start("shutdown-quiet");

    let mut c = Client::connect(&socket);
    let reply = c.call("admit", vec![(
        "config".into(),
        Json::str(cfg("kind = \"chain\"\nn = 2").as_str()),
    )]);
    assert!(outcome(&reply).0);
    assert!(outcome(&c.call("shutdown", vec![])).0);
    // After the shutdown reply this connection carries nothing but EOF.
    assert!(c.read_reply().is_none());

    handle.join().unwrap().expect("daemon exited with an error");
    assert!(UnixStream::connect(&socket).is_err());

    // The snapshot the daemon left behind boots a working replacement.
    let restored = DaemonState::from_snapshot_file(&snapshot)
        .expect("post-shutdown snapshot must restore");
    drop(restored);
}
