//! SDT core: Topology Projection (TP) onto commodity switches.
//!
//! This crate implements the paper's contribution. **Link Projection (LP)**
//! — the SDT method — takes a logical topology and a physical cluster whose
//! cabling is *fixed* (self-links looping two ports of one switch,
//! inter-switch links joining switches, and host ports), and realizes the
//! topology purely with OpenFlow flow tables:
//!
//! 1. the logical switch graph is cut across the physical switches with the
//!    METIS-like partitioner (`sdt-partition`), minimizing inter-switch
//!    links and balancing port usage (§IV-B/C);
//! 2. every logical fabric link is mapped onto a physical self-link or
//!    inter-switch link; every host onto a host port (§IV-A);
//! 3. ports are grouped into *sub-switches* (one per logical switch) and
//!    flow tables are synthesized that (a) restrict each packet to its
//!    sub-switch's forwarding domain and (b) implement the routing strategy
//!    from `sdt-routing` (§V);
//! 4. reconfiguring to a new topology is a flow-table rewrite — no recabling
//!    and no optical switch.
//!
//! The crate also models the three baselines the paper compares against
//! (manual Switch Projection, SP with a MEMS optical switch, and TurboNet's
//! loopback-port projection) for the Table I/II cost, reconfiguration-time
//! and feasibility comparisons, and provides a pure-dataplane packet walker
//! used to verify projection correctness and hardware isolation (§VI-B).

pub mod baselines;
pub mod cluster;
pub mod compare;
pub mod feasibility;
pub mod flex;
pub mod methods;
pub mod sdt;
pub mod synthesis;
pub mod walk;

pub use baselines::{
    BaselineError, BaselineProjection, CablingPlan, SpOsProjector, SpProjector,
    TurbonetProjector,
};
pub use cluster::{ClusterBuilder, PhysLink, PhysLinkKind, PhysPort, PhysicalCluster};
pub use feasibility::{max_link_gbps, port_demand, FeasibilityReport};
pub use flex::{FlexCluster, FlexError};
pub use methods::{
    CostModel, HardwareKind, Method, ReconfigEstimate, SwitchModel, OPTICAL_PORT_USD,
};
pub use sdt::{FailedResources, ProjectOptions, ProjectionError, SdtProjection, SdtProjector};
pub use synthesis::{synthesize_flow_tables, SynthesisOutput};
pub use walk::{walk_packet, IsolationReport, WalkOutcome};
