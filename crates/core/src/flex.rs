//! Optical-switch-enhanced SDT — the paper's §VII-A future work.
//!
//! Plain SDT fixes the split between self-links and inter-switch links at
//! deployment time; a topology whose partition needs *more* inter-switch
//! links than were reserved cannot deploy without manual recabling
//! (§IV-B's reservation issue). The paper's proposed fix: route a pool of
//! *flexible* ports through a small MEMS optical switch, so each flexible
//! link can be turned into either a self-link or an inter-switch link by
//! reprogramming the optical crossbar — ~100 ms, no hands.
//!
//! [`FlexCluster`] models that design: per switch, `hosts` host ports, a
//! block of *fixed* self-links, and a block of flexible ports patched into
//! the crossbar. [`FlexCluster::plan_for`] partitions a target topology,
//! computes the self/inter shortfalls against the fixed wiring, assigns
//! crossbar pairings to cover them, and returns a concrete
//! [`PhysicalCluster`] ready for [`crate::sdt::SdtProjector`].

use crate::cluster::{PhysPort, PhysicalCluster};
use crate::methods::SwitchModel;
use sdt_openflow::PortNo;
use sdt_partition::{partition_topology, PartitionConfig};
use sdt_topology::{HostId, Topology};
use std::collections::HashMap;

/// Why a flexible configuration cannot be produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FlexError {
    /// Even with every flexible port consumed, the demand does not fit.
    NotEnoughFlexPorts {
        /// Physical switch that ran dry.
        switch: u32,
        /// Flexible ports still needed there.
        missing: u32,
    },
    /// A crossbar pairing referenced a port outside the flexible region.
    NotAFlexPort(PhysPort),
    /// Host demand exceeds the reserved host ports.
    NotEnoughHostPorts {
        /// Physical switch.
        switch: u32,
        /// Hosts demanded.
        need: u32,
        /// Host ports reserved.
        have: u32,
    },
}

impl std::fmt::Display for FlexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlexError::NotEnoughFlexPorts { switch, missing } => {
                write!(f, "switch {switch}: {missing} more flexible ports needed")
            }
            FlexError::NotAFlexPort(p) => write!(f, "{p:?} is not in the flexible region"),
            FlexError::NotEnoughHostPorts { switch, need, have } => {
                write!(f, "switch {switch}: {need} hosts demanded, {have} host ports")
            }
        }
    }
}

impl std::error::Error for FlexError {}

/// An SDT cluster with an optical-crossbar-backed flexible port pool.
#[derive(Clone, Copy, Debug)]
pub struct FlexCluster {
    /// Switch model.
    pub model: SwitchModel,
    /// Number of electrical switches.
    pub num_switches: u32,
    /// Host ports per switch (ports `0..hosts`).
    pub hosts_per_switch: u16,
    /// Fixed self-links per switch (ports `hosts..hosts + 2*fixed_self`).
    pub fixed_self_per_switch: u16,
    /// Flexible ports per switch, patched into the optical crossbar
    /// (the next `flex_per_switch` ports).
    pub flex_per_switch: u16,
    /// Optical switching time per reconfiguration, ns (~100 ms MEMS).
    pub optical_switch_ns: u64,
}

impl FlexCluster {
    /// A flexible cluster; panics if the port regions exceed the model.
    pub fn new(
        model: SwitchModel,
        num_switches: u32,
        hosts_per_switch: u16,
        fixed_self_per_switch: u16,
        flex_per_switch: u16,
    ) -> Self {
        let used = hosts_per_switch as u32
            + 2 * fixed_self_per_switch as u32
            + flex_per_switch as u32;
        assert!(used <= model.ports, "port regions ({used}) exceed switch ports");
        FlexCluster {
            model,
            num_switches,
            hosts_per_switch,
            fixed_self_per_switch,
            flex_per_switch,
            optical_switch_ns: 100_000_000,
        }
    }

    /// First port index of the flexible region.
    fn flex_base(&self) -> u16 {
        self.hosts_per_switch + 2 * self.fixed_self_per_switch
    }

    /// Is a port inside the flexible (crossbar-patched) region?
    pub fn is_flex_port(&self, p: PhysPort) -> bool {
        let base = self.flex_base();
        p.switch < self.num_switches
            && p.port.0 >= base
            && p.port.0 < base + self.flex_per_switch
    }

    /// The fixed cabling shared by every configuration.
    fn fixed_cabling(&self) -> (Vec<(PhysPort, PhysPort)>, Vec<PhysPort>) {
        let mut cables = Vec::new();
        let mut hosts = Vec::new();
        for s in 0..self.num_switches {
            for h in 0..self.hosts_per_switch {
                hosts.push(PhysPort { switch: s, port: PortNo(h) });
            }
            for i in 0..self.fixed_self_per_switch {
                let a = PhysPort { switch: s, port: PortNo(self.hosts_per_switch + 2 * i) };
                let b =
                    PhysPort { switch: s, port: PortNo(self.hosts_per_switch + 2 * i + 1) };
                cables.push((a, b));
            }
        }
        (cables, hosts)
    }

    /// Materialize a configuration: fixed cabling plus the given crossbar
    /// pairings over flexible ports.
    pub fn configure(
        &self,
        pairings: &[(PhysPort, PhysPort)],
    ) -> Result<PhysicalCluster, FlexError> {
        for &(a, b) in pairings {
            for p in [a, b] {
                if !self.is_flex_port(p) {
                    return Err(FlexError::NotAFlexPort(p));
                }
            }
        }
        let (mut cables, hosts) = self.fixed_cabling();
        cables.extend_from_slice(pairings);
        Ok(PhysicalCluster::custom(self.model, self.num_switches, cables, hosts))
    }

    /// Plan crossbar pairings for a topology: partition it, cover the
    /// self-link / inter-switch shortfalls with flexible ports, and return
    /// (pairings, configured cluster).
    pub fn plan_for(
        &self,
        topo: &Topology,
    ) -> Result<(Vec<(PhysPort, PhysPort)>, PhysicalCluster), FlexError> {
        let k = self.num_switches;
        let assignment: Vec<u32> = if k == 1 {
            vec![0; topo.num_switches() as usize]
        } else {
            partition_topology(topo, k, &PartitionConfig::default()).assignment().to_vec()
        };
        // Demands.
        let mut self_need = vec![0u32; k as usize];
        let mut inter_need: HashMap<(u32, u32), u32> = HashMap::new();
        for l in topo.fabric_links() {
            let (ea, eb) = l.switch_ends();
            let (a, b) = (assignment[ea.idx()], assignment[eb.idx()]);
            if a == b {
                self_need[a as usize] += 1;
            } else {
                *inter_need.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
        let mut host_need = vec![0u32; k as usize];
        for h in 0..topo.num_hosts() {
            for &(s, _) in topo.attachments(HostId(h)) {
                host_need[assignment[s.idx()] as usize] += 1;
            }
        }
        for (sw, &need) in host_need.iter().enumerate() {
            if need > self.hosts_per_switch as u32 {
                return Err(FlexError::NotEnoughHostPorts {
                    switch: sw as u32,
                    need,
                    have: self.hosts_per_switch as u32,
                });
            }
        }
        // Flexible port cursors.
        let base = self.flex_base();
        let mut next = vec![0u16; k as usize];
        let take = |sw: u32, next: &mut Vec<u16>| -> Result<PhysPort, FlexError> {
            if next[sw as usize] >= self.flex_per_switch {
                return Err(FlexError::NotEnoughFlexPorts { switch: sw, missing: 1 });
            }
            let p = PhysPort { switch: sw, port: PortNo(base + next[sw as usize]) };
            next[sw as usize] += 1;
            Ok(p)
        };
        let mut pairings = Vec::new();
        // Self-link shortfall: pair two flexible ports on the same switch.
        for sw in 0..k {
            let deficit = self_need[sw as usize]
                .saturating_sub(self.fixed_self_per_switch as u32);
            for _ in 0..deficit {
                let a = take(sw, &mut next)?;
                let b = take(sw, &mut next)?;
                pairings.push((a, b));
            }
        }
        // Inter-switch links: always flexible in this design.
        let mut pairs: Vec<_> = inter_need.into_iter().collect();
        pairs.sort_unstable();
        for ((x, y), n) in pairs {
            for _ in 0..n {
                let a = take(x, &mut next)?;
                let b = take(y, &mut next)?;
                pairings.push((a, b));
            }
        }
        let cluster = self.configure(&pairings)?;
        Ok((pairings, cluster))
    }

    /// Reconfiguration time from one pairing set to another: optical
    /// switching (only if any pairing moved) plus flow-table installs.
    pub fn reconfigure_time_ns(
        &self,
        old: &[(PhysPort, PhysPort)],
        new: &[(PhysPort, PhysPort)],
        flow_entries: usize,
    ) -> u64 {
        let a: std::collections::HashSet<_> = old.iter().collect();
        let b: std::collections::HashSet<_> = new.iter().collect();
        let moved = a.symmetric_difference(&b).count();
        let optical = if moved > 0 { self.optical_switch_ns } else { 0 };
        optical + sdt_openflow::InstallTiming::default().install_time_ns(flow_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdt::SdtProjector;
    use crate::walk::IsolationReport;
    use sdt_topology::fattree::fat_tree;
    use sdt_topology::meshtorus::torus;

    fn flex() -> FlexCluster {
        // Few fixed self-links: topologies with big cuts need the crossbar.
        FlexCluster::new(SwitchModel::openflow_128x100g(), 2, 16, 8, 64)
    }

    #[test]
    fn plan_covers_fat_tree_and_torus_without_recabling() {
        let f = flex();
        for topo in [fat_tree(4), torus(&[4, 4])] {
            let (pairings, cluster) = f.plan_for(&topo).unwrap();
            assert!(!pairings.is_empty());
            let p = SdtProjector::default()
                .project_default(&topo, &cluster)
                .unwrap_or_else(|e| panic!("{}: {e}", topo.name()));
            let report = IsolationReport::audit(&cluster, &p, &topo);
            assert!(report.clean(), "{}: {:?}", topo.name(), report.violations);
        }
    }

    #[test]
    fn flex_turns_ports_into_self_or_inter_links() {
        let f = flex();
        // Fat-tree k=4 on 2 switches: 8-ish inter links + ~24 internal links
        // per side, of which only 8 are fixed — the rest come from flex.
        let (pairings, cluster) = f.plan_for(&fat_tree(4)).unwrap();
        let self_flex = pairings.iter().filter(|(a, b)| a.switch == b.switch).count();
        let inter_flex = pairings.iter().filter(|(a, b)| a.switch != b.switch).count();
        assert!(self_flex > 0, "some flexible self-links expected");
        assert!(inter_flex > 0, "some flexible inter-switch links expected");
        assert_eq!(
            cluster.links().len(),
            2 * 8 + pairings.len(),
            "fixed self-links + crossbar pairings"
        );
    }

    #[test]
    fn reconfiguration_is_optical_not_manual() {
        let f = flex();
        let (p1, c1) = f.plan_for(&fat_tree(4)).unwrap();
        // The chain's crossbar demand (1 inter link, no self deficit)
        // genuinely differs from the fat-tree's.
        let (p2, _) = f.plan_for(&sdt_topology::chain::chain(8)).unwrap();
        assert_ne!(p1, p2);
        let entries = {
            let proj = SdtProjector::default().project_default(&fat_tree(4), &c1).unwrap();
            proj.synthesis.entries_per_switch.iter().copied().max().unwrap()
        };
        let t = f.reconfigure_time_ns(&p1, &p2, entries);
        // Optical (100 ms) + flow installs: still sub-second, no hands.
        assert!((100_000_000..1_000_000_000).contains(&t), "{t} ns");
        // Unchanged pairings skip the optical step.
        let same = f.reconfigure_time_ns(&p1, &p1, entries);
        assert!(same < 100_000_000 + 300_000_000);
        assert!(same < t);
    }

    #[test]
    fn flex_budget_exhaustion_reported() {
        let tiny = FlexCluster::new(SwitchModel::openflow_64x100g(), 2, 16, 2, 4);
        let err = tiny.plan_for(&fat_tree(4)).unwrap_err();
        assert!(matches!(err, FlexError::NotEnoughFlexPorts { .. }));
    }

    #[test]
    fn configure_rejects_non_flex_ports() {
        let f = flex();
        let bad = PhysPort { switch: 0, port: PortNo(0) }; // a host port
        let ok = PhysPort { switch: 0, port: PortNo(f.flex_base()) };
        assert!(matches!(
            f.configure(&[(bad, ok)]),
            Err(FlexError::NotAFlexPort(_))
        ));
    }
}
