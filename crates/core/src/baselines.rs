//! The TP baselines as working projectors, not just cost models.
//!
//! Table II's comparison rests on three competitor methods. Their *cost and
//! reconfiguration* models live in [`crate::methods`]; this module
//! implements their *projection mechanics*, so the differences the paper
//! argues qualitatively become executable:
//!
//! * **[`SpProjector`]** — Switch Projection (§III-B): sub-switches are
//!   partitioned arbitrarily and every logical link becomes a *hand-placed
//!   cable* between the matching sub-switch ports. There is no fixed
//!   wiring plan to respect — any free port pair can be cabled — which is
//!   exactly why reconfiguration costs hours: the produced
//!   [`CablingPlan`] changes from topology to topology, and the diff of
//!   two plans is the number of cables a human must move.
//! * **[`SpOsProjector`]** — SP with a MEMS optical switch (§III-C): every
//!   electrical port is patched into the optical crossbar once; a topology
//!   is then a crossbar *permutation*, and reconfiguration is the diff of
//!   two permutations at ~100 ms, no hands involved.
//! * **[`TurbonetProjector`]** — TurboNet-style loopback projection: each
//!   logical link is realized through a loopback pair on the same switch,
//!   halving the usable bandwidth of the ports involved (De Sensi et al.),
//!   with the whole mapping recompiled into the P4 pipeline on every
//!   change.

use crate::cluster::PhysPort;
use crate::methods::{Method, ReconfigEstimate, SwitchModel};
use sdt_openflow::PortNo;
use sdt_topology::{HostId, LinkId, SwitchId, Topology};
use std::collections::HashMap;

/// A hand-built cabling plan: which port pairs a human connected.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CablingPlan {
    /// Cables as unordered port pairs, canonical order (a < b).
    pub cables: Vec<(PhysPort, PhysPort)>,
    /// Host attachment ports.
    pub host_ports: HashMap<HostId, PhysPort>,
}

impl CablingPlan {
    /// Number of cables a technician must move/add/remove to turn this
    /// plan into `other` (symmetric difference of the cable sets).
    pub fn recabling_distance(&self, other: &CablingPlan) -> usize {
        let a: std::collections::HashSet<_> = self.cables.iter().collect();
        let b: std::collections::HashSet<_> = other.cables.iter().collect();
        a.symmetric_difference(&b).count()
    }
}

/// Errors shared by the baseline projectors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BaselineError {
    /// The switch pool has fewer ports than the topology demands.
    NotEnoughPorts {
        /// Ports demanded (2 per fabric link + hosts).
        need: usize,
        /// Ports available.
        have: usize,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::NotEnoughPorts { need, have } => {
                write!(f, "topology needs {need} ports, pool has {have}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

/// A projection produced by one of the baselines.
#[derive(Clone, Debug)]
pub struct BaselineProjection {
    /// The producing method.
    pub method: Method,
    /// The concrete cabling (SP/SP-OS) or loopback plan (TurboNet).
    pub plan: CablingPlan,
    /// Logical switch -> physical switch.
    pub assignment: Vec<u32>,
    /// Logical directed port -> physical port.
    pub port_of: HashMap<(SwitchId, LinkId), PhysPort>,
    /// Effective per-link bandwidth divisor (1, or 2 for TurboNet).
    pub bandwidth_divisor: u32,
}

impl BaselineProjection {
    /// Estimated reconfiguration from `self` to `next` under this method.
    pub fn reconfigure_to(&self, next: &BaselineProjection) -> ReconfigEstimate {
        let moved = self.plan.recabling_distance(&next.plan);
        // Flow entries scale with ports in use.
        let entries = next.port_of.len() + next.plan.host_ports.len();
        ReconfigEstimate::of(self.method, moved, entries)
    }
}

/// Greedy first-fit placement shared by the baselines: logical switches are
/// packed onto physical switches in id order, each taking `radix` ports.
fn first_fit_assignment(
    topo: &Topology,
    ports_per_switch: u32,
    num_switches: u32,
) -> Result<(Vec<u32>, Vec<u32>), BaselineError> {
    let mut assignment = vec![0u32; topo.num_switches() as usize];
    let mut used = vec![0u32; num_switches as usize];
    for s in 0..topo.num_switches() {
        let radix = topo.radix(SwitchId(s)) as u32;
        let slot = (0..num_switches)
            .find(|&w| used[w as usize] + radix <= ports_per_switch)
            .ok_or(BaselineError::NotEnoughPorts {
                need: topo.total_switch_ports(),
                have: (ports_per_switch * num_switches) as usize,
            })?;
        assignment[s as usize] = slot;
        used[slot as usize] += radix;
    }
    Ok((assignment, used))
}

/// Allocate one physical port per logical port, densely per physical
/// switch, in deterministic order. Returns the port map and host ports.
fn allocate_ports(
    topo: &Topology,
    assignment: &[u32],
    num_switches: u32,
) -> (HashMap<(SwitchId, LinkId), PhysPort>, HashMap<HostId, PhysPort>) {
    let mut next_port = vec![0u16; num_switches as usize];
    let mut port_of = HashMap::new();
    let mut host_ports = HashMap::new();
    for s in 0..topo.num_switches() {
        let s = SwitchId(s);
        let w = assignment[s.idx()];
        let mut take = || {
            let p = PhysPort { switch: w, port: PortNo(next_port[w as usize]) };
            next_port[w as usize] += 1;
            p
        };
        for &(_, lid) in topo.neighbors(s) {
            port_of.insert((s, lid), take());
        }
        for &(h, lid) in topo.hosts_of(s) {
            let p = take();
            port_of.insert((s, lid), p);
            host_ports.insert(h, p);
        }
    }
    (port_of, host_ports)
}

/// Switch Projection: arbitrary sub-switch partition + manual cables.
#[derive(Clone, Copy, Debug)]
pub struct SpProjector {
    /// Switch model of the pool.
    pub model: SwitchModel,
    /// Pool size.
    pub num_switches: u32,
}

impl SpProjector {
    /// Project: place sub-switches first-fit, then "pull cables" between
    /// the two endpoints of every logical link, wherever they landed.
    pub fn project(&self, topo: &Topology) -> Result<BaselineProjection, BaselineError> {
        let (assignment, _) =
            first_fit_assignment(topo, self.model.ports, self.num_switches)?;
        let (port_of, host_ports) = allocate_ports(topo, &assignment, self.num_switches);
        let mut cables = Vec::new();
        for l in topo.fabric_links() {
            let (sa, sb) = l.switch_ends();
            let (pa, pb) = (port_of[&(sa, l.id)], port_of[&(sb, l.id)]);
            cables.push(if pa <= pb { (pa, pb) } else { (pb, pa) });
        }
        cables.sort_unstable();
        Ok(BaselineProjection {
            method: Method::Sp,
            plan: CablingPlan { cables, host_ports },
            assignment,
            port_of,
            bandwidth_divisor: 1,
        })
    }
}

/// SP-OS: same projection as SP, but all cables terminate in an optical
/// crossbar, so "recabling" is a crossbar permutation update.
#[derive(Clone, Copy, Debug)]
pub struct SpOsProjector {
    /// Underlying SP projector.
    pub sp: SpProjector,
}

impl SpOsProjector {
    /// Project; the plan is identical to SP's, the method (and therefore
    /// the reconfiguration model) differs.
    pub fn project(&self, topo: &Topology) -> Result<BaselineProjection, BaselineError> {
        let mut p = self.sp.project(topo)?;
        p.method = Method::SpOs;
        Ok(p)
    }

    /// The optical crossbar permutation realizing a projection: input port
    /// i is mirrored to output port j for every cable (i, j). Size = total
    /// electrical ports patched in.
    pub fn crossbar_of(p: &BaselineProjection) -> Vec<(PhysPort, PhysPort)> {
        p.plan.cables.clone()
    }
}

/// TurboNet-style projection: logical links ride loopback pairs on one
/// switch, at half bandwidth.
#[derive(Clone, Copy, Debug)]
pub struct TurbonetProjector {
    /// Switch model (must be P4-capable in spirit; not enforced here).
    pub model: SwitchModel,
    /// Pool size.
    pub num_switches: u32,
}

impl TurbonetProjector {
    /// Project. Every fabric link consumes a loopback pair on the physical
    /// switch of its lower endpoint; bandwidth divisor 2.
    pub fn project(&self, topo: &Topology) -> Result<BaselineProjection, BaselineError> {
        let (assignment, _) =
            first_fit_assignment(topo, self.model.ports, self.num_switches)?;
        let (port_of, host_ports) = allocate_ports(topo, &assignment, self.num_switches);
        // Loopback plan: the "cables" are internal loopbacks; they still
        // occupy the two endpoint ports, but both ends are on the same
        // physical switch port pair by construction of the pipeline.
        let mut cables = Vec::new();
        for l in topo.fabric_links() {
            let (sa, sb) = l.switch_ends();
            let (pa, pb) = (port_of[&(sa, l.id)], port_of[&(sb, l.id)]);
            cables.push(if pa <= pb { (pa, pb) } else { (pb, pa) });
        }
        cables.sort_unstable();
        Ok(BaselineProjection {
            method: Method::Turbonet,
            plan: CablingPlan { cables, host_ports },
            assignment,
            port_of,
            bandwidth_divisor: 2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdt_topology::chain::chain;
    use sdt_topology::fattree::fat_tree;
    use sdt_topology::meshtorus::torus;

    fn sp() -> SpProjector {
        SpProjector { model: SwitchModel::openflow_128x100g(), num_switches: 2 }
    }

    #[test]
    fn sp_projects_fat_tree() {
        let p = sp().project(&fat_tree(4)).unwrap();
        assert_eq!(p.plan.cables.len(), 32);
        assert_eq!(p.plan.host_ports.len(), 16);
        assert_eq!(p.bandwidth_divisor, 1);
        // Every logical port got a distinct physical port.
        let mut seen = std::collections::HashSet::new();
        for port in p.port_of.values() {
            assert!(seen.insert(*port));
        }
    }

    #[test]
    fn sp_rejects_oversized_topology() {
        let small = SpProjector { model: SwitchModel::openflow_64x100g(), num_switches: 1 };
        let err = small.project(&fat_tree(8)).unwrap_err();
        assert!(matches!(err, BaselineError::NotEnoughPorts { .. }));
    }

    #[test]
    fn sp_reconfiguration_counts_moved_cables() {
        let proj = sp();
        let a = proj.project(&fat_tree(4)).unwrap();
        let b = proj.project(&torus(&[4, 4])).unwrap();
        let moved = a.plan.recabling_distance(&b.plan);
        assert!(moved > 0);
        let est = a.reconfigure_to(&b);
        // Manual, over an hour (Table II row 1).
        assert!(est.manual);
        assert!(est.time_ns > 3_600_000_000_000 / 2, "{} ns", est.time_ns);
        // Identity reconfiguration moves nothing.
        let same = proj.project(&fat_tree(4)).unwrap();
        assert_eq!(a.plan.recabling_distance(&same.plan), 0);
    }

    #[test]
    fn spos_same_plan_fast_reconfig() {
        let spos = SpOsProjector { sp: sp() };
        let a = spos.project(&fat_tree(4)).unwrap();
        let b = spos.project(&torus(&[4, 4])).unwrap();
        assert_eq!(a.method, Method::SpOs);
        let est = a.reconfigure_to(&b);
        assert!(!est.manual);
        assert!(est.time_ns <= 1_000_000_000, "{} ns", est.time_ns);
        // The crossbar view covers every cable.
        assert_eq!(SpOsProjector::crossbar_of(&a).len(), a.plan.cables.len());
    }

    #[test]
    fn turbonet_halves_bandwidth_and_recompiles() {
        let tn = TurbonetProjector { model: SwitchModel::p4_128x100g(), num_switches: 2 };
        let a = tn.project(&chain(8)).unwrap();
        assert_eq!(a.bandwidth_divisor, 2);
        let b = tn.project(&torus(&[4, 4])).unwrap();
        let est = a.reconfigure_to(&b);
        assert!(!est.manual);
        // P4 recompile floor.
        assert!(est.time_ns >= 10_000_000_000);
    }

    #[test]
    fn baseline_and_sdt_agree_on_port_demand() {
        // SP consumes exactly the §IV-A port budget: 2 per fabric link + 1
        // per host attachment.
        let t = torus(&[4, 4]);
        let p = sp().project(&t).unwrap();
        assert_eq!(p.port_of.len(), t.total_switch_ports());
    }
}
