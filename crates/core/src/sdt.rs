//! Link Projection — the SDT projection algorithm (§IV).
//!
//! Given a logical topology, a physical cluster with fixed cabling, and a
//! routing table, [`SdtProjector::project`] produces an [`SdtProjection`]:
//!
//! 1. the logical switch graph is partitioned across the physical switches
//!    (METIS-like multilevel cut: minimal inter-switch links, balanced port
//!    usage — §IV-C);
//! 2. every logical fabric link is assigned a concrete cable — a *self-link*
//!    when both endpoints land on the same physical switch, an
//!    *inter-switch link* when they cross the cut (Eq. 1–2 of the paper);
//! 3. every host is assigned a host port on its logical switch's physical
//!    switch;
//! 4. ports are grouped into *sub-switches* and the two-table OpenFlow
//!    pipeline is synthesized (see [`crate::synthesis`]).
//!
//! When the fixed cabling cannot carry the topology, projection fails with
//! a [`ProjectionError`] that tells the operator exactly which resource is
//! short and by how much — the §V-1 checking function's "inform the user of
//! the necessary link modification".

use crate::cluster::{PhysLink, PhysPort, PhysicalCluster};
use crate::synthesis::{synthesize_flow_tables, synthesize_flow_tables_merged, SynthesisOutput};
use sdt_openflow::InstallTiming;
use sdt_partition::{partition_topology, PartitionConfig};
use sdt_routing::{default_strategy, RouteTable};
use sdt_topology::{HostId, LinkId, SwitchId, Topology};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Physical resources the failure detector has declared unusable. A
/// re-projection under faults treats these as if the cables were never
/// wired — the §V-1 checking function then reports exactly what capacity
/// the surviving plant is short of, instead of silently re-using a dead
/// cable.
#[derive(Clone, Debug, Default)]
pub struct FailedResources {
    /// Dead cables, keyed by normalized (min, max) endpoint pair.
    cables: HashSet<(PhysPort, PhysPort)>,
    /// Dead individual ports (port-level degradation/fault).
    ports: HashSet<PhysPort>,
}

impl FailedResources {
    /// Nothing failed.
    pub fn new() -> Self {
        FailedResources::default()
    }

    /// Mark a cable dead (both directions).
    pub fn fail_cable(&mut self, cable: &PhysLink) {
        self.cables.insert(Self::key(cable.a, cable.b));
    }

    /// Mark a single physical port dead; every cable touching it is
    /// unusable.
    pub fn fail_port(&mut self, p: PhysPort) {
        self.ports.insert(p);
    }

    /// Mark every port of a physical switch dead (switch crash).
    pub fn fail_switch(&mut self, cluster: &PhysicalCluster, switch: u32) {
        for l in cluster.links() {
            for end in [l.a, l.b] {
                if end.switch == switch {
                    self.ports.insert(end);
                }
            }
        }
        for &p in cluster.host_ports() {
            if p.switch == switch {
                self.ports.insert(p);
            }
        }
    }

    /// True when no resource is marked failed.
    pub fn is_empty(&self) -> bool {
        self.cables.is_empty() && self.ports.is_empty()
    }

    /// Failed cables + failed ports marked so far.
    pub fn len(&self) -> usize {
        self.cables.len() + self.ports.len()
    }

    /// Is this cable still usable?
    pub fn cable_ok(&self, cable: &PhysLink) -> bool {
        !self.cables.contains(&Self::key(cable.a, cable.b))
            && !self.ports.contains(&cable.a)
            && !self.ports.contains(&cable.b)
    }

    /// Is this host port still usable?
    pub fn port_ok(&self, p: PhysPort) -> bool {
        !self.ports.contains(&p)
    }

    fn key(a: PhysPort, b: PhysPort) -> (PhysPort, PhysPort) {
        (a.min(b), a.max(b))
    }
}

/// Knobs for [`SdtProjector::project_with`] beyond the happy path.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProjectOptions<'a> {
    /// Reuse a previous partition instead of re-partitioning. Incremental
    /// recovery passes the old assignment so only cable choices change and
    /// the table diff stays small.
    pub fixed_assignment: Option<&'a [u32]>,
    /// Resources to avoid (failed cables/ports).
    pub failed: Option<&'a FailedResources>,
    /// Cable preferences keyed by normalized logical endpoint pair: when
    /// the preferred cable is still free and healthy, reuse it. This is
    /// what keeps a recovery re-projection's flow-table diff proportional
    /// to the damage instead of to the topology.
    pub prefer_cables: Option<&'a HashMap<(SwitchId, SwitchId), PhysLink>>,
}

/// Why a projection cannot be deployed on the given cluster.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProjectionError {
    /// A physical switch has fewer free self-links than the sub-topology
    /// assigned to it needs.
    NotEnoughSelfLinks {
        /// Physical switch.
        switch: u32,
        /// Self-links required.
        need: usize,
        /// Self-links wired.
        have: usize,
    },
    /// A switch pair has fewer inter-switch cables than cut edges.
    NotEnoughInterLinks {
        /// Unordered physical switch pair.
        pair: (u32, u32),
        /// Inter-switch links required.
        need: usize,
        /// Inter-switch links wired.
        have: usize,
    },
    /// A physical switch has fewer host ports than hosts assigned.
    NotEnoughHostPorts {
        /// Physical switch.
        switch: u32,
        /// Host ports required.
        need: usize,
        /// Host ports wired.
        have: usize,
    },
    /// The synthesized pipeline exceeds the switch's table capacity
    /// (§VII-C).
    TableCapacity {
        /// Physical switch.
        switch: u32,
        /// Entries required.
        need: usize,
        /// Entry capacity.
        capacity: usize,
    },
}

impl fmt::Display for ProjectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectionError::NotEnoughSelfLinks { switch, need, have } => write!(
                f,
                "physical switch {switch}: {need} self-links needed, {have} wired — add {} cables",
                need - have
            ),
            ProjectionError::NotEnoughInterLinks { pair, need, have } => write!(
                f,
                "switch pair {pair:?}: {need} inter-switch links needed, {have} wired — add {}",
                need - have
            ),
            ProjectionError::NotEnoughHostPorts { switch, need, have } => write!(
                f,
                "physical switch {switch}: {need} host ports needed, {have} reserved"
            ),
            ProjectionError::TableCapacity { switch, need, capacity } => write!(
                f,
                "physical switch {switch}: pipeline needs {need} entries, capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for ProjectionError {}

/// A deployed (or deployable) projection of one logical topology.
#[derive(Clone, Debug)]
pub struct SdtProjection {
    /// Logical switch -> physical switch.
    pub assignment: Vec<u32>,
    /// Logical fabric link -> the cable realizing it.
    pub link_real: HashMap<LinkId, PhysLink>,
    /// Logical directed port (switch, incident link) -> physical port.
    pub port_of: HashMap<(SwitchId, LinkId), PhysPort>,
    /// Host attachment (host, host link) -> physical host port.
    pub host_port: HashMap<(HostId, LinkId), PhysPort>,
    /// Per physical switch: sub-switches as (logical switch, its ports).
    pub subswitches: Vec<Vec<(SwitchId, Vec<PhysPort>)>>,
    /// Synthesized pipeline entries.
    pub synthesis: SynthesisOutput,
    /// Cut size: logical links that crossed physical switches.
    pub inter_switch_links_used: usize,
}

impl SdtProjection {
    /// Primary physical host port of a host (its first attachment).
    pub fn primary_host_port(&self, topo: &Topology, h: HostId) -> PhysPort {
        let (_, lid) = topo.attachments(h)[0];
        self.host_port[&(h, lid)]
    }

    /// Number of sub-switches sharing the physical switch that hosts logical
    /// switch `s` — the crossbar-sharing factor behind the paper's ≤2%
    /// latency overhead (§VI-B).
    pub fn crossbar_sharing(&self, s: SwitchId) -> usize {
        self.subswitches[self.assignment[s.idx()] as usize].len()
    }

    /// Total pipeline entries across the cluster.
    pub fn total_entries(&self) -> usize {
        self.synthesis.entries_per_switch.iter().sum()
    }

    /// Estimated deployment/reconfiguration time: flow-mod installs on the
    /// busiest switch (switches install in parallel) plus the barrier.
    pub fn deploy_time_ns(&self, timing: &InstallTiming) -> u64 {
        let max_entries = self.synthesis.entries_per_switch.iter().copied().max().unwrap_or(0);
        timing.install_time_ns(max_entries)
    }
}

/// The SDT projector (Link Projection).
#[derive(Clone, Debug, Default)]
pub struct SdtProjector {
    /// Partitioner tuning.
    pub partition: PartitionConfig,
    /// §VII-C mitigation: when the synthesized pipeline exceeds a switch's
    /// table capacity, retry with per-sub-switch default-route merging
    /// before giving up.
    pub merge_entries_on_overflow: bool,
}

impl SdtProjector {
    /// Project with the topology's default routing strategy (Table III).
    pub fn project_default(
        &self,
        topo: &Topology,
        cluster: &PhysicalCluster,
    ) -> Result<SdtProjection, ProjectionError> {
        let strategy = default_strategy(topo);
        let routes = RouteTable::build_for_hosts(topo, strategy.as_ref());
        self.project(topo, cluster, &routes)
    }

    /// Project `topo` onto `cluster`, synthesizing flow tables that realize
    /// `routes`.
    pub fn project(
        &self,
        topo: &Topology,
        cluster: &PhysicalCluster,
        routes: &RouteTable,
    ) -> Result<SdtProjection, ProjectionError> {
        self.project_with(topo, cluster, routes, &ProjectOptions::default())
    }

    /// [`project`](Self::project) with explicit options: reuse a previous
    /// partition and/or route around failed physical resources. With
    /// default options this is exactly `project`.
    pub fn project_with(
        &self,
        topo: &Topology,
        cluster: &PhysicalCluster,
        routes: &RouteTable,
        opts: &ProjectOptions<'_>,
    ) -> Result<SdtProjection, ProjectionError> {
        let k = cluster.num_switches();
        let no_faults = FailedResources::default();
        let failed = opts.failed.unwrap_or(&no_faults);
        // 1. Partition (trivial for a single switch), unless the caller
        // pins the old assignment for incremental recovery.
        let assignment: Vec<u32> = match opts.fixed_assignment {
            Some(a) => {
                assert_eq!(
                    a.len(),
                    topo.num_switches() as usize,
                    "fixed assignment must cover every logical switch"
                );
                a.to_vec()
            }
            None if k == 1 => vec![0; topo.num_switches() as usize],
            None => partition_topology(topo, k, &self.partition).assignment().to_vec(),
        };

        // 2. Count resource demands up front so errors are complete.
        let mut self_need = vec![0usize; k as usize];
        let mut inter_need: HashMap<(u32, u32), usize> = HashMap::new();
        for l in topo.fabric_links() {
            let (sa, sb) = l.switch_ends();
            let (pa, pb) = (assignment[sa.idx()], assignment[sb.idx()]);
            if pa == pb {
                self_need[pa as usize] += 1;
            } else {
                *inter_need.entry((pa.min(pb), pa.max(pb))).or_insert(0) += 1;
            }
        }
        let mut host_need = vec![0usize; k as usize];
        for h in 0..topo.num_hosts() {
            for &(s, _) in topo.attachments(HostId(h)) {
                host_need[assignment[s.idx()] as usize] += 1;
            }
        }
        for sw in 0..k {
            let have = cluster.self_links_of(sw).filter(|l| failed.cable_ok(l)).count();
            let need = self_need[sw as usize];
            if need > have {
                return Err(ProjectionError::NotEnoughSelfLinks { switch: sw, need, have });
            }
            let have = cluster.host_ports_of(sw).filter(|&&p| failed.port_ok(p)).count();
            let need = host_need[sw as usize];
            if need > have {
                return Err(ProjectionError::NotEnoughHostPorts { switch: sw, need, have });
            }
        }
        for (&pair, &need) in &inter_need {
            let have = cluster
                .inter_links_between(pair.0, pair.1)
                .filter(|l| failed.cable_ok(l))
                .count();
            if need > have {
                return Err(ProjectionError::NotEnoughInterLinks { pair, need, have });
            }
        }

        // 3. Assign cables and ports (dead resources never enter the free
        // lists).
        let mut self_free: Vec<Vec<PhysLink>> = (0..k)
            .map(|sw| {
                cluster.self_links_of(sw).filter(|l| failed.cable_ok(l)).copied().collect()
            })
            .collect();
        let mut inter_free: HashMap<(u32, u32), Vec<PhysLink>> = inter_need
            .keys()
            .map(|&pair| {
                (
                    pair,
                    cluster
                        .inter_links_between(pair.0, pair.1)
                        .filter(|l| failed.cable_ok(l))
                        .copied()
                        .collect(),
                )
            })
            .collect();
        let mut host_free: Vec<Vec<PhysPort>> = (0..k)
            .map(|sw| {
                cluster.host_ports_of(sw).filter(|&&p| failed.port_ok(p)).copied().collect()
            })
            .collect();

        let mut link_real = HashMap::new();
        let mut port_of = HashMap::new();
        let mut inter_used = 0usize;
        // Cables some link prefers: a link *without* a (live) preference
        // must not steal one of these, or the displaced link would cascade
        // into stealing the next link's cable and the "incremental" diff
        // would balloon.
        let reserved: HashSet<(PhysPort, PhysPort)> = opts
            .prefer_cables
            .map(|m| m.values().map(|c| (c.a, c.b)).collect())
            .unwrap_or_default();
        for l in topo.fabric_links() {
            let (sa, sb) = l.switch_ends();
            let (pa, pb) = (assignment[sa.idx()], assignment[sb.idx()]);
            let preferred = opts
                .prefer_cables
                .and_then(|m| m.get(&(sa.min(sb), sa.max(sb))))
                .copied();
            let cable = {
                let free: &mut Vec<PhysLink> = if pa == pb {
                    &mut self_free[pa as usize]
                } else {
                    match inter_free.get_mut(&(pa.min(pb), pa.max(pb))) {
                        Some(f) => f,
                        None => unreachable!("demand counting pre-populated every pair"),
                    }
                };
                match preferred.and_then(|c| free.iter().position(|x| *x == c)) {
                    Some(i) => free.remove(i),
                    None => {
                        // Take the last unreserved cable (plain pop when no
                        // preferences are in play); steal only when every
                        // remaining cable is someone's preference.
                        let pos = free
                            .iter()
                            .rposition(|x| !reserved.contains(&(x.a, x.b)))
                            .unwrap_or(free.len() - 1);
                        free.remove(pos)
                    }
                }
            };
            if pa != pb {
                inter_used += 1;
            }
            // Orient: endpoint `sa` gets the cable end on `pa` (for
            // self-links both ends are on `pa`; keep the cable's order).
            let (end_a, end_b) = if cable.a.switch == pa {
                (cable.a, cable.b)
            } else {
                (cable.b, cable.a)
            };
            debug_assert_eq!(end_a.switch, pa);
            debug_assert_eq!(end_b.switch, pb);
            link_real.insert(l.id, cable);
            port_of.insert((sa, l.id), end_a);
            port_of.insert((sb, l.id), end_b);
        }

        let mut host_port = HashMap::new();
        for h in 0..topo.num_hosts() {
            for &(s, lid) in topo.attachments(HostId(h)) {
                let sw = assignment[s.idx()];
                let p = match host_free[sw as usize].pop() {
                    Some(p) => p,
                    None => unreachable!("demand counting reserved a port per attachment"),
                };
                host_port.insert((HostId(h), lid), p);
                port_of.insert((s, lid), p);
            }
        }

        // 4. Sub-switch port groups.
        let mut subswitches: Vec<Vec<(SwitchId, Vec<PhysPort>)>> = vec![Vec::new(); k as usize];
        for s in 0..topo.num_switches() {
            let s = SwitchId(s);
            let mut ports: Vec<PhysPort> = topo
                .neighbors(s)
                .iter()
                .map(|&(_, lid)| port_of[&(s, lid)])
                .chain(topo.hosts_of(s).iter().map(|&(_, lid)| port_of[&(s, lid)]))
                .collect();
            ports.sort_unstable();
            subswitches[assignment[s.idx()] as usize].push((s, ports));
        }

        // 5. Flow-table synthesis + capacity check (§VII-C: fall back to
        // entry merging if enabled and the plain pipeline does not fit).
        let mut synthesis =
            synthesize_flow_tables(topo, routes, &assignment, &port_of, &host_port, k);
        let capacity = cluster.model().table_capacity;
        if self.merge_entries_on_overflow
            && synthesis.entries_per_switch.iter().any(|&n| n > capacity)
        {
            synthesis = synthesize_flow_tables_merged(
                topo, routes, &assignment, &port_of, &host_port, k,
            );
        }
        for (sw, &need) in synthesis.entries_per_switch.iter().enumerate() {
            if need > capacity {
                return Err(ProjectionError::TableCapacity { switch: sw as u32, need, capacity });
            }
        }

        Ok(SdtProjection {
            assignment,
            link_real,
            port_of,
            host_port,
            subswitches,
            synthesis,
            inter_switch_links_used: inter_used,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterBuilder;
    use crate::methods::SwitchModel;
    use sdt_topology::chain::chain;
    use sdt_topology::fattree::fat_tree;
    use sdt_topology::meshtorus::torus;

    fn cluster(n: u32, hosts: u16, inter: u16) -> PhysicalCluster {
        ClusterBuilder::new(SwitchModel::openflow_128x100g(), n)
            .hosts_per_switch(hosts)
            .inter_links_per_pair(inter)
            .build()
    }

    #[test]
    fn chain_on_one_switch() {
        let t = chain(8);
        let c = cluster(1, 8, 0);
        let p = SdtProjector::default().project_default(&t, &c).unwrap();
        assert_eq!(p.inter_switch_links_used, 0);
        assert_eq!(p.link_real.len(), 7);
        assert_eq!(p.host_port.len(), 8);
        assert_eq!(p.subswitches[0].len(), 8);
        assert_eq!(p.crossbar_sharing(SwitchId(0)), 8);
    }

    #[test]
    fn fat_tree_on_two_switches() {
        let t = fat_tree(4);
        let c = cluster(2, 16, 16);
        let p = SdtProjector::default().project_default(&t, &c).unwrap();
        // All 32 fabric links realized, all 16 hosts placed.
        assert_eq!(p.link_real.len(), 32);
        assert_eq!(p.host_port.len(), 16);
        assert!(p.inter_switch_links_used <= 16);
        // Every logical switch's ports live on its assigned physical switch.
        for (sw, subs) in p.subswitches.iter().enumerate() {
            for (s, ports) in subs {
                assert_eq!(p.assignment[s.idx()], sw as u32);
                assert_eq!(ports.len(), t.radix(*s));
                assert!(ports.iter().all(|pp| pp.switch == sw as u32));
            }
        }
    }

    #[test]
    fn torus_4x4_two_switches_needs_8_inter_links() {
        // Fig. 7 Case A: 8 inter-switch links.
        let t = torus(&[4, 4]);
        let c = cluster(2, 16, 8);
        let p = SdtProjector::default().project_default(&t, &c).unwrap();
        assert_eq!(p.inter_switch_links_used, 8);
    }

    #[test]
    fn insufficient_inter_links_reported_with_counts() {
        let t = torus(&[4, 4]);
        let c = cluster(2, 16, 4); // only 4 wired, 8 needed
        let err = SdtProjector::default().project_default(&t, &c).unwrap_err();
        match err {
            ProjectionError::NotEnoughInterLinks { pair: (0, 1), need, have } => {
                assert_eq!(need, 8);
                assert_eq!(have, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn insufficient_host_ports_reported() {
        let t = chain(8);
        let c = cluster(1, 4, 0);
        let err = SdtProjector::default().project_default(&t, &c).unwrap_err();
        assert!(matches!(err, ProjectionError::NotEnoughHostPorts { need: 8, have: 4, .. }));
    }

    #[test]
    fn no_cable_used_twice() {
        let t = fat_tree(4);
        let c = cluster(2, 16, 16);
        let p = SdtProjector::default().project_default(&t, &c).unwrap();
        let mut seen = std::collections::HashSet::new();
        for cable in p.link_real.values() {
            assert!(seen.insert((cable.a, cable.b)), "cable reused: {cable:?}");
        }
        let mut ports = std::collections::HashSet::new();
        for port in p.port_of.values() {
            assert!(ports.insert(*port), "port reused: {port:?}");
        }
    }

    #[test]
    fn overflow_triggers_entry_merging_when_enabled() {
        // Shrink the table capacity below the plain pipeline's need.
        let t = fat_tree(4);
        let mut model = SwitchModel::openflow_128x100g();
        let c0 = ClusterBuilder::new(model, 2)
            .hosts_per_switch(16)
            .inter_links_per_pair(16)
            .build();
        let plain = SdtProjector::default().project_default(&t, &c0).unwrap();
        let need = *plain.synthesis.entries_per_switch.iter().max().unwrap();
        model.table_capacity = need - 10;
        let c = ClusterBuilder::new(model, 2)
            .hosts_per_switch(16)
            .inter_links_per_pair(16)
            .build();
        // Without the mitigation: refused.
        let err = SdtProjector::default().project_default(&t, &c).unwrap_err();
        assert!(matches!(err, ProjectionError::TableCapacity { .. }));
        // With it: merged synthesis fits.
        let proj =
            SdtProjector { merge_entries_on_overflow: true, ..Default::default() };
        let p = proj.project_default(&t, &c).unwrap();
        assert!(p.synthesis.entries_per_switch.iter().all(|&n| n < need));
    }

    #[test]
    fn project_with_default_options_matches_project() {
        let t = fat_tree(4);
        let c = cluster(2, 16, 16);
        let proj = SdtProjector::default();
        let strategy = default_strategy(&t);
        let routes = RouteTable::build_for_hosts(&t, strategy.as_ref());
        let a = proj.project(&t, &c, &routes).unwrap();
        let b = proj.project_with(&t, &c, &routes, &ProjectOptions::default()).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.link_real, b.link_real);
        assert_eq!(a.inter_switch_links_used, b.inter_switch_links_used);
    }

    #[test]
    fn failed_cables_are_routed_around() {
        // Torus 4x4 on 2 switches needs exactly 8 of the wired inter-links;
        // wire 10, kill 2 — projection must still succeed without touching
        // the dead cables.
        let t = torus(&[4, 4]);
        let c = cluster(2, 16, 10);
        let proj = SdtProjector::default();
        let strategy = default_strategy(&t);
        let routes = RouteTable::build_for_hosts(&t, strategy.as_ref());
        let healthy = proj.project(&t, &c, &routes).unwrap();
        let mut failed = FailedResources::new();
        let dead: Vec<PhysLink> = c.inter_links_between(0, 1).take(2).copied().collect();
        for cable in &dead {
            failed.fail_cable(cable);
        }
        assert_eq!(failed.len(), 2);
        let opts = ProjectOptions {
            fixed_assignment: Some(&healthy.assignment),
            failed: Some(&failed),
            ..Default::default()
        };
        let p = proj.project_with(&t, &c, &routes, &opts).unwrap();
        assert_eq!(p.assignment, healthy.assignment, "partition reused");
        for cable in p.link_real.values() {
            assert!(failed.cable_ok(cable), "dead cable {cable:?} reused");
        }
    }

    #[test]
    fn preferred_cables_are_reused() {
        // Re-projecting with the old cable map as preference must keep
        // every healthy cable exactly where it was.
        let t = torus(&[4, 4]);
        let c = cluster(2, 16, 10);
        let proj = SdtProjector::default();
        let strategy = default_strategy(&t);
        let routes = RouteTable::build_for_hosts(&t, strategy.as_ref());
        let old = proj.project(&t, &c, &routes).unwrap();
        let mut prefer: HashMap<(SwitchId, SwitchId), PhysLink> = HashMap::new();
        for l in t.fabric_links() {
            let (a, b) = (l.a.as_switch().unwrap(), l.b.as_switch().unwrap());
            prefer.insert((a.min(b), a.max(b)), old.link_real[&l.id]);
        }
        let opts = ProjectOptions {
            fixed_assignment: Some(&old.assignment),
            prefer_cables: Some(&prefer),
            ..Default::default()
        };
        let p = proj.project_with(&t, &c, &routes, &opts).unwrap();
        assert_eq!(p.link_real, old.link_real);
    }

    #[test]
    fn too_many_failures_reported_as_shortage() {
        // 8 inter-links needed; wire 8, kill 1 — the checking function must
        // say the surviving plant is one cable short.
        let t = torus(&[4, 4]);
        let c = cluster(2, 16, 8);
        let proj = SdtProjector::default();
        let strategy = default_strategy(&t);
        let routes = RouteTable::build_for_hosts(&t, strategy.as_ref());
        let mut failed = FailedResources::new();
        failed.fail_cable(c.inter_links_between(0, 1).next().unwrap());
        let opts = ProjectOptions { failed: Some(&failed), ..Default::default() };
        let err = proj.project_with(&t, &c, &routes, &opts).unwrap_err();
        assert!(
            matches!(err, ProjectionError::NotEnoughInterLinks { need: 8, have: 7, .. }),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn failed_port_kills_incident_cables_and_host_slots() {
        let t = chain(8);
        let c = cluster(1, 9, 0);
        let proj = SdtProjector::default();
        let strategy = default_strategy(&t);
        let routes = RouteTable::build_for_hosts(&t, strategy.as_ref());
        let mut failed = FailedResources::new();
        // Kill one host port: 9 wired - 1 dead = 8 still fits.
        failed.fail_port(*c.host_ports_of(0).next().unwrap());
        let opts = ProjectOptions { failed: Some(&failed), ..Default::default() };
        let p = proj.project_with(&t, &c, &routes, &opts).unwrap();
        for port in p.host_port.values() {
            assert!(failed.port_ok(*port), "dead host port reused");
        }
        // A port failure also condemns any cable touching it.
        let cable = c.self_links_of(0).next().unwrap();
        let mut failed2 = FailedResources::new();
        failed2.fail_port(cable.a);
        assert!(!failed2.cable_ok(cable));
    }

    #[test]
    fn deploy_time_sub_second() {
        // Table II: SDT reconfiguration 100ms ~ 1s.
        let t = fat_tree(4);
        let c = cluster(2, 16, 16);
        let p = SdtProjector::default().project_default(&t, &c).unwrap();
        let ns = p.deploy_time_ns(&InstallTiming::default());
        assert!((100_000_000..=1_000_000_000).contains(&ns), "{ns} ns");
    }
}
