//! Dataplane packet walking and the §VI-B hardware-isolation check.
//!
//! [`instantiate`] turns a projection into live [`OpenFlowSwitch`]es;
//! [`walk_packet`] then injects a packet at a host port and follows cables
//! and flow tables hop by hop — a software Wireshark. Projection
//! correctness means: every packet between connected hosts is delivered on
//! the same switch sequence the logical route prescribes, and every packet
//! toward a host of a different (co-deployed) topology is dropped before it
//! can reach any foreign port.

use crate::cluster::PhysicalCluster;
use crate::sdt::SdtProjection;
use crate::synthesis::addr_of;
use sdt_openflow::{FlowMod, OpenFlowSwitch, PacketMeta, PortNo, SwitchConfig};
use sdt_topology::{HostId, Topology};

/// One traversal record: (physical switch, ingress port, egress port).
pub type HopRecord = (u32, PortNo, PortNo);

/// Result of walking one packet through the dataplane.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalkOutcome {
    /// Delivered to a host port.
    Delivered {
        /// The host owning the delivery port.
        to: HostId,
        /// Physical switch traversals.
        path: Vec<HopRecord>,
    },
    /// Dropped (table miss or Drop rule).
    Dropped {
        /// Switch where the packet died.
        at: u32,
        /// Traversals up to the drop.
        path: Vec<HopRecord>,
    },
    /// Exceeded the hop budget — a forwarding loop.
    Looped,
}

/// Build live switches from a projection (installs the whole pipeline).
pub fn instantiate(cluster: &PhysicalCluster, proj: &SdtProjection) -> Vec<OpenFlowSwitch> {
    let model = cluster.model();
    let cfg = SwitchConfig {
        num_ports: model.ports as u16,
        port_gbps: model.gbps,
        table_capacity: model.table_capacity,
    };
    let mut switches: Vec<OpenFlowSwitch> =
        (0..cluster.num_switches()).map(|i| OpenFlowSwitch::new(i, cfg)).collect();
    for (sw, switch) in switches.iter_mut().enumerate() {
        let mods = [
            (0, &proj.synthesis.table0[sw]),
            (1, &proj.synthesis.table1[sw]),
        ];
        for (table, entries) in mods {
            if let Err(e) = switch.apply_batch(table, entries.iter().map(|&e| FlowMod::Add(e))) {
                unreachable!("projection passed the capacity check: {e}");
            }
        }
    }
    switches
}

/// Inject a packet from `src` to `dst` and follow it through the cluster.
pub fn walk_packet(
    cluster: &PhysicalCluster,
    switches: &mut [OpenFlowSwitch],
    proj: &SdtProjection,
    topo: &Topology,
    src: HostId,
    dst: HostId,
) -> WalkOutcome {
    let start = proj.primary_host_port(topo, src);
    let mut at_switch = start.switch;
    let mut in_port = start.port;
    let mut path = Vec::new();
    // Hop budget: generous multiple of the cluster size.
    let budget = 4 * cluster.links().len() + 8;

    // Reverse map: host port -> host.
    for _ in 0..budget {
        let meta = PacketMeta {
            in_port,
            src: addr_of(src),
            dst: addr_of(dst),
            l4_src: 4791, // RoCEv2 UDP port, for flavor
            l4_dst: 4791,
        };
        let out = match switches[at_switch as usize].forward(&meta, 1500) {
            Some(p) => p,
            None => return WalkOutcome::Dropped { at: at_switch, path },
        };
        path.push((at_switch, in_port, out));
        let out_pp = crate::cluster::PhysPort { switch: at_switch, port: out };
        if cluster.is_host_port(out_pp) {
            // Which host owns this port?
            let owner = proj
                .host_port
                .iter()
                .find(|&(_, &pp)| pp == out_pp)
                .map(|(&(h, _), _)| h)
                .unwrap_or_else(|| unreachable!("egress host port is assigned to a host"));
            return WalkOutcome::Delivered { to: owner, path };
        }
        match cluster.link_at(out_pp) {
            Some(cable) => {
                let far = cable.other(out_pp);
                at_switch = far.switch;
                in_port = far.port;
            }
            None => {
                // Unwired port: packet falls on the floor.
                return WalkOutcome::Dropped { at: at_switch, path };
            }
        }
    }
    WalkOutcome::Looped
}

/// Aggregate isolation audit: walk every ordered host pair and check that
/// packets are delivered exactly within connected components.
#[derive(Clone, Debug, Default)]
pub struct IsolationReport {
    /// Pairs delivered to the correct destination.
    pub delivered: usize,
    /// Cross-component pairs correctly dropped.
    pub isolated: usize,
    /// Violations: wrong destination, leaked across components, or loops.
    pub violations: Vec<(HostId, HostId, String)>,
}

impl IsolationReport {
    /// Run the audit over every ordered host pair on freshly instantiated
    /// switches (the projection exactly as synthesized).
    pub fn audit(
        cluster: &PhysicalCluster,
        proj: &SdtProjection,
        topo: &Topology,
    ) -> IsolationReport {
        let mut switches = instantiate(cluster, proj);
        Self::audit_on(cluster, &mut switches, proj, topo)
    }

    /// Run the audit against the *live* switches as they stand — tables and
    /// all. This is what the chaos harness uses after a recovery: it checks
    /// the actual post-retry switch state, not a re-synthesized ideal, so a
    /// flow-mod the control channel silently dropped shows up as a
    /// violation here.
    pub fn audit_on(
        cluster: &PhysicalCluster,
        switches: &mut [OpenFlowSwitch],
        proj: &SdtProjection,
        topo: &Topology,
    ) -> IsolationReport {
        let comp = topo.component_of();
        let mut report = IsolationReport::default();
        for a in 0..topo.num_hosts() {
            for b in 0..topo.num_hosts() {
                if a == b {
                    continue;
                }
                let (src, dst) = (HostId(a), HostId(b));
                let same = comp[topo.host_switch(src).idx()] == comp[topo.host_switch(dst).idx()];
                match walk_packet(cluster, switches, proj, topo, src, dst) {
                    WalkOutcome::Delivered { to, .. } if same && to == dst => {
                        report.delivered += 1
                    }
                    WalkOutcome::Delivered { to, .. } => report.violations.push((
                        src,
                        dst,
                        format!("delivered to {to:?} (same-component = {same})"),
                    )),
                    WalkOutcome::Dropped { .. } if !same => report.isolated += 1,
                    WalkOutcome::Dropped { at, .. } => {
                        report.violations.push((src, dst, format!("dropped at switch {at}")))
                    }
                    WalkOutcome::Looped => {
                        report.violations.push((src, dst, "forwarding loop".into()))
                    }
                }
            }
        }
        report
    }

    /// True when no violations were found.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterBuilder;
    use crate::methods::SwitchModel;
    use crate::sdt::SdtProjector;
    use sdt_topology::chain::chain;
    use sdt_topology::fattree::fat_tree;

    fn cluster(n: u32, hosts: u16, inter: u16) -> PhysicalCluster {
        ClusterBuilder::new(SwitchModel::openflow_128x100g(), n)
            .hosts_per_switch(hosts)
            .inter_links_per_pair(inter)
            .build()
    }

    #[test]
    fn chain_packet_takes_logical_path() {
        let t = chain(8);
        let c = cluster(1, 8, 0);
        let p = SdtProjector::default().project_default(&t, &c).unwrap();
        let mut switches = instantiate(&c, &p);
        match walk_packet(&c, &mut switches, &p, &t, HostId(0), HostId(7)) {
            WalkOutcome::Delivered { to, path } => {
                assert_eq!(to, HostId(7));
                // 8 logical switches traversed = 8 pipeline passes.
                assert_eq!(path.len(), 8);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fat_tree_all_pairs_delivered() {
        let t = fat_tree(4);
        let c = cluster(2, 16, 16);
        let p = SdtProjector::default().project_default(&t, &c).unwrap();
        let report = IsolationReport::audit(&c, &p, &t);
        assert!(report.clean(), "violations: {:?}", report.violations);
        assert_eq!(report.delivered, 16 * 15);
        assert_eq!(report.isolated, 0);
    }

    #[test]
    fn hop_count_matches_logical_route() {
        let t = fat_tree(4);
        let c = cluster(2, 16, 16);
        let p = SdtProjector::default().project_default(&t, &c).unwrap();
        let mut switches = instantiate(&c, &p);
        // Host 0 (pod 0) to host 15 (pod 3): 5 logical switches.
        match walk_packet(&c, &mut switches, &p, &t, HostId(0), HostId(15)) {
            WalkOutcome::Delivered { path, .. } => assert_eq!(path.len(), 5),
            other => panic!("{other:?}"),
        }
    }
}
