//! Flow-table synthesis: lowering a projection + routing to OpenFlow.
//!
//! Produces the two-table pipeline described in [`sdt_openflow::switch`]:
//!
//! * **table 0** — one entry per in-use physical port: `in_port = p →
//!   write-metadata(sub-switch id), goto table 1`. This is the sub-switch
//!   partition (§IV-A): it pins every packet to the logical switch its
//!   ingress port belongs to.
//! * **table 1** — one entry per (sub-switch, destination host):
//!   `metadata = s ∧ ip_dst = d → output(port)`, where the port realizes the
//!   routing strategy's next hop (or the host port at the last hop). When a
//!   strategy is source-dependent (e.g. Valiant), higher-priority
//!   src-specific entries override the destination default.
//!
//! Misses drop. Nothing can leave a sub-switch's forwarding domain, which
//! is the property the §VI-B isolation experiment checks with a sniffer.

use crate::cluster::PhysPort;
use sdt_openflow::{Action, FlowEntry, FlowMatch, HostAddr};
use sdt_routing::RouteTable;
use sdt_topology::{HostId, LinkId, SwitchId, Topology};
use std::collections::HashMap;

/// Priorities of the synthesized entry classes.
const PRIO_CLASSIFY: u16 = 10;
const PRIO_DEFAULT: u16 = 5;
const PRIO_DST: u16 = 10;
const PRIO_SRC_OVERRIDE: u16 = 20;

/// Synthesized pipeline for every physical switch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SynthesisOutput {
    /// Per physical switch: table-0 entries (port classification).
    pub table0: Vec<Vec<FlowEntry>>,
    /// Per physical switch: table-1 entries (routing per sub-switch).
    pub table1: Vec<Vec<FlowEntry>>,
    /// Per physical switch: total entries (both tables).
    pub entries_per_switch: Vec<usize>,
}

/// The host address SDT assigns to a host id (identity mapping).
pub fn addr_of(h: HostId) -> HostAddr {
    HostAddr(h.0)
}

/// Lower `routes` over the projected `topo` to per-switch flow tables.
///
/// `assignment` maps logical→physical switches, `port_of` logical directed
/// ports→physical ports, `host_port` host attachments→host ports (all from
/// [`crate::sdt::SdtProjector`]).
pub fn synthesize_flow_tables(
    topo: &Topology,
    routes: &RouteTable,
    assignment: &[u32],
    port_of: &HashMap<(SwitchId, LinkId), PhysPort>,
    host_port: &HashMap<(HostId, LinkId), PhysPort>,
    num_phys: u32,
) -> SynthesisOutput {
    synthesize_with(topo, routes, assignment, port_of, host_port, num_phys, false)
}

/// Like [`synthesize_flow_tables`], but with §VII-C entry merging: for each
/// sub-switch the most common egress becomes one low-priority
/// `metadata-only` default entry, and only exceptions keep exact
/// destination entries. This shrinks tables by the fan-out factor when a
/// projection would otherwise exceed capacity — at the cost that packets to
/// *unknown* destinations entering that sub-switch follow the default
/// instead of dropping (packets can still never leave their sub-switch's
/// port domain, so co-deployed topologies remain port-isolated).
pub fn synthesize_flow_tables_merged(
    topo: &Topology,
    routes: &RouteTable,
    assignment: &[u32],
    port_of: &HashMap<(SwitchId, LinkId), PhysPort>,
    host_port: &HashMap<(HostId, LinkId), PhysPort>,
    num_phys: u32,
) -> SynthesisOutput {
    synthesize_with(topo, routes, assignment, port_of, host_port, num_phys, true)
}

#[allow(clippy::too_many_arguments)]
fn synthesize_with(
    topo: &Topology,
    routes: &RouteTable,
    assignment: &[u32],
    port_of: &HashMap<(SwitchId, LinkId), PhysPort>,
    host_port: &HashMap<(HostId, LinkId), PhysPort>,
    num_phys: u32,
    merge_defaults: bool,
) -> SynthesisOutput {
    // Egress demand: (logical switch, dst host) -> egress port, with
    // src-specific overrides when routes conflict.
    let mut egress: HashMap<(SwitchId, HostId), PhysPort> = HashMap::new();
    let mut overrides: HashMap<(SwitchId, HostId, HostId), PhysPort> = HashMap::new();

    // Link id joining two adjacent logical switches.
    let link_between = |a: SwitchId, b: SwitchId| -> LinkId {
        topo.neighbors(a)
            .iter()
            .find(|&&(n, _)| n == b)
            .map(|&(_, lid)| lid)
            .unwrap_or_else(|| unreachable!("route hops are fabric neighbors"))
    };

    for src in 0..topo.num_hosts() {
        let src = HostId(src);
        for dst in 0..topo.num_hosts() {
            let dst = HostId(dst);
            if src == dst {
                continue;
            }
            let sa = topo.host_switch(src);
            let sb = topo.host_switch(dst);
            // Hop sequence of logical switches the packet visits.
            let hops: Vec<SwitchId> = if sa == sb {
                vec![sa]
            } else {
                match routes.try_route(sa, sb) {
                    Some(r) => r.hops.clone(),
                    None => continue, // unreachable pair (disjoint component)
                }
            };
            for (i, &s) in hops.iter().enumerate() {
                let out: PhysPort = if i + 1 < hops.len() {
                    let lid = link_between(s, hops[i + 1]);
                    port_of[&(s, lid)]
                } else {
                    // Delivery hop: the destination's host port at `s`.
                    let (_, lid) = topo
                        .attachments(dst)
                        .iter()
                        .copied()
                        .find(|&(att, _)| att == s)
                        .unwrap_or_else(|| unreachable!("route ends at an attachment switch of dst"));
                    host_port[&(dst, lid)]
                };
                match egress.entry((s, dst)) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(out);
                    }
                    std::collections::hash_map::Entry::Occupied(o) => {
                        if *o.get() != out {
                            // Source-dependent route: record an override.
                            overrides.insert((s, src, dst), out);
                        }
                    }
                }
            }
        }
    }

    // Emit per physical switch.
    let mut out = SynthesisOutput {
        table0: vec![Vec::new(); num_phys as usize],
        table1: vec![Vec::new(); num_phys as usize],
        entries_per_switch: vec![0; num_phys as usize],
    };

    // Table 0: port classification for every logical port.
    for (&(s, _lid), &pp) in port_of {
        out.table0[pp.switch as usize].push(FlowEntry {
            m: FlowMatch::on_port(pp.port),
            priority: PRIO_CLASSIFY,
            action: Action::WriteMetadataGoto(s.0),
        });
    }

    // Table 1: destination routing per sub-switch, optionally compressed
    // around a per-sub-switch default egress (§VII-C entry merging).
    let mut default_egress: HashMap<u32, sdt_openflow::PortNo> = HashMap::new();
    if merge_defaults {
        let mut counts: HashMap<(u32, sdt_openflow::PortNo), usize> = HashMap::new();
        for (&(s, _), &pp) in &egress {
            *counts.entry((s.0, pp.port)).or_insert(0) += 1;
        }
        for (&(s, port), &n) in &counts {
            let best = default_egress.get(&s).map(|p| counts[&(s, *p)]).unwrap_or(0);
            if n > best {
                default_egress.insert(s, port);
            }
        }
        for (&s, &port) in &default_egress {
            out.table1[assignment[s as usize] as usize].push(FlowEntry {
                m: FlowMatch { metadata: Some(s), ..FlowMatch::any() },
                priority: PRIO_DEFAULT,
                action: Action::Output(port),
            });
        }
    }
    for (&(s, dst), &pp) in &egress {
        if merge_defaults && default_egress.get(&s.0) == Some(&pp.port) {
            continue; // covered by the sub-switch default
        }
        out.table1[assignment[s.idx()] as usize].push(FlowEntry {
            m: FlowMatch::to_dst(addr_of(dst)).and_metadata(s.0),
            priority: PRIO_DST,
            action: Action::Output(pp.port),
        });
    }
    for (&(s, src, dst), &pp) in &overrides {
        let mut m = FlowMatch::to_dst(addr_of(dst)).and_metadata(s.0);
        m.src = Some(addr_of(src));
        out.table1[assignment[s.idx()] as usize].push(FlowEntry {
            m,
            priority: PRIO_SRC_OVERRIDE,
            action: Action::Output(pp.port),
        });
    }

    // Deterministic order (HashMap iteration is not).
    for t in out.table0.iter_mut().chain(out.table1.iter_mut()) {
        t.sort_unstable_by_key(|e| {
            (std::cmp::Reverse(e.priority), e.m.in_port, e.m.metadata, e.m.dst, e.m.src)
        });
    }
    for sw in 0..num_phys as usize {
        out.entries_per_switch[sw] = out.table0[sw].len() + out.table1[sw].len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterBuilder;
    use crate::methods::SwitchModel;
    use crate::sdt::SdtProjector;
    use sdt_topology::fattree::fat_tree;

    #[test]
    fn fat_tree_k4_entry_budget_matches_paper() {
        // §VII-C: projecting fat-tree k=4 (20 switches, 16 nodes) onto 2
        // OpenFlow switches needs "about only 300 flow table entries" per
        // switch. Our two-table pipeline: table0 = logical ports on the
        // switch (~40), table1 = sub-switches x destinations (~160).
        let t = fat_tree(4);
        let c = ClusterBuilder::new(SwitchModel::openflow_128x100g(), 2)
            .hosts_per_switch(16)
            .inter_links_per_pair(16)
            .build();
        let p = SdtProjector::default().project_default(&t, &c).unwrap();
        for (sw, &n) in p.synthesis.entries_per_switch.iter().enumerate() {
            assert!(
                (100..=400).contains(&n),
                "switch {sw}: {n} entries, expected a few hundred"
            );
        }
        let total: usize = p.synthesis.entries_per_switch.iter().sum();
        // 80 classification entries (one per logical port) plus routing
        // entries for every sub-switch actually traversed by some route.
        assert!((240..=800).contains(&total), "total {total}");
    }

    #[test]
    fn merged_synthesis_shrinks_tables_and_still_delivers() {
        use crate::walk::IsolationReport;
        let t = fat_tree(4);
        let c = ClusterBuilder::new(SwitchModel::openflow_128x100g(), 2)
            .hosts_per_switch(16)
            .inter_links_per_pair(16)
            .build();
        let mut proj = SdtProjector::default().project_default(&t, &c).unwrap();
        let plain: usize = proj.synthesis.entries_per_switch.iter().sum();
        // Re-synthesize with merging and swap it in.
        let strategy = sdt_routing::default_strategy(&t);
        let routes = sdt_routing::RouteTable::build_for_hosts(&t, strategy.as_ref());
        proj.synthesis = synthesize_flow_tables_merged(
            &t,
            &routes,
            &proj.assignment,
            &proj.port_of,
            &proj.host_port,
            2,
        );
        let merged: usize = proj.synthesis.entries_per_switch.iter().sum();
        assert!(merged < plain, "merged {merged} vs plain {plain}");
        let report = IsolationReport::audit(&c, &proj, &t);
        assert!(report.clean(), "{:?}", report.violations);
    }

    #[test]
    fn every_table1_entry_keeps_domain() {
        // An entry for sub-switch s must output on a port of s — forwarding
        // domain closure, the isolation property.
        let t = fat_tree(4);
        let c = ClusterBuilder::new(SwitchModel::openflow_128x100g(), 2)
            .hosts_per_switch(16)
            .inter_links_per_pair(16)
            .build();
        let p = SdtProjector::default().project_default(&t, &c).unwrap();
        for (sw, entries) in p.synthesis.table1.iter().enumerate() {
            for e in entries {
                let s = SwitchId(e.m.metadata.expect("table1 entries are metadata-scoped"));
                let ports = p.subswitches[sw]
                    .iter()
                    .find(|(ls, _)| *ls == s)
                    .map(|(_, ps)| ps.clone())
                    .expect("sub-switch present on this physical switch");
                match e.action {
                    Action::Output(port) => assert!(
                        ports.iter().any(|pp| pp.port == port),
                        "entry {e:?} escapes sub-switch {s:?}"
                    ),
                    other => panic!("unexpected action {other:?}"),
                }
            }
        }
    }
}
