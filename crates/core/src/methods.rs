//! Topology Projection methods and their cost / reconfiguration models.
//!
//! The paper compares four TP methods (§III, §VI-C, Tables I & II):
//!
//! | Method   | Reconfiguration            | Hardware                  |
//! |----------|----------------------------|---------------------------|
//! | SP       | manual recabling, > 1 hour | OpenFlow switch           |
//! | SP-OS    | MEMS optical, 100 ms – 1 s | switch + optical switch   |
//! | TurboNet | P4 recompile, ≥ 10 s       | P4 (Tofino) switch        |
//! | SDT      | flow-mods, 100 ms – 1 s    | OpenFlow or P4 switch     |
//!
//! All four share the same port mathematics for *whether* a topology fits
//! (TurboNet additionally halves usable bandwidth because every logical
//! link transits a loopback port — De Sensi et al. \[35\]); they differ in
//! money and in what a reconfiguration costs.

use serde::{Deserialize, Serialize};

/// Price of one MEMS optical-switch port, USD (a 320-port MEMS chassis
/// runs > $100k — §III-C).
pub const OPTICAL_PORT_USD: u32 = 320;

/// The four Topology Projection methods.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Method {
    /// Switch Projection: sub-switches + manual cabling.
    Sp,
    /// SP plus a MEMS optical switch for reconfiguration.
    SpOs,
    /// TurboNet-style projection through P4 loopback ports.
    Turbonet,
    /// SDT: Link Projection, flow-table-only reconfiguration.
    Sdt,
}

impl Method {
    /// All methods, table order.
    pub const ALL: [Method; 4] = [Method::Sp, Method::SpOs, Method::Turbonet, Method::Sdt];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Sp => "SP",
            Method::SpOs => "SP-OS",
            Method::Turbonet => "TurboNet",
            Method::Sdt => "SDT",
        }
    }

    /// Bandwidth divisor the method imposes on every projected link.
    /// TurboNet's loopback ports halve usable bandwidth.
    pub fn bandwidth_divisor(self) -> u32 {
        match self {
            Method::Turbonet => 2,
            _ => 1,
        }
    }

    /// Hardware class required.
    pub fn hardware(self) -> HardwareKind {
        match self {
            Method::Sp => HardwareKind::OpenFlow,
            Method::SpOs => HardwareKind::OpenFlowPlusOptical,
            Method::Turbonet => HardwareKind::P4,
            Method::Sdt => HardwareKind::OpenFlowOrP4,
        }
    }
}

/// Hardware class a method runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HardwareKind {
    /// Commodity OpenFlow switch.
    OpenFlow,
    /// OpenFlow switch + MEMS optical switch.
    OpenFlowPlusOptical,
    /// Programmable P4 (Tofino) switch.
    P4,
    /// Any switch with in-port restriction + 5-tuple match (§VII-B).
    OpenFlowOrP4,
}

impl HardwareKind {
    /// Human-readable requirement string (Table II row 2).
    pub fn describe(self) -> &'static str {
        match self {
            HardwareKind::OpenFlow => "OpenFlow Switch",
            HardwareKind::OpenFlowPlusOptical => "Switch+OS",
            HardwareKind::P4 => "P4 Switch",
            HardwareKind::OpenFlowOrP4 => "OpenFlow/P4 Switch",
        }
    }
}

/// A purchasable switch model: the unit of Table II's columns.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SwitchModel {
    /// Marketing name.
    pub name: &'static str,
    /// Port count.
    pub ports: u32,
    /// Per-port speed, Gbit/s.
    pub gbps: u32,
    /// Street price, USD.
    pub price_usd: u32,
    /// Flow/match table capacity, entries.
    pub table_capacity: usize,
    /// True for P4 (Tofino-class) silicon.
    pub p4: bool,
}

impl SwitchModel {
    /// 64 x 100G commodity OpenFlow switch (~$5k).
    pub fn openflow_64x100g() -> Self {
        SwitchModel {
            name: "OpenFlow 64x100G",
            ports: 64,
            gbps: 100,
            price_usd: 5_000,
            table_capacity: 4096,
            p4: false,
        }
    }

    /// 128 x 100G commodity OpenFlow switch (~$10k).
    pub fn openflow_128x100g() -> Self {
        SwitchModel {
            name: "OpenFlow 128x100G",
            ports: 128,
            gbps: 100,
            price_usd: 10_000,
            table_capacity: 8192,
            p4: false,
        }
    }

    /// 64 x 100G P4 switch (~$15k) — TurboNet's platform.
    pub fn p4_64x100g() -> Self {
        SwitchModel {
            name: "P4 64x100G",
            ports: 64,
            gbps: 100,
            price_usd: 15_000,
            table_capacity: 16384,
            p4: true,
        }
    }

    /// 128 x 100G P4 switch (~$30k).
    pub fn p4_128x100g() -> Self {
        SwitchModel {
            name: "P4 128x100G",
            ports: 128,
            gbps: 100,
            price_usd: 30_000,
            table_capacity: 32768,
            p4: true,
        }
    }

    /// The paper's SDT cluster switch: H3C S6861-54QF, modeled as 64 x 10G.
    pub fn h3c_64x10g() -> Self {
        SwitchModel {
            name: "H3C S6861 64x10G",
            ports: 64,
            gbps: 10,
            price_usd: 3_000,
            table_capacity: 4096,
            p4: false,
        }
    }
}

/// Cost model of one method over a cluster of `count` switches.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Switch hardware.
    pub switches_usd: u64,
    /// Optical switch hardware (SP-OS only).
    pub optical_usd: u64,
    /// Rough one-time manual cabling effort, person-minutes.
    pub deploy_minutes: u64,
}

impl CostModel {
    /// Total capital expenditure.
    pub fn total_usd(&self) -> u64 {
        self.switches_usd + self.optical_usd
    }

    /// Cost of `count` switches of `model` under `method`, for a topology
    /// needing `cabled_ports` physical cable endpoints.
    pub fn of(method: Method, model: &SwitchModel, count: u32, cabled_ports: u32) -> CostModel {
        let base = if method == Method::Turbonet {
            // TurboNet requires P4 silicon: price the P4 variant of the
            // same radix.
            let p4_price = if model.ports >= 128 {
                SwitchModel::p4_128x100g().price_usd
            } else {
                SwitchModel::p4_64x100g().price_usd
            };
            if model.p4 {
                model.price_usd
            } else {
                p4_price
            }
        } else {
            model.price_usd
        };
        let optical = if method == Method::SpOs {
            // Every cabled port must transit the optical crossbar.
            cabled_ports as u64 * OPTICAL_PORT_USD as u64
        } else {
            0
        };
        // Initial cabling effort: ~1 minute per cable end for SP/SP-OS/SDT;
        // TurboNet's loopbacks are internal.
        let deploy_minutes = match method {
            Method::Turbonet => 10,
            _ => cabled_ports as u64,
        };
        CostModel { switches_usd: base as u64 * count as u64, optical_usd: optical, deploy_minutes }
    }
}

/// Estimated time and effort of one topology reconfiguration.
#[derive(Clone, Copy, Debug)]
pub struct ReconfigEstimate {
    /// Wall-clock time, nanoseconds.
    pub time_ns: u64,
    /// True when a human must touch cables.
    pub manual: bool,
}

impl ReconfigEstimate {
    /// Reconfiguration under `method` when `links_changed` logical links and
    /// `flow_entries` table entries must be (re)installed.
    pub fn of(method: Method, links_changed: usize, flow_entries: usize) -> ReconfigEstimate {
        const SEC: u64 = 1_000_000_000;
        match method {
            // ~1 minute per recabled link plus a verification pass over the
            // whole harness: over an hour for anything non-trivial, and
            // error-prone (§III-C).
            Method::Sp => ReconfigEstimate {
                time_ns: links_changed as u64 * 60 * SEC + 1_200 * SEC,
                manual: true,
            },
            // MEMS switching time ~100 ms, amortized over the whole
            // crossbar, plus flow-table updates for the new sub-switches.
            Method::SpOs => ReconfigEstimate {
                time_ns: 100_000_000 + flow_entries as u64 * 1_000_000,
                manual: false,
            },
            // Recompiling and reloading the P4 pipeline dominates (≥ 10 s).
            Method::Turbonet => ReconfigEstimate {
                time_ns: 10 * SEC + flow_entries as u64 * 1_000_000,
                manual: false,
            },
            // Flow-mod installs + barrier: 100 ms – 1 s for realistic tables.
            Method::Sdt => ReconfigEstimate {
                time_ns: sdt_openflow::InstallTiming::default().install_time_ns(flow_entries),
                manual: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turbonet_halves_bandwidth() {
        assert_eq!(Method::Turbonet.bandwidth_divisor(), 2);
        assert_eq!(Method::Sdt.bandwidth_divisor(), 1);
    }

    #[test]
    fn reconfig_ordering_matches_paper() {
        // 48 links, ~300 flow entries (fat-tree k=4, §VII-C).
        let sp = ReconfigEstimate::of(Method::Sp, 48, 300);
        let spos = ReconfigEstimate::of(Method::SpOs, 48, 300);
        let tn = ReconfigEstimate::of(Method::Turbonet, 48, 300);
        let sdt = ReconfigEstimate::of(Method::Sdt, 48, 300);
        // Table II row 1: SP > 1 hour; TurboNet >= 10 s; SP-OS and SDT in
        // 100 ms – 1 s.
        assert!(sp.time_ns > 3_600 * 1_000_000_000);
        assert!(sp.manual);
        assert!(tn.time_ns >= 10_000_000_000);
        for fast in [spos, sdt] {
            assert!(fast.time_ns >= 100_000_000 && fast.time_ns <= 1_000_000_000);
            assert!(!fast.manual);
        }
    }

    #[test]
    fn cost_ordering_matches_paper() {
        let m = SwitchModel::openflow_128x100g();
        let cabled = 128;
        let sp = CostModel::of(Method::Sp, &m, 1, cabled).total_usd();
        let spos = CostModel::of(Method::SpOs, &m, 1, cabled).total_usd();
        let tn = CostModel::of(Method::Turbonet, &m, 1, cabled).total_usd();
        let sdt = CostModel::of(Method::Sdt, &m, 1, cabled).total_usd();
        // Table II row 3: SDT ($10k) = SP < TurboNet ($30k) < SP-OS ($50k+).
        assert_eq!(sdt, 10_000);
        assert_eq!(sp, sdt);
        assert_eq!(tn, 30_000);
        assert!(spos > 50_000, "spos {spos}");
    }

    #[test]
    fn hardware_strings() {
        assert_eq!(Method::Sdt.hardware().describe(), "OpenFlow/P4 Switch");
        assert_eq!(Method::Turbonet.hardware().describe(), "P4 Switch");
    }
}
