//! Projection feasibility and maximum link speed (the Table II mathematics).
//!
//! The paper's rule (§IV-A): *"A topology can be appropriately built if the
//! total number of ports in the topology is less than or equal to the number
//! of ports on the physical switch (excluding the ports connected to the end
//! hosts)."* So the port demand of a topology is **two switch ports per
//! logical fabric link** — each cable has two ends — and host attachments
//! ride on ports outside this budget (the paper's cluster hangs nodes off
//! separate breakout ports).
//!
//! When the demand exceeds the raw port count, 100G ports channelize into
//! 2 x 50G or 4 x 25G breakouts, trading link speed for port count — that is
//! how Table II's "Link ≤ 50G / ≤ 25G" cells arise. TurboNet additionally
//! halves every link's usable bandwidth (loopback transit), and speeds below
//! 25G are not deployable, which is what knocks its "×" cells out.

use crate::methods::{Method, SwitchModel};
use sdt_topology::Topology;

/// Port demand of a logical topology under Topology Projection: two switch
/// ports per fabric link (host ports excluded, §IV-A).
pub fn port_demand(topo: &Topology) -> u32 {
    2 * topo.num_fabric_links() as u32
}

/// Channelization factors: a port can split into 1, 2, or 4 breakout links.
const FACTORS: [u32; 3] = [1, 2, 4];

/// Slowest deployable link speed, Gbit/s.
const MIN_GBPS: u32 = 25;

/// Outcome of a feasibility query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FeasibilityReport {
    /// Method queried.
    pub method: Method,
    /// Maximum deployable link speed in Gbit/s (`None` = not projectable).
    pub max_gbps: Option<u32>,
    /// Port demand of the topology.
    pub demand: u32,
    /// Raw physical ports available (before channelization).
    pub raw_ports: u32,
}

/// Maximum link speed at which `method` can project `topo` onto `count`
/// switches of `model`, or `None` if it cannot.
pub fn max_link_gbps(
    method: Method,
    topo: &Topology,
    model: &SwitchModel,
    count: u32,
) -> FeasibilityReport {
    let demand = port_demand(topo);
    let raw_ports = model.ports * count;
    let mut max_gbps = None;
    for factor in FACTORS {
        let ports = raw_ports * factor;
        let speed = model.gbps / factor / method.bandwidth_divisor();
        if demand <= ports && speed >= MIN_GBPS {
            max_gbps = Some(speed);
            break; // factors ascend, speeds descend: first hit is fastest
        }
    }
    FeasibilityReport { method, max_gbps, demand, raw_ports }
}

/// Count how many of a corpus of topologies a method can project at all.
pub fn projectable_count(
    method: Method,
    corpus: &[Topology],
    model: &SwitchModel,
    count: u32,
) -> usize {
    corpus
        .iter()
        .filter(|t| max_link_gbps(method, t, model, count).max_gbps.is_some())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdt_topology::dragonfly::dragonfly;
    use sdt_topology::fattree::fat_tree;
    use sdt_topology::meshtorus::torus;

    fn speed(method: Method, topo: &Topology, model: &SwitchModel) -> Option<u32> {
        max_link_gbps(method, topo, model, 1).max_gbps
    }

    /// The Fat-Tree and Dragonfly cells of Table II, single switch per
    /// column — the accounting the paper's §IV-A rule yields exactly.
    #[test]
    fn table2_fattree_cells() {
        let m64 = SwitchModel::openflow_64x100g();
        let m128 = SwitchModel::openflow_128x100g();
        let k4 = fat_tree(4); // demand 64
        let k6 = fat_tree(6); // demand 216
        let k8 = fat_tree(8); // demand 512
        assert_eq!(port_demand(&k4), 64);
        assert_eq!(port_demand(&k6), 216);
        assert_eq!(port_demand(&k8), 512);

        // SDT == SP == SP-OS (same port math).
        for m in [Method::Sdt, Method::Sp, Method::SpOs] {
            assert_eq!(speed(m, &k4, &m64), Some(100));
            assert_eq!(speed(m, &k4, &m128), Some(100));
            assert_eq!(speed(m, &k6, &m64), Some(25));
            assert_eq!(speed(m, &k6, &m128), Some(50));
            assert_eq!(speed(m, &k8, &m64), None);
            assert_eq!(speed(m, &k8, &m128), Some(25));
        }
        // TurboNet: halved speeds, earlier cutoffs.
        assert_eq!(speed(Method::Turbonet, &k4, &m64), Some(50));
        assert_eq!(speed(Method::Turbonet, &k4, &m128), Some(50));
        assert_eq!(speed(Method::Turbonet, &k6, &m64), None);
        assert_eq!(speed(Method::Turbonet, &k6, &m128), Some(25));
        assert_eq!(speed(Method::Turbonet, &k8, &m128), None);
    }

    #[test]
    fn table2_dragonfly_cells() {
        let m64 = SwitchModel::openflow_64x100g();
        let m128 = SwitchModel::openflow_128x100g();
        let df = dragonfly(4, 9, 2, 2); // 90 fabric links -> demand 180
        assert_eq!(port_demand(&df), 180);
        assert_eq!(speed(Method::Sdt, &df, &m64), Some(25));
        assert_eq!(speed(Method::Sdt, &df, &m128), Some(50));
        assert_eq!(speed(Method::Turbonet, &df, &m64), None);
        assert_eq!(speed(Method::Turbonet, &df, &m128), Some(25));
    }

    #[test]
    fn torus_cells_monotone() {
        // Paper's torus accounting is looser than the §IV-A rule; ours is
        // conservative but must stay monotone: bigger tori are never easier.
        let m128 = SwitchModel::openflow_128x100g();
        let t4 = torus(&[4, 4, 4]);
        let t5 = torus(&[5, 5, 5]);
        let t6 = torus(&[6, 6, 6]);
        let s4 = speed(Method::Sdt, &t4, &m128);
        let s5 = speed(Method::Sdt, &t5, &m128);
        let s6 = speed(Method::Sdt, &t6, &m128);
        assert!(s4.unwrap_or(0) >= s5.unwrap_or(0));
        assert!(s5.unwrap_or(0) >= s6.unwrap_or(0));
        // More switches strictly help.
        let more = max_link_gbps(Method::Sdt, &t4, &m128, 4).max_gbps;
        assert!(more.unwrap_or(0) >= s4.unwrap_or(0));
    }

    #[test]
    fn turbonet_never_beats_sdt() {
        let m64 = SwitchModel::openflow_64x100g();
        for topo in [fat_tree(4), fat_tree(6), dragonfly(4, 9, 2, 2), torus(&[4, 4])] {
            for count in [1u32, 2, 4] {
                let sdt = max_link_gbps(Method::Sdt, &topo, &m64, count).max_gbps.unwrap_or(0);
                let tn =
                    max_link_gbps(Method::Turbonet, &topo, &m64, count).max_gbps.unwrap_or(0);
                assert!(tn <= sdt, "{}: turbonet {tn} > sdt {sdt}", topo.name());
            }
        }
    }
}
