//! Qualitative comparison of network evaluation tools (Table I).
//!
//! The paper's Table I grades simulators, emulators, full testbeds, and SDT
//! on five axes. The grades here are derived from the quantitative models in
//! this workspace where possible (price from [`crate::methods::CostModel`],
//! (re)configuration from [`crate::methods::ReconfigEstimate`]), and encode
//! the paper's qualitative judgment elsewhere.

use std::fmt;

/// A three-level grade, as used by Table I.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Grade {
    /// Low / easy / cheap.
    Low,
    /// Medium.
    Medium,
    /// High / hard / expensive.
    High,
}

impl fmt::Display for Grade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Grade::Low => "Low",
            Grade::Medium => "Medium",
            Grade::High => "High",
        })
    }
}

/// Ease grades for (re)configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ease {
    /// Easy.
    Easy,
    /// Medium.
    Medium,
    /// Hard.
    Hard,
}

impl fmt::Display for Ease {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Ease::Easy => "Easy",
            Ease::Medium => "Medium",
            Ease::Hard => "Hard",
        })
    }
}

/// One column of Table I.
#[derive(Clone, Copy, Debug)]
pub struct ToolProfile {
    /// Tool family name.
    pub name: &'static str,
    /// Hardware + licensing price.
    pub price: Grade,
    /// Operator effort.
    pub manpower: Grade,
    /// Topology (re)configuration difficulty.
    pub reconfiguration: Ease,
    /// Evaluation scalability (nodes, bandwidth).
    pub scalability: Grade,
    /// Wall-clock efficiency of one evaluation.
    pub efficiency: Grade,
}

/// The four columns of Table I.
pub fn table1() -> [ToolProfile; 4] {
    [
        ToolProfile {
            name: "Simulator",
            price: Grade::Low,
            manpower: Grade::Low,
            reconfiguration: Ease::Easy,
            scalability: Grade::Low,
            efficiency: Grade::Low,
        },
        ToolProfile {
            name: "Emulator",
            price: Grade::Medium,
            manpower: Grade::Low,
            reconfiguration: Ease::Medium,
            scalability: Grade::Medium,
            efficiency: Grade::Medium,
        },
        ToolProfile {
            name: "Testbed",
            price: Grade::High,
            manpower: Grade::High,
            reconfiguration: Ease::Hard,
            scalability: Grade::High,
            efficiency: Grade::High,
        },
        ToolProfile {
            name: "SDT",
            price: Grade::Medium,
            manpower: Grade::Low,
            reconfiguration: Ease::Easy,
            scalability: Grade::High,
            efficiency: Grade::High,
        },
    ]
}

/// Render Table I as aligned text rows (used by the `table1` bench binary).
pub fn render_table1() -> String {
    let cols = table1();
    let mut s = String::new();
    s.push_str(&format!(
        "{:<18}{:<12}{:<12}{:<12}{:<12}\n",
        "", cols[0].name, cols[1].name, cols[2].name, cols[3].name
    ));
    let row = |label: &str, cells: [String; 4]| {
        format!("{:<18}{:<12}{:<12}{:<12}{:<12}\n", label, cells[0], cells[1], cells[2], cells[3])
    };
    s.push_str(&row("Price", cols.map(|c| c.price.to_string())));
    s.push_str(&row("Manpower", cols.map(|c| c.manpower.to_string())));
    s.push_str(&row("(Re)configuration", cols.map(|c| c.reconfiguration.to_string())));
    s.push_str(&row("Scalability", cols.map(|c| c.scalability.to_string())));
    s.push_str(&row("Efficiency", cols.map(|c| c.efficiency.to_string())));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdt_dominates_where_the_paper_says() {
        let [sim, _emu, testbed, sdt] = table1();
        // SDT: testbed-grade scalability/efficiency at sub-testbed price.
        assert_eq!(sdt.scalability, testbed.scalability);
        assert_eq!(sdt.efficiency, testbed.efficiency);
        assert!(sdt.price < testbed.price);
        assert_eq!(sdt.reconfiguration, sim.reconfiguration);
        assert!(sdt.manpower < testbed.manpower);
    }

    #[test]
    fn render_contains_all_rows() {
        let s = render_table1();
        for label in ["Price", "Manpower", "(Re)configuration", "Scalability", "Efficiency"] {
            assert!(s.contains(label));
        }
        assert_eq!(s.lines().count(), 6);
    }
}
