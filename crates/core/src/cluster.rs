//! The physical SDT cluster: switches, fixed cabling, host ports.
//!
//! A cluster's cabling is decided **once**, at deployment time (§IV-B):
//!
//! * *self-links* loop two ports of the same switch (the paper wires upper
//!   and lower adjacent ports for simplicity — footnote 2);
//! * *inter-switch links* join two different switches and carry the logical
//!   links that cross a partition cut;
//! * *host ports* attach compute nodes.
//!
//! After that, every topology (re)configuration touches only flow tables.

use crate::methods::SwitchModel;
use sdt_openflow::PortNo;
use serde::{Deserialize, Serialize};

/// A specific port of a specific physical switch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct PhysPort {
    /// Physical switch index in the cluster.
    pub switch: u32,
    /// Port on that switch.
    pub port: PortNo,
}

/// Kind of a physical cable.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PhysLinkKind {
    /// Both ends on the same switch.
    SelfLink,
    /// Ends on two different switches.
    InterSwitch,
}

/// A physical cable between two ports.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PhysLink {
    /// Cable kind (derived from endpoints, stored for convenience).
    pub kind: PhysLinkKind,
    /// One end.
    pub a: PhysPort,
    /// Other end.
    pub b: PhysPort,
}

impl PhysLink {
    /// The opposite end of the cable. Panics if `p` is not an endpoint.
    pub fn other(&self, p: PhysPort) -> PhysPort {
        if self.a == p {
            self.b
        } else if self.b == p {
            self.a
        } else {
            panic!("port {p:?} not on this cable")
        }
    }
}

/// An immutable physical cluster: the hardware SDT projects onto.
#[derive(Clone, Debug)]
pub struct PhysicalCluster {
    model: SwitchModel,
    num_switches: u32,
    links: Vec<PhysLink>,
    host_ports: Vec<PhysPort>,
    /// port -> index into `links` (or u32::MAX for host/unused ports).
    port_link: Vec<Vec<u32>>,
    /// port -> true if reserved for a host.
    is_host_port: Vec<Vec<bool>>,
}

impl PhysicalCluster {
    /// Build a cluster from an explicit wiring (used by the §VII-A
    /// optical-flexibility extension, which computes its own cabling).
    ///
    /// # Panics
    /// If any port is used twice, out of range, or listed both as a host
    /// port and a cable end.
    pub fn custom(
        model: SwitchModel,
        num_switches: u32,
        cables: Vec<(PhysPort, PhysPort)>,
        host_ports: Vec<PhysPort>,
    ) -> PhysicalCluster {
        let p = model.ports as usize;
        let mut port_link = vec![vec![u32::MAX; p]; num_switches as usize];
        let mut is_host = vec![vec![false; p]; num_switches as usize];
        let mut used = std::collections::HashSet::new();
        let mut claim = |pp: PhysPort| {
            assert!(pp.switch < num_switches && pp.port.idx() < p, "port {pp:?} out of range");
            assert!(used.insert(pp), "port {pp:?} used twice");
        };
        for &hp in &host_ports {
            claim(hp);
            is_host[hp.switch as usize][hp.port.idx()] = true;
        }
        let mut links = Vec::with_capacity(cables.len());
        for (a, b) in cables {
            claim(a);
            claim(b);
            let kind = if a.switch == b.switch {
                PhysLinkKind::SelfLink
            } else {
                PhysLinkKind::InterSwitch
            };
            let idx = links.len() as u32;
            links.push(PhysLink { kind, a, b });
            port_link[a.switch as usize][a.port.idx()] = idx;
            port_link[b.switch as usize][b.port.idx()] = idx;
        }
        PhysicalCluster {
            model,
            num_switches,
            links,
            host_ports,
            port_link,
            is_host_port: is_host,
        }
    }

    /// Number of physical switches.
    pub fn num_switches(&self) -> u32 {
        self.num_switches
    }

    /// Switch model common to the cluster.
    pub fn model(&self) -> &SwitchModel {
        &self.model
    }

    /// All cables.
    pub fn links(&self) -> &[PhysLink] {
        &self.links
    }

    /// Self-links of one switch.
    pub fn self_links_of(&self, switch: u32) -> impl Iterator<Item = &PhysLink> {
        self.links
            .iter()
            .filter(move |l| l.kind == PhysLinkKind::SelfLink && l.a.switch == switch)
    }

    /// Inter-switch links between an unordered pair of switches.
    pub fn inter_links_between(&self, x: u32, y: u32) -> impl Iterator<Item = &PhysLink> {
        self.links.iter().filter(move |l| {
            l.kind == PhysLinkKind::InterSwitch
                && ((l.a.switch == x && l.b.switch == y) || (l.a.switch == y && l.b.switch == x))
        })
    }

    /// Ports reserved for hosts.
    pub fn host_ports(&self) -> &[PhysPort] {
        &self.host_ports
    }

    /// Host ports on one switch.
    pub fn host_ports_of(&self, switch: u32) -> impl Iterator<Item = &PhysPort> {
        self.host_ports.iter().filter(move |p| p.switch == switch)
    }

    /// The cable attached to a port, if any.
    pub fn link_at(&self, p: PhysPort) -> Option<&PhysLink> {
        let idx = self.port_link[p.switch as usize][p.port.idx()];
        (idx != u32::MAX).then(|| &self.links[idx as usize])
    }

    /// Is this port reserved for a host?
    pub fn is_host_port(&self, p: PhysPort) -> bool {
        self.is_host_port[p.switch as usize][p.port.idx()]
    }

    /// Total hardware price of the cluster (switches only).
    pub fn price_usd(&self) -> u64 {
        self.model.price_usd as u64 * self.num_switches as u64
    }
}

/// Builder for [`PhysicalCluster`] wiring plans.
///
/// Port layout per switch: host ports first, then inter-switch ports (one
/// block per peer switch), then the remainder paired up as self-links.
/// Odd leftover ports stay unused.
#[derive(Clone, Debug)]
pub struct ClusterBuilder {
    model: SwitchModel,
    num_switches: u32,
    hosts_per_switch: u16,
    inter_per_pair: u16,
}

impl ClusterBuilder {
    /// Start a plan over `num_switches` switches of the given model.
    pub fn new(model: SwitchModel, num_switches: u32) -> Self {
        assert!(num_switches >= 1);
        ClusterBuilder { model, num_switches, hosts_per_switch: 0, inter_per_pair: 0 }
    }

    /// Reserve the first `n` ports of every switch for hosts.
    pub fn hosts_per_switch(mut self, n: u16) -> Self {
        self.hosts_per_switch = n;
        self
    }

    /// Wire `n` inter-switch cables between every pair of switches.
    pub fn inter_links_per_pair(mut self, n: u16) -> Self {
        self.inter_per_pair = n;
        self
    }

    /// Materialize the wiring plan.
    ///
    /// # Panics
    /// If the reserved host and inter-switch ports exceed the switch's port
    /// count.
    pub fn build(self) -> PhysicalCluster {
        let p = self.model.ports as u16;
        let n = self.num_switches;
        let peers = (n - 1) as u16;
        let reserved = self.hosts_per_switch + self.inter_per_pair * peers;
        assert!(
            reserved <= p,
            "reserved ports ({reserved}) exceed switch ports ({p})"
        );

        let mut links = Vec::new();
        let mut host_ports = Vec::new();
        let mut port_link = vec![vec![u32::MAX; p as usize]; n as usize];
        let mut is_host = vec![vec![false; p as usize]; n as usize];

        for s in 0..n {
            for i in 0..self.hosts_per_switch {
                let pp = PhysPort { switch: s, port: PortNo(i) };
                host_ports.push(pp);
                is_host[s as usize][i as usize] = true;
            }
        }

        // Inter-switch blocks: on switch s, the block for peer t (t != s)
        // occupies ports [hosts + block_index*inter .. ). Each unordered pair
        // is cabled once, port i of the block on both sides.
        for s in 0..n {
            for t in (s + 1)..n {
                // Block index of t on s: peers are numbered skipping self.
                let bi_on_s = (if t > s { t - 1 } else { t }) as u16;
                let bi_on_t = (if s > t { s - 1 } else { s }) as u16;
                for i in 0..self.inter_per_pair {
                    let pa = PhysPort {
                        switch: s,
                        port: PortNo(self.hosts_per_switch + bi_on_s * self.inter_per_pair + i),
                    };
                    let pb = PhysPort {
                        switch: t,
                        port: PortNo(self.hosts_per_switch + bi_on_t * self.inter_per_pair + i),
                    };
                    let idx = links.len() as u32;
                    links.push(PhysLink { kind: PhysLinkKind::InterSwitch, a: pa, b: pb });
                    port_link[pa.switch as usize][pa.port.idx()] = idx;
                    port_link[pb.switch as usize][pb.port.idx()] = idx;
                }
            }
        }

        // Remaining ports pair up as self-links (adjacent ports, footnote 2).
        for s in 0..n {
            let first_free = self.hosts_per_switch + self.inter_per_pair * peers;
            let mut q = first_free;
            while q + 1 < p {
                let pa = PhysPort { switch: s, port: PortNo(q) };
                let pb = PhysPort { switch: s, port: PortNo(q + 1) };
                let idx = links.len() as u32;
                links.push(PhysLink { kind: PhysLinkKind::SelfLink, a: pa, b: pb });
                port_link[s as usize][pa.port.idx()] = idx;
                port_link[s as usize][pb.port.idx()] = idx;
                q += 2;
            }
        }

        PhysicalCluster {
            model: self.model,
            num_switches: n,
            links,
            host_ports,
            port_link,
            is_host_port: is_host,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::SwitchModel;

    fn model64() -> SwitchModel {
        SwitchModel::openflow_64x100g()
    }

    #[test]
    fn single_switch_all_self_links() {
        let c = ClusterBuilder::new(model64(), 1).hosts_per_switch(8).build();
        assert_eq!(c.num_switches(), 1);
        assert_eq!(c.host_ports().len(), 8);
        // (64 - 8) / 2 = 28 self-links.
        assert_eq!(c.self_links_of(0).count(), 28);
        assert_eq!(c.links().len(), 28);
    }

    #[test]
    fn two_switches_with_inter_links() {
        let c = ClusterBuilder::new(model64(), 2)
            .hosts_per_switch(8)
            .inter_links_per_pair(8)
            .build();
        assert_eq!(c.inter_links_between(0, 1).count(), 8);
        // Per switch: 64 - 8 hosts - 8 inter = 48 -> 24 self-links.
        assert_eq!(c.self_links_of(0).count(), 24);
        assert_eq!(c.self_links_of(1).count(), 24);
    }

    #[test]
    fn inter_link_ports_are_consistent() {
        let c = ClusterBuilder::new(model64(), 3).inter_links_per_pair(4).build();
        for l in c.links().iter().filter(|l| l.kind == PhysLinkKind::InterSwitch) {
            assert_ne!(l.a.switch, l.b.switch);
            // Port lookup returns the same cable from both ends.
            assert_eq!(c.link_at(l.a).unwrap(), l);
            assert_eq!(c.link_at(l.b).unwrap(), l);
            assert_eq!(l.other(l.a), l.b);
        }
        assert_eq!(c.inter_links_between(0, 2).count(), 4);
        assert_eq!(c.inter_links_between(1, 2).count(), 4);
    }

    #[test]
    fn host_ports_carry_no_cables() {
        let c = ClusterBuilder::new(model64(), 1).hosts_per_switch(4).build();
        for &hp in c.host_ports() {
            assert!(c.is_host_port(hp));
            assert!(c.link_at(hp).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "reserved ports")]
    fn over_reservation_panics() {
        ClusterBuilder::new(model64(), 2)
            .hosts_per_switch(60)
            .inter_links_per_pair(10)
            .build();
    }

    #[test]
    fn custom_wiring_roundtrip() {
        let m = model64();
        let hp = PhysPort { switch: 0, port: PortNo(0) };
        let a = PhysPort { switch: 0, port: PortNo(1) };
        let b = PhysPort { switch: 1, port: PortNo(1) };
        let c = PhysPort { switch: 1, port: PortNo(2) };
        let d = PhysPort { switch: 1, port: PortNo(3) };
        let cl = PhysicalCluster::custom(m, 2, vec![(a, b), (c, d)], vec![hp]);
        assert_eq!(cl.inter_links_between(0, 1).count(), 1);
        assert_eq!(cl.self_links_of(1).count(), 1);
        assert!(cl.is_host_port(hp));
        assert_eq!(cl.link_at(a).unwrap().other(a), b);
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn custom_wiring_rejects_port_reuse() {
        let m = model64();
        let a = PhysPort { switch: 0, port: PortNo(1) };
        let b = PhysPort { switch: 0, port: PortNo(2) };
        PhysicalCluster::custom(m, 1, vec![(a, b), (a, b)], vec![]);
    }

    #[test]
    fn price_scales_with_count() {
        let one = ClusterBuilder::new(model64(), 1).build().price_usd();
        let three = ClusterBuilder::new(model64(), 3).build().price_usd();
        assert_eq!(three, 3 * one);
    }
}
