//! The static analyses: forwarding-graph loop scan, per-pair reachability
//! closure, dead/nondeterministic-rule warnings, and the VeriFlow-style
//! incremental delta check.
//!
//! # Parallel, deterministic
//!
//! The three passes are embarrassingly parallel — warnings per switch,
//! loop scans per header class, reachability walks per source host — and
//! each is fanned out over [`sdt_par::par_map_threads`] with results merged
//! back in canonical order (switch id / class enumeration order / intent
//! host order). Workers share only immutable state, so any worker count
//! produces byte-identical findings; `SDT_VERIFY_THREADS` (see
//! [`crate::verify_threads`]) only changes wall-clock time.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use sdt_core::cluster::{PhysPort, PhysicalCluster};
use sdt_openflow::{
    shadowed_entries_in, table_warnings_indexed, Action, EntryIndex, FlowEntry, FlowMod,
    HostAddr, MatchUniverse, PortNo, ShadowedEntry, TableFp,
};
use sdt_topology::HostId;

use crate::fast::{
    cluster_fingerprint, mask_of, no_switches, DestinyMemo, FateOut, FateTable, VerifyStats,
    WalkCache,
};
use crate::model::{entry_matches, HeaderClass, HeaderValues, Intent, TableView};

/// A named rule: enough to point an operator at the exact `FlowEntry` in
/// the exact table that causes a finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleRef {
    /// Physical switch.
    pub switch: u32,
    /// Pipeline table (0 = classify, 1 = route).
    pub table: u8,
    /// The installed entry.
    pub entry: FlowEntry,
}

impl std::fmt::Display for RuleRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "switch {} table {} prio {} {:?} -> {:?}",
            self.switch, self.table, self.entry.priority, self.entry.m, self.entry.action
        )
    }
}

/// Why a match space dead-ends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// No entry matched (table miss — drop in OpenFlow-with-no-miss-rule).
    Miss {
        /// Switch where the miss occurs.
        switch: u32,
        /// Table that missed.
        table: u8,
    },
    /// An explicit drop rule fired.
    Rule(RuleRef),
    /// Output to a port with no cable and no host behind it.
    Unwired(PhysPort),
    /// Output to a host port no intent host is attached to.
    UnownedHostPort(PhysPort),
    /// A table-1 rule tried to continue the pipeline (goto past the last
    /// table is a drop).
    BadGoto(RuleRef),
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DropReason::Miss { switch, table } => {
                write!(f, "table miss at switch {switch} table {table}")
            }
            DropReason::Rule(r) => write!(f, "drop rule [{r}]"),
            DropReason::Unwired(p) => {
                write!(f, "output to unwired port {} on switch {}", p.port.0, p.switch)
            }
            DropReason::UnownedHostPort(p) => {
                write!(f, "output to unassigned host port {} on switch {}", p.port.0, p.switch)
            }
            DropReason::BadGoto(r) => write!(f, "goto past last table [{r}]"),
        }
    }
}

/// A forwarding cycle: following the installed rules, a packet of this
/// header class re-enters a port it already entered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopFinding {
    /// The ingress ports on the cycle, in traversal order.
    pub ports: Vec<PhysPort>,
    /// The rule chain that forms the cycle (classify + route rules at each
    /// hop).
    pub rules: Vec<RuleRef>,
    /// Header class exhibiting the loop.
    pub class: HeaderClass,
}

impl std::fmt::Display for LoopFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let path: Vec<String> =
            self.ports.iter().map(|p| format!("sw{}:p{}", p.switch, p.port.0)).collect();
        write!(f, "forwarding loop {} via {} rule(s)", path.join(" -> "), self.rules.len())?;
        for r in &self.rules {
            write!(f, "; [{r}]")?;
        }
        Ok(())
    }
}

/// A host pair the intent expects to communicate whose match space
/// dead-ends instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlackholeFinding {
    /// Domain of both hosts.
    pub domain: String,
    /// Sending host.
    pub src: HostId,
    /// Intended destination host.
    pub dst: HostId,
    /// Why the packets die.
    pub reason: DropReason,
}

impl std::fmt::Display for BlackholeFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "blackhole: {} host {} -> host {} dies at {}",
            self.domain, self.src.0, self.dst.0, self.reason
        )
    }
}

/// A delivery the intent forbids: traffic from one domain reaching a host
/// port it must not reach (cross-slice leak, or misdelivery to the wrong
/// host), with the rule that performed the final output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeakFinding {
    /// Sending domain.
    pub from_domain: String,
    /// Sending host.
    pub src: HostId,
    /// Domain owning the port the packet arrived at.
    pub to_domain: String,
    /// Host that (wrongly) receives the traffic.
    pub to_host: HostId,
    /// The destination address the packet carried.
    pub dst_addr: sdt_openflow::HostAddr,
    /// Host port the packet egressed on.
    pub port: PhysPort,
    /// The rule that output the packet onto the host port.
    pub via: RuleRef,
}

impl std::fmt::Display for LeakFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "leak: {} host {} reaches {} host {} (dst addr {}) on switch {} port {} via [{}]",
            self.from_domain,
            self.src.0,
            self.to_domain,
            self.to_host.0,
            self.dst_addr.0,
            self.port.switch,
            self.port.port.0,
            self.via
        )
    }
}

/// A rule that can never fire: its whole match space is covered by earlier
/// higher- or equal-priority rules (singly or as a union), or it tests
/// pipeline state the earlier tables never produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShadowFinding {
    /// Switch holding the dead rule.
    pub switch: u32,
    /// Table holding the dead rule.
    pub table: u8,
    /// The dead rule and the rules covering it (empty for unreachable
    /// pipeline state, e.g. a table-0 rule matching on metadata).
    pub shadowed: ShadowedEntry,
}

impl std::fmt::Display for ShadowFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dead rule at switch {} table {}: prio {} {:?} covered by {} rule(s)",
            self.switch,
            self.table,
            self.shadowed.entry.priority,
            self.shadowed.entry.m,
            self.shadowed.covered_by.len()
        )
    }
}

/// Two equal-priority rules with overlapping but non-identical matches:
/// which one fires depends on installation order. Deterministic in this
/// model (first match wins), but OpenFlow leaves it switch-defined, so the
/// verifier flags it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NondetFinding {
    /// Switch holding the pair.
    pub switch: u32,
    /// Table holding the pair.
    pub table: u8,
    /// The earlier-installed rule (the one that wins here).
    pub first: FlowEntry,
    /// The later-installed overlapping rule.
    pub second: FlowEntry,
}

impl std::fmt::Display for NondetFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "order-dependent match at switch {} table {}: prio {} {:?} overlaps {:?}",
            self.switch, self.table, self.first.priority, self.first.m, self.second.m
        )
    }
}

/// The complete verdict of a static verification pass.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Forwarding cycles (any header class).
    pub loops: Vec<LoopFinding>,
    /// Intended pairs whose traffic dead-ends.
    pub blackholes: Vec<BlackholeFinding>,
    /// Forbidden deliveries, each naming the offending rule.
    pub leaks: Vec<LeakFinding>,
    /// Dead rules (diagnostic — does not fail [`VerifyReport::holds`]).
    pub shadowed: Vec<ShadowFinding>,
    /// Order-dependent equal-priority overlaps (diagnostic).
    pub nondeterminism: Vec<NondetFinding>,
    /// Ordered host pairs proven to deliver as intended.
    pub delivered_pairs: usize,
    /// Ordered host pairs proven isolated as intended.
    pub isolated_pairs: usize,
    /// Ordered host pairs whose traffic cycles forever.
    pub looped_pairs: usize,
    /// Total ordered pairs covered by the verdict.
    pub pairs_checked: usize,
    /// Pairs actually re-walked (smaller than `pairs_checked` after an
    /// incremental check; the rest were proven unaffected by the delta).
    pub pairs_walked: usize,
    /// Switches whose tables were (re-)scanned for rule-level warnings.
    pub switches_scanned: usize,
    /// Size of the header-equivalence-class partition the analyses covered
    /// (`HeaderValues::num_classes`).
    pub header_classes: usize,
}

impl VerifyReport {
    /// Does the data plane satisfy its intent: no loops, no blackholes, no
    /// leaks? (Shadow/nondeterminism findings are warnings, not failures.)
    pub fn holds(&self) -> bool {
        self.loops.is_empty()
            && self.blackholes.is_empty()
            && self.leaks.is_empty()
            && self.looped_pairs == 0
    }

    /// One-line verdict plus the first finding of each failing class.
    pub fn summary(&self) -> String {
        if self.holds() {
            return format!(
                "verified: {} pairs delivered, {} isolated, no loops/blackholes/leaks",
                self.delivered_pairs, self.isolated_pairs
            );
        }
        let mut parts = vec![format!(
            "violations: {} loop(s), {} blackhole(s), {} leak(s)",
            self.loops.len(),
            self.blackholes.len(),
            self.leaks.len()
        )];
        if let Some(l) = self.loops.first() {
            parts.push(l.to_string());
        }
        if let Some(b) = self.blackholes.first() {
            parts.push(b.to_string());
        }
        if let Some(l) = self.leaks.first() {
            parts.push(l.to_string());
        }
        parts.join("; ")
    }
}

/// One symbolic forwarding step: what happens to a packet of a given header
/// class entering a switch at a given port.
enum Step {
    /// Egresses on a host port.
    Deliver { port: PhysPort, via: RuleRef },
    /// Egresses on a cable; continues at the far end.
    Next { to: PhysPort, rules: Vec<RuleRef> },
    /// Dies.
    Dead { at: u32, reason: DropReason },
}

/// Per-(switch, table) tier indexes over a [`TableView`], built once per
/// verification pass so every symbolic step costs O(tiers) instead of a
/// linear scan over the table (same [`sdt_openflow::EntryIndex`] machinery
/// the live [`sdt_openflow::FlowTable`] uses).
/// Indexes are Arc-shared per switch so an incremental check clones the
/// untouched switches' indexes by reference instead of rebuilding them.
fn view_indexes(view: &TableView) -> Vec<Arc<[EntryIndex; 2]>> {
    (0..view.num_switches() as u32)
        .map(|sw| {
            Arc::new([EntryIndex::build(view.entries(sw, 0)), EntryIndex::build(view.entries(sw, 1))])
        })
        .collect()
}

/// Indexes for a delta view: rebuild touched switches, share the rest.
fn delta_indexes(
    prev: &[Arc<[EntryIndex; 2]>],
    view: &TableView,
    touched: &BTreeSet<u32>,
) -> Vec<Arc<[EntryIndex; 2]>> {
    (0..view.num_switches() as u32)
        .map(|sw| {
            if touched.contains(&sw) || prev.get(sw as usize).is_none() {
                Arc::new([
                    EntryIndex::build(view.entries(sw, 0)),
                    EntryIndex::build(view.entries(sw, 1)),
                ])
            } else {
                prev[sw as usize].clone()
            }
        })
        .collect()
}

/// Evaluate the two-table pipeline of `at.switch` for a packet entering on
/// `at.port`, symbolically (first matching entry wins; no counters touched).
/// The tier index prunes candidates; `entry_matches` keeps the final say,
/// so the firing entry is exactly the linear scan's first match.
fn step(
    indexes: &[Arc<[EntryIndex; 2]>],
    cluster: &PhysicalCluster,
    at: PhysPort,
    class: &HeaderClass,
) -> Step {
    let sw = at.switch;
    let idx = &indexes[sw as usize];
    let Some(&e0) =
        idx[0].first_match_where(at.port, None, class.dst, |e| entry_matches(e, at.port, None, class))
    else {
        return Step::Dead { at: sw, reason: DropReason::Miss { switch: sw, table: 0 } };
    };
    let r0 = RuleRef { switch: sw, table: 0, entry: e0 };
    let md = match e0.action {
        Action::Drop => return Step::Dead { at: sw, reason: DropReason::Rule(r0) },
        Action::Output(p) => return egress(cluster, PhysPort { switch: sw, port: p }, vec![r0]),
        Action::WriteMetadataGoto(md) => md,
    };
    let Some(&e1) = idx[1]
        .first_match_where(at.port, Some(md), class.dst, |e| entry_matches(e, at.port, Some(md), class))
    else {
        return Step::Dead { at: sw, reason: DropReason::Miss { switch: sw, table: 1 } };
    };
    let r1 = RuleRef { switch: sw, table: 1, entry: e1 };
    match e1.action {
        Action::Drop => Step::Dead { at: sw, reason: DropReason::Rule(r1) },
        Action::WriteMetadataGoto(_) => {
            Step::Dead { at: sw, reason: DropReason::BadGoto(r1) }
        }
        Action::Output(p) => egress(cluster, PhysPort { switch: sw, port: p }, vec![r0, r1]),
    }
}

/// Resolve a physical egress port: host port, cable, or nothing.
fn egress(cluster: &PhysicalCluster, port: PhysPort, rules: Vec<RuleRef>) -> Step {
    if cluster.is_host_port(port) {
        let via = rules.last().cloned().unwrap_or_else(|| unreachable!("egress needs a rule"));
        return Step::Deliver { port, via };
    }
    match cluster.link_at(port) {
        Some(link) => Step::Next { to: link.other(port), rules },
        None => Step::Dead { at: port.switch, reason: DropReason::Unwired(port) },
    }
}

/// How one ordered intent pair fares, plus the switches its packets cross —
/// the key to incremental re-checking (a pair whose path avoids every
/// switch touched by a delta cannot change behaviour).
///
/// The switch set is split in two Arc-shared parts so the symmetry-collapse
/// path can assemble a trace without materializing a set per pair: `pre`
/// (the class-independent approach, shared per ingress port) and `post`
/// (the destiny's crossing set, shared per pipeline state). The set of
/// switches crossed is `pre ∪ post`; `mask` is its bloom mask (see
/// [`mask_of`]).
///
/// Traces carry no addresses: the pair a trace belongs to is implied by its
/// position in the src-major/dst-minor trace vector, and the whole trace is
/// `Arc`-shared so replaying a verdict to a million pairs moves pointers,
/// not sets.
#[derive(Clone, Debug)]
struct PairTrace {
    outcome: PairOutcome,
    pre: Arc<BTreeSet<u32>>,
    post: Arc<BTreeSet<u32>>,
    mask: u64,
}

impl PairTrace {
    /// Does the traced path avoid every switch in `touched`? (`tmask` is
    /// `touched`'s bloom mask.) Disjoint blooms prove avoidance — this
    /// covers the empty delta outright — and only an aliased overlap pays
    /// for the exact set check.
    fn avoids(&self, touched: &BTreeSet<u32>, tmask: u64) -> bool {
        if self.mask & tmask == 0 {
            return true;
        }
        self.pre.is_disjoint(touched) && self.post.is_disjoint(touched)
    }
}

/// The verdict of one ordered pair's walk.
#[derive(Clone, Debug)]
pub(crate) enum PairOutcome {
    /// Egressed on a host port.
    Delivered {
        /// The host port.
        port: PhysPort,
        /// Rule performing the final output.
        via: RuleRef,
    },
    /// Died in a drop rule, a miss, or a bad port.
    Dropped {
        /// Where and why.
        reason: DropReason,
    },
    /// Never terminates (forwarding cycle).
    Looped,
}

/// Per-switch rule-level warnings, cached so a delta check only rescans the
/// switches the delta touches.
#[derive(Clone, Debug, Default)]
pub(crate) struct SwitchWarnings {
    pub(crate) shadowed: Vec<ShadowFinding>,
    pub(crate) nondet: Vec<NondetFinding>,
}

/// The static verifier: proves loop-freedom, blackhole-freedom and
/// isolation of a table snapshot against an [`Intent`], and re-proves them
/// incrementally for a pending flow-mod batch without touching live tables.
#[derive(Clone, Debug)]
pub struct Verifier {
    cluster: PhysicalCluster,
    view: TableView,
    intent: Intent,
    values: HeaderValues,
    indexes: Vec<Arc<[EntryIndex; 2]>>,
    traces: Arc<Vec<Arc<PairTrace>>>,
    loops: Vec<LoopFinding>,
    warnings: Vec<SwitchWarnings>,
    report: VerifyReport,
    stats: VerifyStats,
}

impl Verifier {
    /// Fully verify a table snapshot against an intent, on
    /// [`crate::verify_threads`] workers.
    pub fn check(cluster: &PhysicalCluster, view: TableView, intent: Intent) -> Verifier {
        Self::check_threads(cluster, view, intent, crate::verify_threads())
    }

    /// [`Verifier::check`] with an explicit worker count (1 = fully
    /// sequential). The report is byte-identical for every worker count.
    pub fn check_threads(
        cluster: &PhysicalCluster,
        view: TableView,
        intent: Intent,
        threads: usize,
    ) -> Verifier {
        Self::check_impl(cluster, view, intent, threads, &mut None, false)
    }

    /// [`Verifier::check_threads`] with a persistent [`WalkCache`]: walk
    /// destinies and warning scans proven in earlier passes are replayed
    /// when their table fingerprints still match, and fresh results are
    /// merged back for the next pass. The report is byte-identical to an
    /// uncached check — the cache changes wall-clock only.
    pub fn check_cached(
        cluster: &PhysicalCluster,
        view: TableView,
        intent: Intent,
        threads: usize,
        cache: &mut WalkCache,
    ) -> Verifier {
        let mut slot = Some(std::mem::take(cache));
        let v = Self::check_impl(cluster, view, intent, threads, &mut slot, false);
        if let Some(c) = slot {
            *cache = c;
        }
        v
    }

    /// The reference (unoptimized) verifier: no symmetry collapse, no
    /// memoization — every pair budget-walked, every switch linearly
    /// scanned. Exists so the differential tests can prove the fast path
    /// byte-identical; not intended for production callers.
    pub fn check_plain_threads(
        cluster: &PhysicalCluster,
        view: TableView,
        intent: Intent,
        threads: usize,
    ) -> Verifier {
        Self::check_impl(cluster, view, intent, threads, &mut None, true)
    }

    fn check_impl(
        cluster: &PhysicalCluster,
        view: TableView,
        intent: Intent,
        threads: usize,
        cache: &mut Option<WalkCache>,
        plain: bool,
    ) -> Verifier {
        let values = HeaderValues::collect(&view);
        let indexes = view_indexes(&view);
        let mut v = Verifier {
            cluster: cluster.clone(),
            view,
            intent,
            values,
            indexes,
            traces: Arc::new(Vec::new()),
            loops: Vec::new(),
            warnings: Vec::new(),
            report: VerifyReport::default(),
            stats: VerifyStats::default(),
        };
        if let Some(c) = cache.as_mut() {
            c.ensure_cluster(cluster_fingerprint(cluster));
        }
        if plain {
            v.scan_warnings(None, threads);
            v.scan_loops(None, threads);
            let walked = v.walk_pairs(None, None, threads);
            v.finalize(v.view.num_switches(), walked);
            return v;
        }
        v.scan_warnings_fast(None, threads, cache);
        let fates = FateTable::build(&v.cluster, &v.view, &v.indexes);
        v.stats.symmetric = fates.ok;
        if fates.ok {
            let walked = v.walk_pairs_fast(&fates, None, None, threads, cache);
            v.finalize(v.view.num_switches(), walked);
        } else {
            v.scan_loops(None, threads);
            let walked = v.walk_pairs(None, None, threads);
            v.finalize(v.view.num_switches(), walked);
        }
        v
    }

    /// Incrementally verify `prev`'s tables plus a pending flow-mod batch
    /// against a (possibly updated) intent, VeriFlow-style: only the
    /// switches the batch touches are rescanned, only the host pairs whose
    /// forwarding path crosses a touched switch (or whose intent entry
    /// changed) are re-walked, and the loop scan restarts only from touched
    /// switches.
    ///
    /// Soundness: the per-(switch, in-port, class) step function is
    /// unchanged at untouched switches, so (a) a pair whose previous path
    /// avoids every touched switch behaves identically, and (b) any *new*
    /// forwarding cycle must cross a touched switch — in the functional
    /// forwarding graph, walking from each touched-switch port finds every
    /// such cycle; cycles wholly among untouched switches are carried over
    /// from `prev` verbatim.
    ///
    /// `prev` is not modified, and no live table is: the batch is replayed
    /// on a cloned snapshot.
    pub fn check_delta(
        prev: &Verifier,
        batch: &[(u32, u8, FlowMod)],
        intent: Intent,
    ) -> Verifier {
        Self::check_delta_threads(prev, batch, intent, crate::verify_threads())
    }

    /// [`Verifier::check_delta`] with an explicit worker count (1 = fully
    /// sequential). The report is byte-identical for every worker count.
    pub fn check_delta_threads(
        prev: &Verifier,
        batch: &[(u32, u8, FlowMod)],
        intent: Intent,
        threads: usize,
    ) -> Verifier {
        Self::check_delta_impl(prev, batch, intent, threads, &mut None, false)
    }

    /// [`Verifier::check_delta_threads`] with a persistent [`WalkCache`]
    /// (see [`Verifier::check_cached`]).
    pub fn check_delta_cached(
        prev: &Verifier,
        batch: &[(u32, u8, FlowMod)],
        intent: Intent,
        threads: usize,
        cache: &mut WalkCache,
    ) -> Verifier {
        let mut slot = Some(std::mem::take(cache));
        let v = Self::check_delta_impl(prev, batch, intent, threads, &mut slot, false);
        if let Some(c) = slot {
            *cache = c;
        }
        v
    }

    /// The reference incremental check — see [`Verifier::check_plain_threads`].
    pub fn check_delta_plain_threads(
        prev: &Verifier,
        batch: &[(u32, u8, FlowMod)],
        intent: Intent,
        threads: usize,
    ) -> Verifier {
        Self::check_delta_impl(prev, batch, intent, threads, &mut None, true)
    }

    fn check_delta_impl(
        prev: &Verifier,
        batch: &[(u32, u8, FlowMod)],
        intent: Intent,
        threads: usize,
        cache: &mut Option<WalkCache>,
        plain: bool,
    ) -> Verifier {
        let mut view = prev.view.clone();
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        for (sw, table, m) in batch {
            view.apply(*sw, *table, m);
            touched.insert(*sw);
        }
        // An empty batch leaves the view bit-identical, so the header
        // values collected from it are too — skip the rescan (the plain
        // reference recollects unconditionally).
        let values = if !plain && touched.is_empty() {
            prev.values.clone()
        } else {
            HeaderValues::collect(&view)
        };
        let indexes = delta_indexes(&prev.indexes, &view, &touched);
        let mut v = Verifier {
            cluster: prev.cluster.clone(),
            view,
            intent,
            values,
            indexes,
            traces: Arc::new(Vec::new()),
            loops: Vec::new(),
            warnings: Vec::new(),
            report: VerifyReport::default(),
            stats: VerifyStats::default(),
        };
        if let Some(c) = cache.as_mut() {
            c.ensure_cluster(cluster_fingerprint(&v.cluster));
        }
        // Carry over loops that avoid every touched switch; rediscover the
        // rest from the touched frontier.
        v.loops = prev
            .loops
            .iter()
            .filter(|l| l.ports.iter().all(|p| !touched.contains(&p.switch)))
            .cloned()
            .collect();
        if plain {
            v.scan_warnings(Some((&touched, &prev.warnings)), threads);
            v.scan_loops(Some(&touched), threads);
            let walked = v.walk_pairs(Some(&touched), Some(prev), threads);
            v.finalize(touched.len(), walked);
            return v;
        }
        v.scan_warnings_fast(Some((&touched, &prev.warnings)), threads, cache);
        // Empty batch against an unchanged intent: the view, values,
        // warnings, carried loops and every previous trace are replayed
        // verbatim, so the report is `prev`'s with the delta counters
        // zeroed — exactly what the full machinery below would recompute.
        // (`symmetric` is inherited: the tables didn't change.)
        let n = v.intent.hosts.len();
        let unique_addrs = {
            let mut seen = HashSet::with_capacity(n);
            v.intent.hosts.iter().all(|h| seen.insert(h.addr.0))
        };
        if touched.is_empty()
            && unique_addrs
            && v.intent == prev.intent
            && prev.traces.len() == n * n.saturating_sub(1)
        {
            v.traces = prev.traces.clone();
            v.stats.symmetric = prev.stats.symmetric;
            v.report =
                VerifyReport { switches_scanned: 0, pairs_walked: 0, ..prev.report.clone() };
            return v;
        }
        let fates = FateTable::build(&v.cluster, &v.view, &v.indexes);
        v.stats.symmetric = fates.ok;
        if fates.ok {
            let walked = v.walk_pairs_fast(&fates, Some(&touched), Some(prev), threads, cache);
            v.finalize(touched.len(), walked);
        } else {
            v.scan_loops(Some(&touched), threads);
            let walked = v.walk_pairs(Some(&touched), Some(prev), threads);
            v.finalize(touched.len(), walked);
        }
        v
    }

    /// The verdict.
    pub fn report(&self) -> &VerifyReport {
        &self.report
    }

    /// Shorthand for `report().holds()`.
    pub fn holds(&self) -> bool {
        self.report.holds()
    }

    /// The intent this verdict is against.
    pub fn intent(&self) -> &Intent {
        &self.intent
    }

    /// Operational counters of this pass: symmetry-collapse savings, cache
    /// hits, fallbacks. Not part of the report (reports stay byte-identical
    /// across optimization levels; stats are allowed to differ).
    pub fn stats(&self) -> &VerifyStats {
        &self.stats
    }

    /// Per-switch dead-rule and nondeterminism warnings, one independent
    /// job per switch, merged back in switch-id order. For untouched
    /// switches in a delta check, the cached findings are reused.
    fn scan_warnings(&mut self, delta: Option<(&BTreeSet<u32>, &[SwitchWarnings])>, threads: usize) {
        let num_ports = self.cluster.model().ports as u16;
        let view = &self.view;
        let ids: Vec<u32> = (0..view.num_switches() as u32).collect();
        self.warnings = sdt_par::par_map_threads(threads, &ids, |&sw| {
            if let Some((touched, prev)) = delta {
                if !touched.contains(&sw) {
                    return prev[sw as usize].clone();
                }
            }
            switch_warnings(view, num_ports, sw)
        });
    }

    /// [`Verifier::scan_warnings`] with the overlap-indexed scanner and the
    /// persistent warning cache: a switch whose table fingerprints match a
    /// cached scan replays it; everything else is scanned with
    /// [`table_warnings_indexed`] (byte-identical findings, sub-quadratic).
    fn scan_warnings_fast(
        &mut self,
        delta: Option<(&BTreeSet<u32>, &[SwitchWarnings])>,
        threads: usize,
        cache: &mut Option<WalkCache>,
    ) {
        let num_ports = self.cluster.model().ports as u16;
        let view = &self.view;
        let ids: Vec<u32> = (0..view.num_switches() as u32).collect();
        let ro = cache.as_ref();
        type Out = (SwitchWarnings, Option<((u32, TableFp, TableFp), SwitchWarnings)>, Option<bool>);
        let results: Vec<Out> = sdt_par::par_map_threads(threads, &ids, |&sw| {
            if let Some((touched, prev)) = delta {
                if !touched.contains(&sw) {
                    return (prev[sw as usize].clone(), None, None);
                }
            }
            let key = (sw, view.fp(sw, 0), view.fp(sw, 1));
            if let Some(w) = ro.and_then(|c| c.warnings.get(&key)) {
                return (w.clone(), None, Some(true));
            }
            let w = switch_warnings_fast(view, num_ports, sw);
            (w.clone(), Some((key, w)), Some(false))
        });
        let mut warnings = Vec::with_capacity(results.len());
        for (w, fresh, hit) in results {
            warnings.push(w);
            match hit {
                Some(true) => self.stats.warn_cache_hits += 1,
                Some(false) => self.stats.warn_cache_misses += 1,
                None => {}
            }
            if let (Some(c), Some((key, w))) = (cache.as_mut(), fresh) {
                c.warnings.insert(key, w);
            }
        }
        self.warnings = warnings;
    }

    /// Cycle scan over the forwarding port-graph. Nodes are cable ingress
    /// ports; per header class the graph is functional (one successor), so
    /// following successor chains with a visited set finds every cycle.
    ///
    /// Classes are scanned in parallel: each worker discovers its class's
    /// cycles independently (the traversal never depends on what other
    /// classes found), then the per-class lists are merged **in class
    /// enumeration order** against one global dedup set — reproducing the
    /// sequential pass's output exactly, including which class gets credit
    /// for a cycle that several classes exhibit.
    fn scan_loops(&mut self, touched: Option<&BTreeSet<u32>>, threads: usize) {
        let starts: Vec<PhysPort> = self
            .cluster
            .links()
            .iter()
            .flat_map(|l| [l.a, l.b])
            .filter(|p| touched.is_none_or(|t| t.contains(&p.switch)))
            .collect();
        let carried: HashSet<Vec<(u32, u16)>> = self
            .loops
            .iter()
            .map(|l| canonical_cycle(&l.ports))
            .collect();
        let classes = self.values.classes();
        let (cluster, indexes, starts, carried_ref) =
            (&self.cluster, &self.indexes, &starts, &carried);
        let per_class: Vec<Vec<LoopFinding>> =
            sdt_par::par_map_threads(threads, &classes, |&class| {
                scan_loops_class(indexes, cluster, starts, carried_ref, class)
            });
        let mut seen_cycles = carried;
        for found in per_class {
            for l in found {
                if seen_cycles.insert(canonical_cycle(&l.ports)) {
                    self.loops.push(l);
                }
            }
        }
    }

    /// Which previous traces may be replayed for this delta: both
    /// endpoints' intent entries unchanged, path avoiding every touched
    /// switch. Keyed by address pair — shared verbatim by the reference
    /// and fast walkers so their reuse decisions are identical.
    fn reusable_map<'p>(
        &self,
        prev: &'p Verifier,
        touched: &BTreeSet<u32>,
        tmask: u64,
    ) -> HashMap<(u32, u32), &'p Arc<PairTrace>> {
        let np = prev.intent.hosts.len();
        if np < 2 || prev.traces.len() != np * (np - 1) {
            return HashMap::new();
        }
        let prev_hosts: HashMap<u32, (&crate::model::IntentHost, &str)> = prev
            .intent
            .hosts
            .iter()
            .map(|h| (h.addr.0, (h, prev.intent.domains[h.domain].as_str())))
            .collect();
        let unchanged = |h: &crate::model::IntentHost| {
            prev_hosts.get(&h.addr.0).is_some_and(|(p, label)| {
                p.ingress == h.ingress
                    && p.ports == h.ports
                    && p.group == h.group
                    && p.host == h.host
                    && *label == self.intent.domains[h.domain]
            })
        };
        let ok_hosts: HashSet<u32> =
            self.intent.hosts.iter().filter(|h| unchanged(h)).map(|h| h.addr.0).collect();
        // Traces carry no addresses; recover the pair from the position
        // (src-major/dst-minor over prev's intent hosts).
        prev.traces
            .iter()
            .enumerate()
            .filter_map(|(pos, t)| {
                let (i, r) = (pos / (np - 1), pos % (np - 1));
                let j = if r < i { r } else { r + 1 };
                let (sa, da) = (prev.intent.hosts[i].addr.0, prev.intent.hosts[j].addr.0);
                (ok_hosts.contains(&sa) && ok_hosts.contains(&da) && t.avoids(touched, tmask))
                    .then_some(((sa, da), t))
            })
            .collect()
    }

    /// Reachability closure over every ordered intent host pair, one
    /// parallel job per source host; traces are concatenated in intent host
    /// order, so the flattened vector is exactly the sequential
    /// src-major/dst-minor order `finalize` consumes. Returns the number of
    /// pairs actually re-walked (for the report).
    fn walk_pairs(
        &mut self,
        touched: Option<&BTreeSet<u32>>,
        prev: Option<&Verifier>,
        threads: usize,
    ) -> usize {
        // A previous trace is reusable iff both endpoints' intent entries
        // are unchanged and the traced path avoids every touched switch.
        let tmask = touched.map_or(0, mask_of);
        let reusable: HashMap<(u32, u32), &Arc<PairTrace>> = match (touched, prev) {
            (Some(touched), Some(prev)) => self.reusable_map(prev, touched, tmask),
            _ => HashMap::new(),
        };
        let budget = 4 * self.cluster.links().len() + 8;
        let hosts = &self.intent.hosts;
        let (cluster, values, indexes, reusable_ref) =
            (&self.cluster, &self.values, &self.indexes, &reusable);
        let per_src: Vec<(usize, Vec<Arc<PairTrace>>)> =
            sdt_par::par_map_threads(threads, hosts, |src| {
                let mut walked = 0usize;
                let mut traces = Vec::with_capacity(hosts.len().saturating_sub(1));
                for dst in hosts {
                    if std::ptr::eq(src, dst) {
                        continue;
                    }
                    if let Some(t) = reusable_ref.get(&(src.addr.0, dst.addr.0)) {
                        traces.push(Arc::clone(t));
                        continue;
                    }
                    walked += 1;
                    let class = values.class_of(src.addr, dst.addr, 4791, 4791);
                    let mut switches = BTreeSet::new();
                    let mut at = src.ingress;
                    let mut outcome = PairOutcome::Looped;
                    for _ in 0..budget {
                        switches.insert(at.switch);
                        match step(indexes, cluster, at, &class) {
                            Step::Deliver { port, via } => {
                                outcome = PairOutcome::Delivered { port, via };
                                break;
                            }
                            Step::Dead { at: sw, reason } => {
                                switches.insert(sw);
                                outcome = PairOutcome::Dropped { reason };
                                break;
                            }
                            Step::Next { to, .. } => at = to,
                        }
                    }
                    let mask = mask_of(&switches);
                    traces.push(Arc::new(PairTrace {
                        outcome,
                        pre: Arc::new(switches),
                        post: no_switches(),
                        mask,
                    }));
                }
                (walked, traces)
            });
        let mut walked = 0usize;
        let mut traces =
            Vec::with_capacity(hosts.len().saturating_mul(hosts.len().saturating_sub(1)));
        for (w, t) in per_src {
            walked += w;
            traces.extend(t);
        }
        self.traces = Arc::new(traces);
        walked
    }

    /// [`Verifier::walk_pairs`] and [`Verifier::scan_loops`] fused, with
    /// the symmetry collapse: one job per header class resolves one destiny
    /// per pipeline state through a shared [`DestinyMemo`] (probing the
    /// persistent [`WalkCache`] when one is attached) and uses it twice —
    /// to prove the class loop-free (or fall back to the reference port
    /// walk, keeping `LoopFinding`s byte-identical) and to replay one
    /// representative verdict per source to every same-class pair. Jobs
    /// are weighted by pair count and scheduled heaviest first over
    /// [`sdt_par::par_map_weighted_threads`]; traces are scattered back
    /// into the exact src-major/dst-minor order `finalize` consumes and
    /// loop findings merge in class-enumeration order, so reports are
    /// byte-identical to the reference's at any thread count.
    #[allow(clippy::too_many_lines)]
    fn walk_pairs_fast(
        &mut self,
        fates: &FateTable,
        touched: Option<&BTreeSet<u32>>,
        prev: Option<&Verifier>,
        threads: usize,
        cache: &mut Option<WalkCache>,
    ) -> usize {
        let hosts = &self.intent.hosts;
        let n = hosts.len();
        let total = n * n.saturating_sub(1);
        let tmask = touched.map_or(0, mask_of);
        // Per-position reuse table (pos = src-major pair index), pre-filled
        // with `Arc`-cloned previous traces. The positional fast path
        // applies when the intent is unchanged and addresses are unique —
        // then the reference's address-keyed map would resolve every
        // position to exactly this trace. Otherwise build the reference's
        // map and read it out positionally.
        let unique_addrs = {
            let mut seen = HashSet::with_capacity(n);
            hosts.iter().all(|h| seen.insert(h.addr.0))
        };
        let positional = |prev: &Verifier| {
            unique_addrs && self.intent == prev.intent && prev.traces.len() == total
        };
        let mut slots: Vec<Option<Arc<PairTrace>>> = match (touched, prev) {
            (Some(touched), Some(prev)) if positional(prev) => {
                if touched.is_empty() {
                    // Nothing touched: every trace replays verbatim, and
                    // the walk below would visit a million pairs only to
                    // skip each one. Clone the trace vector wholesale.
                    self.traces = prev.traces.clone();
                    return 0;
                }
                prev.traces
                    .iter()
                    .map(|t| t.avoids(touched, tmask).then(|| Arc::clone(t)))
                    .collect()
            }
            (Some(touched), Some(prev)) => {
                let map = self.reusable_map(prev, touched, tmask);
                let mut v = Vec::with_capacity(total);
                for (i, src) in hosts.iter().enumerate() {
                    for (j, dst) in hosts.iter().enumerate() {
                        if i != j {
                            v.push(map.get(&(src.addr.0, dst.addr.0)).map(|t| Arc::clone(t)));
                        }
                    }
                }
                v
            }
            _ => vec![None; total],
        };
        // Group hosts by per-field class code (0 = fresh, k+1 = k-th
        // tested value); a *walking* job is one (src-code, dst-code) cell =
        // one header class (L4 fields are constant across intent traffic).
        // Every other class still gets a job for the loop scan alone.
        let values = &self.values;
        let code = |vals: &[HostAddr], a: HostAddr| vals.binary_search(&a).map_or(0, |p| p + 1);
        let mut srcs_by: Vec<Vec<usize>> = vec![Vec::new(); values.srcs().len() + 1];
        let mut dsts_by: Vec<Vec<usize>> = vec![Vec::new(); values.dsts().len() + 1];
        for (i, h) in hosts.iter().enumerate() {
            srcs_by[code(values.srcs(), h.addr)].push(i);
            dsts_by[code(values.dsts(), h.addr)].push(i);
        }
        let l4 = values.class_of(HostAddr(0), HostAddr(0), 4791, 4791);
        // Loop-scan starts: every link ingress (on a touched switch, for
        // deltas). Cycles carried over from `prev` are already in
        // `self.loops` and must not be re-reported.
        let starts: Vec<PhysPort> = self
            .cluster
            .links()
            .iter()
            .flat_map(|l| [l.a, l.b])
            .filter(|p| touched.is_none_or(|t| t.contains(&p.switch)))
            .collect();
        // Start fates are class-independent, and Dead/Deliver starts can
        // never reach a `Looped` destiny — so the per-class loop check only
        // needs the distinct pipeline states the starts resolve to.
        let start_states: Vec<(u32, u32)> = {
            let mut seen = HashSet::new();
            starts
                .iter()
                .filter_map(|&p| match &fates.fate(p).out {
                    FateOut::State { sw, md } => Some((*sw, *md)),
                    _ => None,
                })
                .filter(|s| seen.insert(*s))
                .collect()
        };
        let carried: HashSet<Vec<(u32, u16)>> =
            self.loops.iter().map(|l| canonical_cycle(&l.ports)).collect();
        // One job per header class, in `classes()` enumeration order (loop
        // findings are deduplicated first-class-wins, so this order is part
        // of the report contract).
        let jobs: Vec<(HeaderClass, usize, usize, bool)> = values
            .classes()
            .into_iter()
            .map(|class| {
                let a = class.src.map_or(0, |v| code(values.srcs(), v));
                let b = class.dst.map_or(0, |v| code(values.dsts(), v));
                let walk = class.l4_src == l4.l4_src
                    && class.l4_dst == l4.l4_dst
                    && !srcs_by[a].is_empty()
                    && !dsts_by[b].is_empty();
                (class, a, b, walk)
            })
            .collect();
        let empty_cache = WalkCache::new();
        let collect_fresh = cache.is_some();
        let ro: &WalkCache = match cache.as_ref() {
            Some(c) => c,
            None => &empty_cache,
        };
        struct JobOut {
            out: Vec<(usize, Arc<PairTrace>)>,
            walked: usize,
            full: usize,
            hits: usize,
            misses: usize,
            fresh: Vec<((HeaderClass, u32, u32), crate::fast::CachedDestiny)>,
            loops: Option<(Vec<LoopFinding>, bool)>,
        }
        let (cluster, view, indexes) = (&self.cluster, &self.view, &self.indexes);
        let (hosts_ref, srcs_ref, dsts_ref, slots_ref) = (hosts, &srcs_by, &dsts_by, &slots);
        let (starts_ref, states_ref, carried_ref) = (&starts, &start_states, &carried);
        // Jobs emit only the pairs they actually walk (reused positions are
        // already filled); each walked pair is an 8-byte `Arc` clone of its
        // source's per-job representative trace.
        let results: Vec<JobOut> = sdt_par::par_map_weighted_threads(
            threads,
            &jobs,
            |&(_, a, b, walk)| {
                (starts_ref.len() + if walk { srcs_ref[a].len() * dsts_ref[b].len() } else { 0 })
                    as u64
            },
            |&(class, a, b, walk)| {
                let mut memo =
                    DestinyMemo::new(view, cluster, indexes, fates, ro, class, collect_fresh);
                // Loop scan first: a class from whose start ports no
                // `Looped` destiny is reachable provably has no cycle —
                // skip it; one that does falls back to the reference port
                // walk so the findings are byte-identical.
                let loops = if starts_ref.is_empty() {
                    None
                } else {
                    let looped = states_ref.iter().any(|&(sw, md)| {
                        let idx = memo.resolve(sw, md);
                        matches!(memo.destiny(idx).out, PairOutcome::Looped)
                    });
                    if looped {
                        Some((
                            scan_loops_class(indexes, cluster, starts_ref, carried_ref, class),
                            false,
                        ))
                    } else {
                        Some((Vec::new(), true))
                    }
                };
                let mut out = Vec::new();
                let (mut walked, mut full) = (0usize, 0usize);
                // Cross-source representative table: two sources whose
                // ingress fates reach the same pipeline state through the
                // same singleton `pre` set produce content-identical traces
                // (the destiny is a pure function of the state within this
                // memo), so they share one allocation.
                let mut reps: HashMap<(u32, u32, u32), Arc<PairTrace>> = HashMap::new();
                for &i in srcs_ref[a].iter().filter(|_| walk) {
                    let src = &hosts_ref[i];
                    // Representative verdict for this source, built on the
                    // first non-reused pair and replayed to the rest.
                    let mut rep: Option<Arc<PairTrace>> = None;
                    for &j in &dsts_ref[b] {
                        if i == j {
                            continue;
                        }
                        let pos = i * (n - 1) + if j < i { j } else { j - 1 };
                        if slots_ref[pos].is_some() {
                            continue;
                        }
                        walked += 1;
                        if rep.is_none() {
                            let fate = fates.fate(src.ingress);
                            let shared = match &fate.out {
                                FateOut::State { sw, md } if fate.pre.len() == 1 => {
                                    fate.pre.first().map(|&s| (s, *sw, *md))
                                }
                                _ => None,
                            };
                            let t = match shared.and_then(|k| reps.get(&k).cloned()) {
                                Some(t) => t,
                                None => {
                                    full += 1;
                                    let (outcome, pre, post, mask) = match &fate.out {
                                        FateOut::Dead(reason) => (
                                            PairOutcome::Dropped { reason: reason.clone() },
                                            fate.pre.clone(),
                                            no_switches(),
                                            fate.mask,
                                        ),
                                        FateOut::Deliver { port, via } => (
                                            PairOutcome::Delivered {
                                                port: *port,
                                                via: via.clone(),
                                            },
                                            fate.pre.clone(),
                                            no_switches(),
                                            fate.mask,
                                        ),
                                        FateOut::State { sw, md } => {
                                            let idx = memo.resolve(*sw, *md);
                                            let d = memo.destiny(idx);
                                            (
                                                d.out.clone(),
                                                fate.pre.clone(),
                                                d.post.clone(),
                                                fate.mask | d.mask,
                                            )
                                        }
                                    };
                                    let t = Arc::new(PairTrace { outcome, pre, post, mask });
                                    if let Some(k) = shared {
                                        reps.insert(k, Arc::clone(&t));
                                    }
                                    t
                                }
                            };
                            rep = Some(t);
                        }
                        if let Some(r) = &rep {
                            out.push((pos, Arc::clone(r)));
                        }
                    }
                }
                let (hits, misses) = (memo.hits, memo.misses);
                let fresh = memo.fresh_entries();
                JobOut { out, walked, full, hits, misses, fresh, loops }
            },
        );
        let mut walked_total = 0usize;
        let mut seen_cycles = carried;
        for job in results {
            walked_total += job.walked;
            self.stats.pairs_walked_full += job.full;
            self.stats.pairs_replayed += job.walked - job.full;
            self.stats.cache_hits += job.hits;
            self.stats.cache_misses += job.misses;
            if let Some((found, fast)) = job.loops {
                if fast {
                    self.stats.loop_classes_fast += 1;
                } else {
                    self.stats.loop_classes_fallback += 1;
                }
                for l in found {
                    if seen_cycles.insert(canonical_cycle(&l.ports)) {
                        self.loops.push(l);
                    }
                }
            }
            for (pos, t) in job.out {
                slots[pos] = Some(t);
            }
            if let Some(c) = cache.as_mut() {
                for (k, v) in job.fresh {
                    c.destinies.insert(k, v);
                }
            }
        }
        self.traces = Arc::new(
            slots
                .into_iter()
                .map(|s| match s {
                    Some(t) => t,
                    None => unreachable!("every ordered pair belongs to exactly one class job"),
                })
                .collect(),
        );
        walked_total
    }

    /// Turn traces + warnings + loops into the final report.
    fn finalize(&mut self, switches_scanned: usize, pairs_walked: usize) {
        // Dense port→host-index table (last write wins, like the HashMap it
        // replaces): finalize probes it once per delivered pair, and a flat
        // vector beats hashing at the ~1M-pair scale of the big presets.
        let ports = self.cluster.model().ports as usize;
        let mut owner: Vec<Option<usize>> = vec![None; self.cluster.num_switches() as usize * ports];
        for (i, h) in self.intent.hosts.iter().enumerate() {
            for &p in &h.ports {
                owner[p.switch as usize * ports + p.port.idx()] = Some(i);
            }
        }
        let owner_of =
            |p: &PhysPort| owner.get(p.switch as usize * ports + p.port.idx()).copied().flatten();
        let mut report = VerifyReport {
            loops: self.loops.clone(),
            switches_scanned,
            pairs_walked,
            pairs_checked: self.traces.len(),
            header_classes: self.values.num_classes(),
            ..VerifyReport::default()
        };
        for w in &self.warnings {
            report.shadowed.extend(w.shadowed.iter().cloned());
            report.nondeterminism.extend(w.nondet.iter().cloned());
        }
        let mut t = 0usize;
        for (i, src) in self.intent.hosts.iter().enumerate() {
            for (j, dst) in self.intent.hosts.iter().enumerate() {
                if i == j {
                    continue;
                }
                let trace = &self.traces[t];
                t += 1;
                let expected = self.intent.expects_delivery(i, j);
                match &trace.outcome {
                    PairOutcome::Delivered { port, via } => match owner_of(port) {
                        Some(k) if k == j && expected => report.delivered_pairs += 1,
                        Some(k) => {
                            let to = &self.intent.hosts[k];
                            report.leaks.push(LeakFinding {
                                from_domain: self.intent.domains[src.domain].clone(),
                                src: src.host,
                                to_domain: self.intent.domains[to.domain].clone(),
                                to_host: to.host,
                                dst_addr: dst.addr,
                                port: *port,
                                via: via.clone(),
                            });
                        }
                        None if expected => report.blackholes.push(BlackholeFinding {
                            domain: self.intent.domains[src.domain].clone(),
                            src: src.host,
                            dst: dst.host,
                            reason: DropReason::UnownedHostPort(*port),
                        }),
                        None => report.isolated_pairs += 1,
                    },
                    PairOutcome::Dropped { reason } => {
                        if expected {
                            report.blackholes.push(BlackholeFinding {
                                domain: self.intent.domains[src.domain].clone(),
                                src: src.host,
                                dst: dst.host,
                                reason: reason.clone(),
                            });
                        } else {
                            report.isolated_pairs += 1;
                        }
                    }
                    PairOutcome::Looped => report.looped_pairs += 1,
                }
            }
        }
        self.report = report;
    }
}

/// One class's reference loop scan: follow the forwarding port-graph from
/// each start with a visited set, reporting every new cycle. Shared by the
/// plain pass (all classes) and the fast pass (fallback classes only).
fn scan_loops_class(
    indexes: &[Arc<[EntryIndex; 2]>],
    cluster: &PhysicalCluster,
    starts: &[PhysPort],
    carried: &HashSet<Vec<(u32, u16)>>,
    class: HeaderClass,
) -> Vec<LoopFinding> {
    let mut found = Vec::new();
    let mut local_seen: HashSet<Vec<(u32, u16)>> = HashSet::new();
    let mut done: HashSet<PhysPort> = HashSet::new();
    for &start in starts {
        if done.contains(&start) {
            continue;
        }
        let mut index: HashMap<PhysPort, usize> = HashMap::new();
        let mut chain: Vec<(PhysPort, Vec<RuleRef>)> = Vec::new();
        let mut cur = start;
        loop {
            if done.contains(&cur) {
                break; // chain merges into an already-explored path
            }
            if let Some(&i) = index.get(&cur) {
                let cycle = &chain[i..];
                let ports: Vec<PhysPort> = cycle.iter().map(|(p, _)| *p).collect();
                let canon = canonical_cycle(&ports);
                if !carried.contains(&canon) && local_seen.insert(canon) {
                    found.push(LoopFinding {
                        ports,
                        rules: cycle.iter().flat_map(|(_, r)| r.clone()).collect(),
                        class,
                    });
                }
                break;
            }
            match step(indexes, cluster, cur, &class) {
                Step::Next { to, rules } => {
                    index.insert(cur, chain.len());
                    chain.push((cur, rules));
                    cur = to;
                }
                Step::Deliver { .. } | Step::Dead { .. } => break,
            }
        }
        done.extend(chain.iter().map(|(p, _)| *p));
    }
    found
}

/// [`switch_warnings`] built on the mask-group overlap index: identical
/// findings in identical order, sub-quadratic for the large tables the
/// linear reference struggles with.
fn switch_warnings_fast(view: &TableView, num_ports: u16, sw: u32) -> SwitchWarnings {
    let mut w = SwitchWarnings::default();
    let written: BTreeSet<u32> = view
        .entries(sw, 0)
        .iter()
        .filter_map(|e| match e.action {
            Action::WriteMetadataGoto(md) => Some(md),
            _ => None,
        })
        .collect();
    for table in 0..2u8 {
        let entries = view.entries(sw, table);
        let universe = if table == 0 {
            MatchUniverse { in_ports: Some((0..num_ports).map(PortNo).collect()), metadata: None }
        } else {
            MatchUniverse::for_switch(num_ports, written.iter().copied())
        };
        if table == 0 {
            for e in entries.iter().filter(|e| e.m.metadata.is_some()) {
                w.shadowed.push(ShadowFinding {
                    switch: sw,
                    table,
                    shadowed: ShadowedEntry { entry: *e, covered_by: Vec::new() },
                });
            }
        }
        let (shadowed, nondet) = table_warnings_indexed(entries, &universe);
        for s in shadowed {
            w.shadowed.push(ShadowFinding { switch: sw, table, shadowed: s });
        }
        for (a, b) in nondet {
            w.nondet.push(NondetFinding {
                switch: sw,
                table,
                first: entries[a as usize],
                second: entries[b as usize],
            });
        }
    }
    w
}

/// The dead-rule and nondeterminism warnings of a single switch — a pure
/// function of its table view, so the per-switch jobs can run on any
/// worker in any order.
fn switch_warnings(view: &TableView, num_ports: u16, sw: u32) -> SwitchWarnings {
    let mut w = SwitchWarnings::default();
    // Metadata values table 0 can hand to table 1 on this switch.
    let written: BTreeSet<u32> = view
        .entries(sw, 0)
        .iter()
        .filter_map(|e| match e.action {
            Action::WriteMetadataGoto(md) => Some(md),
            _ => None,
        })
        .collect();
    for table in 0..2u8 {
        let entries = view.entries(sw, table);
        let universe = if table == 0 {
            // Table 0 sees raw packets: bounded ports, no metadata.
            MatchUniverse {
                in_ports: Some((0..num_ports).map(PortNo).collect()),
                metadata: None,
            }
        } else {
            MatchUniverse::for_switch(num_ports, written.iter().copied())
        };
        if table == 0 {
            // A classify rule matching on metadata can never fire:
            // nothing runs before table 0 to write any.
            for e in entries.iter().filter(|e| e.m.metadata.is_some()) {
                w.shadowed.push(ShadowFinding {
                    switch: sw,
                    table,
                    shadowed: ShadowedEntry { entry: *e, covered_by: Vec::new() },
                });
            }
        }
        for s in shadowed_entries_in(entries, &universe) {
            w.shadowed.push(ShadowFinding { switch: sw, table, shadowed: s });
        }
        for (i, a) in entries.iter().enumerate() {
            for b in entries[i + 1..]
                .iter()
                .take_while(|b| b.priority == a.priority)
                .filter(|b| a.m != b.m && a.m.overlaps(&b.m))
            {
                w.nondet.push(NondetFinding { switch: sw, table, first: *a, second: *b });
            }
        }
    }
    w
}

/// Canonical rotation of a cycle's port list, for de-duplication across
/// header classes and delta passes.
fn canonical_cycle(ports: &[PhysPort]) -> Vec<(u32, u16)> {
    let raw: Vec<(u32, u16)> = ports.iter().map(|p| (p.switch, p.port.0)).collect();
    let Some(min_at) = (0..raw.len()).min_by_key(|&i| raw[i]) else {
        return raw;
    };
    let mut out = Vec::with_capacity(raw.len());
    out.extend_from_slice(&raw[min_at..]);
    out.extend_from_slice(&raw[..min_at]);
    out
}
