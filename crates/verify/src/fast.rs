//! The symmetry-collapse fast path of the verifier.
//!
//! SDT pipelines have a rigid shape: table 0 classifies **by ingress port
//! only** (forwarding-domain restriction — §III-B) and hands a metadata tag
//! to table 1, which routes **by header only**. When the installed tables
//! actually have that shape — checked, not assumed, by `symmetric` — two
//! consequences make the exhaustive per-pair walk collapse:
//!
//! 1. **Table-0 decisions are class-independent.** Every live table-0 rule
//!    (metadata-free; metadata-matching classify rules are dead, nothing
//!    writes metadata before table 0) constrains no header field, so the
//!    first match at `(switch, in_port)` is one fixed rule for *every*
//!    header class. The per-port resolution — including chains of direct
//!    `Output` hops across cables — is precomputed once in a `FateTable`.
//! 2. **Table-1 decisions are port-independent.** No table-1 rule
//!    constrains `in_port`, so the pipeline state after a metadata write is
//!    just `(switch, metadata)` — and the rest of the walk is a pure
//!    function of `(state, header class)`. `DestinyMemo` resolves each
//!    state's *destiny* (deliver / drop / loop, plus the switches crossed)
//!    once per class and replays it for every pair whose walk reaches it.
//!
//! A walk that would exhaust the reference walker's hop budget must revisit
//! an ingress port (the budget exceeds the longest simple port path), and a
//! revisited port is a revisited `(switch, metadata)` state — so cycle
//! detection on the state chain reports `Looped` for exactly the pairs the
//! budgeted reference walk reports `Looped`. Findings are byte-identical by
//! construction, and `tests/memo_differential.rs` re-proves it
//! differentially on every preset and under random slice churn.
//!
//! When any precondition fails — a header-matching live classify rule, a
//! port-matching route rule, a direct-output cable cycle — the whole pass
//! **falls back** to the reference walker (`FateTable::build` reports
//! `ok = false`). Correct-but-slow beats fast-but-wrong.
//!
//! [`WalkCache`] carries destinies *across* verification passes, keyed on
//! the content fingerprints ([`sdt_openflow::TableFp`]) of every table the
//! walk read; a cached destiny is replayed only after every dependency
//! fingerprint matches the current view, so stale entries are structurally
//! unreachable — they just miss.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::sync::OnceLock;

use sdt_core::cluster::{PhysPort, PhysicalCluster};
use sdt_openflow::{Action, EntryIndex, PortNo, TableFp};

use crate::analysis::{DropReason, PairOutcome, RuleRef, SwitchWarnings};
use crate::model::{entry_matches, HeaderClass, TableView};

/// Operational counters of one verification pass: how much work the
/// symmetry collapse, the destiny memo and the walk cache saved. Kept
/// *outside* [`crate::VerifyReport`] so the report stays byte-identical
/// between the fast and reference paths (the differential tests compare
/// reports; stats are allowed to differ).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Did the table shape admit the fast path? `false` means every number
    /// below is zero and the reference walker produced the report.
    pub symmetric: bool,
    /// Pairs whose (ingress, class) representative actually resolved a walk.
    pub pairs_walked_full: usize,
    /// Pairs that replayed a representative's verdict without walking.
    pub pairs_replayed: usize,
    /// Header classes the loop scan cleared by state-graph analysis alone.
    pub loop_classes_fast: usize,
    /// Header classes re-scanned by the reference loop walker (a cycle was
    /// reachable, and findings must be byte-identical).
    pub loop_classes_fallback: usize,
    /// Destiny resolutions served by the persistent [`WalkCache`].
    pub cache_hits: usize,
    /// Destiny resolutions computed fresh (then offered to the cache).
    pub cache_misses: usize,
    /// Per-switch warning scans served by the cache (fingerprints matched).
    pub warn_cache_hits: usize,
    /// Per-switch warning scans recomputed.
    pub warn_cache_misses: usize,
}

/// A memoized walk verdict, persisted across verification passes.
#[derive(Clone, Debug)]
pub(crate) struct CachedDestiny {
    /// How the walk ends from this state.
    pub(crate) out: PairOutcome,
    /// Switches the walk crosses strictly after entering this state.
    pub(crate) post: Arc<BTreeSet<u32>>,
    /// Bloom mask of `post` (see [`mask_of`]).
    pub(crate) mask: u64,
    /// Every table this verdict read, with its content fingerprint at
    /// computation time. The verdict is replayable iff all still match.
    pub(crate) deps: Arc<Vec<(u32, TableFp, TableFp)>>,
}

/// Cross-pass memo store: per-class walk destinies and per-switch warning
/// scans, each keyed on the content fingerprints of the tables that
/// produced them. Safe to keep across arbitrary reconfiguration — slice
/// churn, chaos recovery, direct `switches_mut` edits — because an entry
/// whose tables changed simply fails fingerprint validation and misses.
#[derive(Clone, Debug, Default)]
pub struct WalkCache {
    /// Wiring fingerprint the entries were computed under; a different
    /// cluster invalidates everything (destinies read the cabling too).
    cluster_fp: Option<u64>,
    pub(crate) warnings: HashMap<(u32, TableFp, TableFp), SwitchWarnings>,
    pub(crate) destinies: HashMap<(HeaderClass, u32, u32), CachedDestiny>,
}

impl WalkCache {
    /// An empty cache.
    pub fn new() -> Self {
        WalkCache::default()
    }

    /// Number of memoized entries (destinies + warning scans) — for
    /// operator-facing stats output.
    pub fn entries(&self) -> usize {
        self.warnings.len() + self.destinies.len()
    }

    /// Bind the cache to a cluster, dropping everything if the wiring
    /// changed since the last pass.
    pub(crate) fn ensure_cluster(&mut self, fp: u64) {
        if self.cluster_fp != Some(fp) {
            self.warnings.clear();
            self.destinies.clear();
            self.cluster_fp = Some(fp);
        }
    }
}

/// Digest of everything a walk reads besides table content: switch count,
/// port count, cabling, host-port set.
pub(crate) fn cluster_fingerprint(cluster: &PhysicalCluster) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mix = |h: u64, v: u64| (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    h = mix(h, u64::from(cluster.num_switches()));
    h = mix(h, u64::from(cluster.model().ports));
    for l in cluster.links() {
        for p in [l.a, l.b] {
            h = mix(h, u64::from(p.switch) << 16 | u64::from(p.port.0));
        }
    }
    for p in cluster.host_ports() {
        h = mix(h, u64::from(p.switch) << 16 | u64::from(p.port.0) | 1 << 63);
    }
    h
}

/// Do the installed tables have the SDT pipeline shape the fast path
/// needs? (a) Every *live* table-0 rule — metadata-free, since nothing
/// writes metadata before table 0 — constrains no header field, so
/// classify decisions are class-blind. (b) No table-1 rule constrains
/// `in_port`, so route decisions are port-blind.
pub(crate) fn symmetric(view: &TableView) -> bool {
    for sw in 0..view.num_switches() as u32 {
        for e in view.entries(sw, 0) {
            if e.m.metadata.is_none()
                && (e.m.src.is_some()
                    || e.m.dst.is_some()
                    || e.m.l4_src.is_some()
                    || e.m.l4_dst.is_some())
            {
                return false;
            }
        }
        if view.entries(sw, 1).iter().any(|e| e.m.in_port.is_some()) {
            return false;
        }
    }
    true
}

fn empty_set() -> Arc<BTreeSet<u32>> {
    static EMPTY: OnceLock<Arc<BTreeSet<u32>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(BTreeSet::new())).clone()
}

/// Switch-set bloom mask: bit `s & 63` per member. Two sets whose masks
/// AND to zero are provably disjoint (the converse needs an exact set
/// check, since switches past 64 alias); exact below 64 switches.
pub(crate) fn mask_of(set: &BTreeSet<u32>) -> u64 {
    set.iter().fold(0u64, |m, &s| m | 1 << (s & 63))
}

/// Where a packet entering a given `(switch, port)` ends up, independent of
/// its header class (valid only under `symmetric` tables).
#[derive(Clone, Debug)]
pub(crate) enum FateOut {
    /// Dies before any metadata write.
    Dead(DropReason),
    /// Delivered to a host port by direct classify outputs.
    Deliver {
        /// The host port.
        port: PhysPort,
        /// Rule performing the final output.
        via: RuleRef,
    },
    /// Reaches pipeline state `(switch, metadata)` — header-dependent from
    /// here on; continue in `DestinyMemo`.
    State {
        /// Switch whose table 1 takes over.
        sw: u32,
        /// Metadata written by its classify rule.
        md: u32,
    },
}

/// One port's fate plus the switches crossed reaching it (the terminal
/// state's switch included — the walk inserts a switch on arrival).
#[derive(Clone, Debug)]
pub(crate) struct Fate {
    pub(crate) out: FateOut,
    pub(crate) pre: Arc<BTreeSet<u32>>,
    pub(crate) mask: u64,
}

/// Class-independent per-port fate of every `(switch, port)`, precomputed
/// once per pass.
pub(crate) struct FateTable {
    /// `true` iff the tables are `symmetric` and no direct-output cable
    /// cycle exists; `false` disables the entire fast path.
    pub(crate) ok: bool,
    fates: Vec<Option<Fate>>,
    ports: usize,
}

impl FateTable {
    /// Resolve every port's fate. Chains of direct classify outputs across
    /// cables are followed with memoization; a cycle among them (packets
    /// that loop without ever hitting table 1) defeats the state
    /// abstraction, so it conservatively reports `ok = false`.
    pub(crate) fn build(
        cluster: &PhysicalCluster,
        view: &TableView,
        indexes: &[Arc<[EntryIndex; 2]>],
    ) -> FateTable {
        let ports = cluster.model().ports as usize;
        let n = view.num_switches();
        let mut t = FateTable { ok: symmetric(view), fates: vec![None; n * ports], ports };
        if !t.ok {
            return t;
        }
        for sw in 0..n as u32 {
            for port in 0..ports as u16 {
                if t.slot(sw, PortNo(port)).is_some() {
                    continue;
                }
                // Follow direct-output hops until a known fate, a terminal,
                // or a revisit (cable cycle) — then resolve the chain
                // backwards, each hop adding its own switch to `pre`.
                let mut chain: Vec<PhysPort> = Vec::new();
                let mut cur = PhysPort { switch: sw, port: PortNo(port) };
                let base = loop {
                    if let Some(f) = t.slot(cur.switch, cur.port) {
                        break f.clone();
                    }
                    if chain.contains(&cur) {
                        t.ok = false;
                        return t;
                    }
                    match classify_step(cluster, indexes, cur) {
                        ClassifyStep::Terminal(out) => {
                            let pre = Arc::new(BTreeSet::from([cur.switch]));
                            let mask = mask_of(&pre);
                            let f = Fate { out, pre, mask };
                            *t.slot_mut(cur.switch, cur.port) = Some(f.clone());
                            break f;
                        }
                        ClassifyStep::Hop(next) => {
                            chain.push(cur);
                            cur = next;
                        }
                    }
                };
                let mut f = base;
                for &p in chain.iter().rev() {
                    if !f.pre.contains(&p.switch) {
                        let mut set = (*f.pre).clone();
                        set.insert(p.switch);
                        f.mask = mask_of(&set);
                        f.pre = Arc::new(set);
                    }
                    *t.slot_mut(p.switch, p.port) = Some(f.clone());
                }
            }
        }
        t
    }

    fn slot(&self, sw: u32, port: PortNo) -> &Option<Fate> {
        &self.fates[sw as usize * self.ports + port.idx()]
    }

    fn slot_mut(&mut self, sw: u32, port: PortNo) -> &mut Option<Fate> {
        &mut self.fates[sw as usize * self.ports + port.idx()]
    }

    /// The fate of a packet entering at `p`. Every in-range port was
    /// resolved by `FateTable::build`.
    pub(crate) fn fate(&self, p: PhysPort) -> &Fate {
        match self.slot(p.switch, p.port) {
            Some(f) => f,
            None => unreachable!("fate table covers every port when ok"),
        }
    }
}

enum ClassifyStep {
    Terminal(FateOut),
    Hop(PhysPort),
}

/// One class-blind classify decision: the first live (metadata-free)
/// table-0 match at `(switch, in_port)`. Under `symmetric` tables this is
/// exactly the entry the reference walker's class-aware lookup finds for
/// *every* header class: live rules constrain no header field, and
/// metadata-constrained rules fail the reference's match too.
fn classify_step(
    cluster: &PhysicalCluster,
    indexes: &[Arc<[EntryIndex; 2]>],
    at: PhysPort,
) -> ClassifyStep {
    let sw = at.switch;
    let hit = indexes[sw as usize][0].first_match_where(at.port, None, None, |e| {
        e.m.metadata.is_none() && e.m.in_port.is_none_or(|p| p == at.port)
    });
    let Some(&e0) = hit else {
        return ClassifyStep::Terminal(FateOut::Dead(DropReason::Miss { switch: sw, table: 0 }));
    };
    let r0 = RuleRef { switch: sw, table: 0, entry: e0 };
    match e0.action {
        Action::Drop => ClassifyStep::Terminal(FateOut::Dead(DropReason::Rule(r0))),
        Action::WriteMetadataGoto(md) => ClassifyStep::Terminal(FateOut::State { sw, md }),
        Action::Output(p) => {
            let port = PhysPort { switch: sw, port: p };
            if cluster.is_host_port(port) {
                return ClassifyStep::Terminal(FateOut::Deliver { port, via: r0 });
            }
            match cluster.link_at(port) {
                Some(link) => ClassifyStep::Hop(link.other(port)),
                None => ClassifyStep::Terminal(FateOut::Dead(DropReason::Unwired(port))),
            }
        }
    }
}

/// Per-class destiny resolver: maps pipeline states `(switch, metadata)` to
/// their walk verdicts, memoized in-run (arena) and across runs
/// ([`WalkCache`], fingerprint-validated, read-only here — fresh entries
/// are merged back single-threaded after the parallel section).
pub(crate) struct DestinyMemo<'a> {
    view: &'a TableView,
    cluster: &'a PhysicalCluster,
    indexes: &'a [Arc<[EntryIndex; 2]>],
    fates: &'a FateTable,
    class: HeaderClass,
    cache: &'a WalkCache,
    /// Whether fresh entries will be merged into a persistent cache.
    /// When not, [`commit`](Self::commit) skips the dependency-fingerprint
    /// bookkeeping entirely — it exists only to validate future cache hits.
    collect: bool,
    map: HashMap<(u32, u32), usize>,
    arena: Vec<CachedDestiny>,
    empty_deps: Arc<Vec<(u32, TableFp, TableFp)>>,
    /// Arena entries computed this run (cache candidates), as
    /// `(state, arena index)` in computation order.
    pub(crate) fresh: Vec<((u32, u32), usize)>,
    pub(crate) hits: usize,
    pub(crate) misses: usize,
}

impl<'a> DestinyMemo<'a> {
    pub(crate) fn new(
        view: &'a TableView,
        cluster: &'a PhysicalCluster,
        indexes: &'a [Arc<[EntryIndex; 2]>],
        fates: &'a FateTable,
        cache: &'a WalkCache,
        class: HeaderClass,
        collect: bool,
    ) -> Self {
        DestinyMemo {
            view,
            cluster,
            indexes,
            fates,
            class,
            cache,
            collect,
            map: HashMap::new(),
            arena: Vec::new(),
            empty_deps: Arc::new(Vec::new()),
            fresh: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    pub(crate) fn destiny(&self, idx: usize) -> &CachedDestiny {
        &self.arena[idx]
    }

    /// Resolve the destiny of state `(sw, md)` for this memo's class.
    /// Iterative chain walk with cycle detection: a state chain revisiting
    /// itself is exactly a walk that would exhaust the reference budget, so
    /// every state on the cycle is `Looped`.
    pub(crate) fn resolve(&mut self, sw: u32, md: u32) -> usize {
        if let Some(&i) = self.map.get(&(sw, md)) {
            return i;
        }
        let mut chain: Vec<ChainLink> = Vec::new();
        let mut onchain: HashMap<(u32, u32), usize> = HashMap::new();
        let mut cur = (sw, md);
        let base: usize = loop {
            if let Some(&i) = self.map.get(&cur) {
                break i;
            }
            if let Some(cd) = self.cache.destinies.get(&(self.class, cur.0, cur.1)) {
                let valid = cd
                    .deps
                    .iter()
                    .all(|&(s, f0, f1)| self.view.fp(s, 0) == f0 && self.view.fp(s, 1) == f1);
                if valid {
                    self.hits += 1;
                    break self.install(cur, cd.clone(), false);
                }
            }
            self.misses += 1;
            if let Some(&pos) = onchain.get(&cur) {
                break self.close_cycle(&chain, pos);
            }
            match self.route_step(cur) {
                RouteStep::Terminal { out, post, mask } => {
                    break self.commit(cur, out, post, mask);
                }
                RouteStep::Chain { pre, mask, next } => {
                    onchain.insert(cur, chain.len());
                    chain.push((cur, pre, mask));
                    cur = next;
                }
            }
        };
        // Back-resolve the (acyclic remainder of the) chain: each earlier
        // state shares the downstream outcome and adds its edge switches.
        let upto = onchain.get(&cur).copied().unwrap_or(chain.len()).min(chain.len());
        let out = self.arena[base].out.clone();
        let mut post = self.arena[base].post.clone();
        let mut mask = self.arena[base].mask;
        for (state, pre, pmask) in chain[..upto].iter().rev() {
            if !pre.iter().all(|s| post.contains(s)) {
                let mut set = (*post).clone();
                set.extend(pre.iter().copied());
                post = Arc::new(set);
            }
            mask |= pmask;
            self.commit(*state, out.clone(), post.clone(), mask);
        }
        match self.map.get(&(sw, md)) {
            Some(&i) => i,
            None => unreachable!("resolve always installs its own state"),
        }
    }

    /// All states on `chain[pos..]` form one cycle: each is `Looped` and
    /// crosses the union of the cycle's edge switch sets (the walk repeats
    /// the cycle forever, so every cycle state sees the same union).
    fn close_cycle(&mut self, chain: &[ChainLink], pos: usize) -> usize {
        let cycle = &chain[pos..];
        let (post, mask) = match cycle {
            [(_, pre, m)] => (pre.clone(), *m),
            _ => {
                let mut set = BTreeSet::new();
                let mut mask = 0u64;
                for (_, pre, m) in cycle {
                    set.extend(pre.iter().copied());
                    mask |= m;
                }
                (Arc::new(set), mask)
            }
        };
        let mut first = 0;
        for (i, (state, _, _)) in cycle.iter().enumerate() {
            let idx = self.commit(*state, PairOutcome::Looped, post.clone(), mask);
            if i == 0 {
                first = idx;
            }
        }
        first
    }

    /// One header-dependent route step: the table-1 decision at a state.
    /// Port-blind under `symmetric` tables, so `PortNo(0)` stands in for
    /// any actual ingress port — the reference lookup finds the same entry.
    fn route_step(&self, (sw, md): (u32, u32)) -> RouteStep {
        let class = self.class;
        let hit = self.indexes[sw as usize][1]
            .first_match_where(PortNo(0), Some(md), class.dst, |e| {
                entry_matches(e, PortNo(0), Some(md), &class)
            });
        let Some(&e1) = hit else {
            return RouteStep::terminal(PairOutcome::Dropped {
                reason: DropReason::Miss { switch: sw, table: 1 },
            });
        };
        let r1 = RuleRef { switch: sw, table: 1, entry: e1 };
        let p = match e1.action {
            Action::Drop => {
                return RouteStep::terminal(PairOutcome::Dropped { reason: DropReason::Rule(r1) })
            }
            Action::WriteMetadataGoto(_) => {
                return RouteStep::terminal(PairOutcome::Dropped {
                    reason: DropReason::BadGoto(r1),
                })
            }
            Action::Output(p) => p,
        };
        let port = PhysPort { switch: sw, port: p };
        if self.cluster.is_host_port(port) {
            return RouteStep::terminal(PairOutcome::Delivered { port, via: r1 });
        }
        let Some(link) = self.cluster.link_at(port) else {
            return RouteStep::terminal(PairOutcome::Dropped {
                reason: DropReason::Unwired(port),
            });
        };
        let fate = self.fates.fate(link.other(port));
        match &fate.out {
            FateOut::Dead(reason) => RouteStep::Terminal {
                out: PairOutcome::Dropped { reason: reason.clone() },
                post: fate.pre.clone(),
                mask: fate.mask,
            },
            FateOut::Deliver { port, via } => RouteStep::Terminal {
                out: PairOutcome::Delivered { port: *port, via: via.clone() },
                post: fate.pre.clone(),
                mask: fate.mask,
            },
            FateOut::State { sw, md } => {
                RouteStep::Chain { pre: fate.pre.clone(), mask: fate.mask, next: (*sw, *md) }
            }
        }
    }

    /// Build the destiny record for a freshly computed verdict and index it.
    fn commit(
        &mut self,
        state: (u32, u32),
        out: PairOutcome,
        post: Arc<BTreeSet<u32>>,
        mask: u64,
    ) -> usize {
        if !self.collect {
            let cd = CachedDestiny { out, post, mask, deps: self.empty_deps.clone() };
            return self.install(state, cd, false);
        }
        let mut deps: Vec<(u32, TableFp, TableFp)> = post
            .iter()
            .map(|&s| (s, self.view.fp(s, 0), self.view.fp(s, 1)))
            .collect();
        if !post.contains(&state.0) {
            deps.push((state.0, self.view.fp(state.0, 0), self.view.fp(state.0, 1)));
        }
        let cd = CachedDestiny { out, post, mask, deps: Arc::new(deps) };
        self.install(state, cd, true)
    }

    fn install(&mut self, state: (u32, u32), cd: CachedDestiny, fresh: bool) -> usize {
        let idx = self.arena.len();
        self.arena.push(cd);
        self.map.insert(state, idx);
        if fresh {
            self.fresh.push((state, idx));
        }
        idx
    }

    /// Drain the fresh entries as `(key, destiny)` pairs for the
    /// single-threaded post-merge into the persistent cache.
    pub(crate) fn fresh_entries(&self) -> Vec<((HeaderClass, u32, u32), CachedDestiny)> {
        self.fresh
            .iter()
            .map(|&((sw, md), idx)| ((self.class, sw, md), self.arena[idx].clone()))
            .collect()
    }
}

/// One pending link of a destiny chain walk: the state, the switches the
/// edge to the next state crosses, and that edge's mask.
type ChainLink = ((u32, u32), Arc<BTreeSet<u32>>, u64);

enum RouteStep {
    Terminal { out: PairOutcome, post: Arc<BTreeSet<u32>>, mask: u64 },
    Chain { pre: Arc<BTreeSet<u32>>, mask: u64, next: (u32, u32) },
}

impl RouteStep {
    fn terminal(out: PairOutcome) -> RouteStep {
        RouteStep::Terminal { out, post: empty_set(), mask: 0 }
    }
}

/// Shared empty switch set for terminal fates/destinies.
pub(crate) fn no_switches() -> Arc<BTreeSet<u32>> {
    empty_set()
}
