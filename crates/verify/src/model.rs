//! Symbolic model of the deployed data plane: a mutable snapshot of every
//! flow table ([`TableView`]), the operator's connectivity intent
//! ([`Intent`]), and the finite header-equivalence-class machinery that
//! makes exhaustive analysis tractable.

use std::collections::BTreeSet;
use std::sync::Arc;

use sdt_core::cluster::PhysPort;
use sdt_core::synthesis::{addr_of, SynthesisOutput};
use sdt_core::SdtProjection;
use sdt_openflow::{entry_fp, table_fp, FlowEntry, FlowMod, HostAddr, OpenFlowSwitch, TableFp};
use sdt_topology::{HostId, Topology};

/// One switch's slice of a [`TableView`]: its two tables in `FlowTable`
/// order (descending priority, stable insertion order within a level),
/// the parallel install sequence numbers and next-install counters (same
/// values the live [`sdt_openflow::FlowTable`] assigns, so content
/// fingerprints agree between a snapshot and the tables it was taken
/// from), and the incremental per-table fingerprints.
#[derive(Clone, Debug, Default)]
struct SwitchView {
    tables: [Vec<FlowEntry>; 2],
    seqs: [Vec<u64>; 2],
    next_seqs: [u64; 2],
    fps: [TableFp; 2],
}

/// A side-effect-free snapshot of every flow table in the cluster, mutable
/// under [`FlowMod`] semantics.
///
/// The verifier never calls [`sdt_openflow::FlowTable::lookup`] or
/// [`OpenFlowSwitch::forward`] — both bump lookup/port counters, and the
/// whole point of static checking is to prove properties with **zero packet
/// injections** (the differential test asserts the counters stay at zero).
/// Instead the entry lists are copied out once and matched symbolically.
///
/// Per-switch state is `Arc`-shared copy-on-write: cloning a view costs one
/// pointer per switch, and [`TableView::apply`] deep-copies only the switch
/// it mutates — the clone-then-apply pattern every delta check uses touches
/// exactly the batch's switches.
#[derive(Clone, Debug, Default)]
pub struct TableView {
    switches: Vec<Arc<SwitchView>>,
}

impl TableView {
    /// An all-empty view for `num_switches` switches. All slots share one
    /// `Arc` — [`TableView::apply`] copies-on-write before mutating.
    pub fn empty(num_switches: usize) -> Self {
        let empty = Arc::new(SwitchView::default());
        TableView { switches: vec![empty; num_switches] }
    }

    /// Snapshot the live tables of a switch bank. Reads
    /// [`sdt_openflow::FlowTable::entries`] only — no lookups, no counters.
    /// Sequence numbers and fingerprints are copied, not recomputed, so a
    /// snapshot's fingerprints equal the live tables' and walk proofs cached
    /// against one validate against the other.
    pub fn of_switches(switches: &[OpenFlowSwitch]) -> Self {
        TableView {
            switches: switches
                .iter()
                .map(|s| {
                    Arc::new(SwitchView {
                        tables: [s.table(0).entries().to_vec(), s.table(1).entries().to_vec()],
                        seqs: [s.table(0).entry_seqs().to_vec(), s.table(1).entry_seqs().to_vec()],
                        next_seqs: [s.table(0).next_seq(), s.table(1).next_seq()],
                        fps: [s.table(0).fingerprint(), s.table(1).fingerprint()],
                    })
                })
                .collect(),
        }
    }

    /// View of a synthesized (not yet installed) pipeline — the shape the
    /// tables *would* have after installation. Entries are ordered exactly
    /// as `FlowTable::apply` would order them: stable sort by descending
    /// priority. Sequence numbers are the pre-sort arrival positions — the
    /// install counter values `FlowTable::apply` would assign when the
    /// synthesis list is installed in order — so the synthesized
    /// fingerprint equals the freshly-installed live fingerprint.
    pub fn of_synthesis(s: &SynthesisOutput) -> Self {
        let order = |entries: &[FlowEntry]| {
            let mut v: Vec<(u64, FlowEntry)> =
                entries.iter().enumerate().map(|(i, &e)| (i as u64, e)).collect();
            v.sort_by_key(|(_, e)| std::cmp::Reverse(e.priority));
            let seqs: Vec<u64> = v.iter().map(|&(s, _)| s).collect();
            let ents: Vec<FlowEntry> = v.into_iter().map(|(_, e)| e).collect();
            (ents, seqs)
        };
        let mut view = TableView::default();
        for (t0, t1) in s.table0.iter().zip(&s.table1) {
            let (e0, s0) = order(t0);
            let (e1, s1) = order(t1);
            view.switches.push(Arc::new(SwitchView {
                fps: [table_fp(&e0, &s0), table_fp(&e1, &s1)],
                next_seqs: [s0.len() as u64, s1.len() as u64],
                tables: [e0, e1],
                seqs: [s0, s1],
            }));
        }
        view
    }

    /// Number of switches in the view.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Entries of one table, descending priority.
    pub fn entries(&self, switch: u32, table: u8) -> &[FlowEntry] {
        &self.switches[switch as usize].tables[usize::from(table)]
    }

    /// Content fingerprint of one table — the verifier's memoization key.
    pub fn fp(&self, switch: u32, table: u8) -> TableFp {
        self.switches[switch as usize].fps[usize::from(table)]
    }

    /// Apply one flow-mod with the same semantics as `FlowTable::apply`
    /// (minus capacity, which admission checks separately), keeping seqs
    /// and fingerprints in lock-step with what the live table would hold.
    /// Copy-on-write: only this switch's state is cloned (and only when
    /// shared with another view).
    pub fn apply(&mut self, switch: u32, table: u8, m: &FlowMod) {
        let tb = usize::from(table);
        let s = Arc::make_mut(&mut self.switches[switch as usize]);
        let t = &mut s.tables[tb];
        let seqs = &mut s.seqs[tb];
        let fp = &mut s.fps[tb];
        match m {
            FlowMod::Add(e) => {
                let seq = s.next_seqs[tb];
                s.next_seqs[tb] += 1;
                let pos = t.partition_point(|x| x.priority >= e.priority);
                t.insert(pos, *e);
                seqs.insert(pos, seq);
                fp.absorb(entry_fp(seq, e));
            }
            FlowMod::Clear => {
                t.clear();
                seqs.clear();
                s.next_seqs[tb] = 0;
                *fp = TableFp::default();
            }
            FlowMod::Delete(fm, priority) => {
                let mut i = 0;
                while i < t.len() {
                    if t[i].m == *fm && t[i].priority == *priority {
                        fp.release(entry_fp(seqs[i], &t[i]));
                        t.remove(i);
                        seqs.remove(i);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }
}

/// One host the operator expects the fabric to serve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntentHost {
    /// Index into [`Intent::domains`].
    pub domain: usize,
    /// Host id within its domain's logical topology.
    pub host: HostId,
    /// Fabric-wide address the pipeline routes on.
    pub addr: HostAddr,
    /// Primary attachment port — where this host's packets enter.
    pub ingress: PhysPort,
    /// Every physical port wired to this host (multi-homed hosts have
    /// several); delivery through any of them reaches the host.
    pub ports: Vec<PhysPort>,
    /// Connectivity group within the domain: hosts in different groups
    /// (disconnected components of the logical topology) are *expected* to
    /// be mutually unreachable.
    pub group: u32,
}

/// The connectivity contract the tables must implement: which hosts exist,
/// where they attach, and which pairs must (and must not) reach each other.
///
/// A *domain* is one isolation unit — a whole deployment for the
/// single-tenant controller, one slice for the tenancy layer. The expected
/// verdict for an ordered host pair is: **deliver** iff same domain and same
/// connectivity group, **drop** otherwise.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Intent {
    /// Domain labels, used in findings (`"fat-tree-k4"`, `"slice-3:ml"`, …).
    pub domains: Vec<String>,
    /// Every host, across all domains.
    pub hosts: Vec<IntentHost>,
}

impl Intent {
    /// An empty intent (no hosts — every delivery is a leak).
    pub fn new() -> Self {
        Intent::default()
    }

    /// Intent of a single-tenant deployment: one domain holding the whole
    /// topology, host addresses from [`addr_of`].
    pub fn of_projection(proj: &SdtProjection, topo: &Topology, label: &str) -> Self {
        let mut intent = Intent::new();
        intent.push_domain(label, topo, proj, addr_of);
        intent
    }

    /// Append one domain (topology + its projection) to the intent.
    /// `addr` maps the domain's logical hosts to their fabric-wide
    /// addresses (slices pass their namespaced `Slice::host_addr`).
    pub fn push_domain(
        &mut self,
        label: &str,
        topo: &Topology,
        proj: &SdtProjection,
        addr: impl Fn(HostId) -> HostAddr,
    ) -> usize {
        let domain = self.domains.len();
        self.domains.push(label.to_string());
        let comp = topo.component_of();
        for h in 0..topo.num_hosts() {
            let h = HostId(h);
            let mut ports: Vec<PhysPort> = topo
                .attachments(h)
                .iter()
                .map(|&(_, lid)| proj.host_port[&(h, lid)])
                .collect();
            ports.sort();
            self.hosts.push(IntentHost {
                domain,
                host: h,
                addr: addr(h),
                ingress: proj.primary_host_port(topo, h),
                ports,
                group: comp[topo.host_switch(h).idx()],
            });
        }
        domain
    }

    /// Should a packet from host `i` reach host `j`? (Indexes into
    /// [`Intent::hosts`].)
    pub fn expects_delivery(&self, i: usize, j: usize) -> bool {
        let (a, b) = (&self.hosts[i], &self.hosts[j]);
        a.domain == b.domain && a.group == b.group
    }
}

/// The concrete values each header field is compared against anywhere in
/// the table set. Two packets agreeing on which of these values they carry
/// (or carrying none of them) are matched identically by every rule, so one
/// representative per equivalence class suffices — the standard
/// header-space/VeriFlow argument, exact here because every match field is
/// equality-or-wildcard (no ranges, no masks).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeaderValues {
    srcs: Vec<HostAddr>,
    dsts: Vec<HostAddr>,
    l4_srcs: Vec<u16>,
    l4_dsts: Vec<u16>,
}

/// One header equivalence class: per field, either a concrete value some
/// rule tests, or `None` — the *fresh* class of values no rule anywhere
/// mentions (all such values are indistinguishable to the pipeline).
/// `in_port` and pipeline metadata are switch-local state, not packet
/// header, and are enumerated by the walk itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HeaderClass {
    /// Source-address class.
    pub src: Option<HostAddr>,
    /// Destination-address class.
    pub dst: Option<HostAddr>,
    /// L4 source port class.
    pub l4_src: Option<u16>,
    /// L4 destination port class.
    pub l4_dst: Option<u16>,
}

impl HeaderValues {
    /// Collect the value sets from every rule in the view.
    pub fn collect(view: &TableView) -> Self {
        let mut srcs = BTreeSet::new();
        let mut dsts = BTreeSet::new();
        let mut l4_srcs = BTreeSet::new();
        let mut l4_dsts = BTreeSet::new();
        for sw in 0..view.num_switches() as u32 {
            for table in 0..2 {
                for e in view.entries(sw, table) {
                    srcs.extend(e.m.src);
                    dsts.extend(e.m.dst);
                    l4_srcs.extend(e.m.l4_src);
                    l4_dsts.extend(e.m.l4_dst);
                }
            }
        }
        HeaderValues {
            srcs: srcs.into_iter().collect(),
            dsts: dsts.into_iter().collect(),
            l4_srcs: l4_srcs.into_iter().collect(),
            l4_dsts: l4_dsts.into_iter().collect(),
        }
    }

    /// Every header class: the cross product of per-field value sets, each
    /// extended with the fresh class. This is the complete, finite partition
    /// of packet-header space the loop scan must cover.
    pub fn classes(&self) -> Vec<HeaderClass> {
        fn with_fresh<T: Copy>(vs: &[T]) -> Vec<Option<T>> {
            let mut out: Vec<Option<T>> = vs.iter().copied().map(Some).collect();
            out.push(None);
            out
        }
        let mut classes = Vec::new();
        for &src in &with_fresh(&self.srcs) {
            for &dst in &with_fresh(&self.dsts) {
                for &l4_src in &with_fresh(&self.l4_srcs) {
                    for &l4_dst in &with_fresh(&self.l4_dsts) {
                        classes.push(HeaderClass { src, dst, l4_src, l4_dst });
                    }
                }
            }
        }
        classes
    }

    /// Size of the partition [`HeaderValues::classes`] enumerates, without
    /// materializing it: per-field value count plus the fresh class, as a
    /// product.
    pub fn num_classes(&self) -> usize {
        (self.srcs.len() + 1)
            * (self.dsts.len() + 1)
            * (self.l4_srcs.len() + 1)
            * (self.l4_dsts.len() + 1)
    }

    /// Source-address values some rule tests, ascending.
    pub(crate) fn srcs(&self) -> &[HostAddr] {
        &self.srcs
    }

    /// Destination-address values some rule tests, ascending.
    pub(crate) fn dsts(&self) -> &[HostAddr] {
        &self.dsts
    }

    /// The class a concrete packet header falls into: each field keeps its
    /// value if some rule tests it, else collapses to the fresh class.
    pub fn class_of(&self, src: HostAddr, dst: HostAddr, l4_src: u16, l4_dst: u16) -> HeaderClass {
        fn keep<T: Ord + Copy>(vs: &[T], v: T) -> Option<T> {
            vs.binary_search(&v).ok().map(|_| v)
        }
        HeaderClass {
            src: keep(&self.srcs, src),
            dst: keep(&self.dsts, dst),
            l4_src: keep(&self.l4_srcs, l4_src),
            l4_dst: keep(&self.l4_dsts, l4_dst),
        }
    }
}

/// Symbolic match: does `m` fit a packet of class `h` entering on
/// `in_port` with pipeline `metadata`? Mirrors `FlowMatch::matches` exactly,
/// with the fresh class (`None`) failing every concrete field test.
pub(crate) fn entry_matches(
    e: &FlowEntry,
    in_port: sdt_openflow::PortNo,
    metadata: Option<u32>,
    h: &HeaderClass,
) -> bool {
    fn ok<T: PartialEq>(rule: Option<T>, class: Option<T>) -> bool {
        match rule {
            None => true,
            Some(v) => class == Some(v),
        }
    }
    let meta_ok = match e.m.metadata {
        None => true,
        Some(want) => metadata == Some(want),
    };
    meta_ok
        && e.m.in_port.is_none_or(|p| p == in_port)
        && ok(e.m.src, h.src)
        && ok(e.m.dst, h.dst)
        && ok(e.m.l4_src, h.l4_src)
        && ok(e.m.l4_dst, h.l4_dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdt_openflow::{Action, FlowMatch, PortNo};

    #[test]
    fn view_apply_mirrors_flow_table_order() {
        let mut v = TableView::empty(1);
        let e = |p: u16, port: u16| FlowEntry {
            m: FlowMatch::on_port(PortNo(port)),
            priority: p,
            action: Action::Drop,
        };
        v.apply(0, 0, &FlowMod::Add(e(5, 0)));
        v.apply(0, 0, &FlowMod::Add(e(9, 1)));
        v.apply(0, 0, &FlowMod::Add(e(5, 2)));
        let prios: Vec<u16> = v.entries(0, 0).iter().map(|e| e.priority).collect();
        assert_eq!(prios, [9, 5, 5]);
        // Stable within a level: port 0 entry installed before port 2.
        assert_eq!(v.entries(0, 0)[1].m.in_port, Some(PortNo(0)));
        v.apply(0, 0, &FlowMod::Delete(FlowMatch::on_port(PortNo(1)), 9));
        assert_eq!(v.entries(0, 0).len(), 2);
    }

    #[test]
    fn view_fingerprints_track_flow_table_fingerprints() {
        use sdt_openflow::{FlowTable, TableFp};
        let e = |p: u16, dst: u32| FlowEntry {
            m: FlowMatch::to_dst(HostAddr(dst)),
            priority: p,
            action: Action::Drop,
        };
        let mods = [
            FlowMod::Add(e(5, 1)),
            FlowMod::Add(e(9, 2)),
            FlowMod::Add(e(5, 3)),
            FlowMod::Delete(FlowMatch::to_dst(HostAddr(2)), 9),
            FlowMod::Add(e(7, 4)),
        ];
        let mut live = FlowTable::new(64);
        let mut view = TableView::empty(1);
        for m in &mods {
            live.apply(m.clone()).unwrap();
            view.apply(0, 0, m);
            assert_eq!(view.fp(0, 0), live.fingerprint(), "after {m:?}");
        }
        assert_ne!(view.fp(0, 0), TableFp::default());
        view.apply(0, 0, &FlowMod::Clear);
        live.apply(FlowMod::Clear).unwrap();
        assert_eq!(view.fp(0, 0), live.fingerprint());
        assert_eq!(view.fp(0, 0), TableFp::default());
        // Post-clear installs restart the seq counter identically.
        view.apply(0, 0, &FlowMod::Add(e(5, 1)));
        live.apply(FlowMod::Add(e(5, 1))).unwrap();
        assert_eq!(view.fp(0, 0), live.fingerprint());
    }

    #[test]
    fn fresh_class_fails_concrete_tests() {
        let e = FlowEntry {
            m: FlowMatch::to_dst(HostAddr(7)),
            priority: 1,
            action: Action::Drop,
        };
        let hit = HeaderClass { src: None, dst: Some(HostAddr(7)), l4_src: None, l4_dst: None };
        let fresh = HeaderClass { src: None, dst: None, l4_src: None, l4_dst: None };
        assert!(entry_matches(&e, PortNo(0), None, &hit));
        assert!(!entry_matches(&e, PortNo(0), None, &fresh));
    }

    #[test]
    fn class_of_collapses_unknown_values() {
        let mut v = TableView::empty(1);
        v.apply(
            0,
            1,
            &FlowMod::Add(FlowEntry {
                m: FlowMatch::to_dst(HostAddr(3)),
                priority: 1,
                action: Action::Drop,
            }),
        );
        let vals = HeaderValues::collect(&v);
        let c = vals.class_of(HostAddr(9), HostAddr(3), 4791, 4791);
        assert_eq!(c, HeaderClass { src: None, dst: Some(HostAddr(3)), l4_src: None, l4_dst: None });
        // 2 dst classes (3 + fresh) × 1 × 1 × 1.
        assert_eq!(vals.classes().len(), 2);
        assert_eq!(vals.num_classes(), vals.classes().len());
    }
}
