//! Symbolic model of the deployed data plane: a mutable snapshot of every
//! flow table ([`TableView`]), the operator's connectivity intent
//! ([`Intent`]), and the finite header-equivalence-class machinery that
//! makes exhaustive analysis tractable.

use std::collections::BTreeSet;

use sdt_core::cluster::PhysPort;
use sdt_core::synthesis::{addr_of, SynthesisOutput};
use sdt_core::SdtProjection;
use sdt_openflow::{FlowEntry, FlowMod, HostAddr, OpenFlowSwitch};
use sdt_topology::{HostId, Topology};

/// A side-effect-free snapshot of every flow table in the cluster, mutable
/// under [`FlowMod`] semantics.
///
/// The verifier never calls [`sdt_openflow::FlowTable::lookup`] or
/// [`OpenFlowSwitch::forward`] — both bump lookup/port counters, and the
/// whole point of static checking is to prove properties with **zero packet
/// injections** (the differential test asserts the counters stay at zero).
/// Instead the entry lists are copied out once and matched symbolically.
#[derive(Clone, Debug, Default)]
pub struct TableView {
    /// Per physical switch, tables 0 and 1, in `FlowTable` order
    /// (descending priority, stable insertion order within a level).
    tables: Vec<[Vec<FlowEntry>; 2]>,
}

impl TableView {
    /// An all-empty view for `num_switches` switches.
    pub fn empty(num_switches: usize) -> Self {
        TableView { tables: vec![[Vec::new(), Vec::new()]; num_switches] }
    }

    /// Snapshot the live tables of a switch bank. Reads
    /// [`sdt_openflow::FlowTable::entries`] only — no lookups, no counters.
    pub fn of_switches(switches: &[OpenFlowSwitch]) -> Self {
        TableView {
            tables: switches
                .iter()
                .map(|s| [s.table(0).entries().to_vec(), s.table(1).entries().to_vec()])
                .collect(),
        }
    }

    /// View of a synthesized (not yet installed) pipeline — the shape the
    /// tables *would* have after installation. Entries are ordered exactly
    /// as `FlowTable::apply` would order them: stable sort by descending
    /// priority.
    pub fn of_synthesis(s: &SynthesisOutput) -> Self {
        let order = |entries: &[FlowEntry]| {
            let mut v = entries.to_vec();
            v.sort_by_key(|e| std::cmp::Reverse(e.priority));
            v
        };
        TableView {
            tables: s
                .table0
                .iter()
                .zip(&s.table1)
                .map(|(t0, t1)| [order(t0), order(t1)])
                .collect(),
        }
    }

    /// Number of switches in the view.
    pub fn num_switches(&self) -> usize {
        self.tables.len()
    }

    /// Entries of one table, descending priority.
    pub fn entries(&self, switch: u32, table: u8) -> &[FlowEntry] {
        &self.tables[switch as usize][usize::from(table)]
    }

    /// Apply one flow-mod with the same semantics as `FlowTable::apply`
    /// (minus capacity, which admission checks separately).
    pub fn apply(&mut self, switch: u32, table: u8, m: &FlowMod) {
        let t = &mut self.tables[switch as usize][usize::from(table)];
        match m {
            FlowMod::Add(e) => {
                let pos = t.partition_point(|x| x.priority >= e.priority);
                t.insert(pos, *e);
            }
            FlowMod::Clear => t.clear(),
            FlowMod::Delete(fm, priority) => {
                t.retain(|e| !(e.m == *fm && e.priority == *priority));
            }
        }
    }
}

/// One host the operator expects the fabric to serve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntentHost {
    /// Index into [`Intent::domains`].
    pub domain: usize,
    /// Host id within its domain's logical topology.
    pub host: HostId,
    /// Fabric-wide address the pipeline routes on.
    pub addr: HostAddr,
    /// Primary attachment port — where this host's packets enter.
    pub ingress: PhysPort,
    /// Every physical port wired to this host (multi-homed hosts have
    /// several); delivery through any of them reaches the host.
    pub ports: Vec<PhysPort>,
    /// Connectivity group within the domain: hosts in different groups
    /// (disconnected components of the logical topology) are *expected* to
    /// be mutually unreachable.
    pub group: u32,
}

/// The connectivity contract the tables must implement: which hosts exist,
/// where they attach, and which pairs must (and must not) reach each other.
///
/// A *domain* is one isolation unit — a whole deployment for the
/// single-tenant controller, one slice for the tenancy layer. The expected
/// verdict for an ordered host pair is: **deliver** iff same domain and same
/// connectivity group, **drop** otherwise.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Intent {
    /// Domain labels, used in findings (`"fat-tree-k4"`, `"slice-3:ml"`, …).
    pub domains: Vec<String>,
    /// Every host, across all domains.
    pub hosts: Vec<IntentHost>,
}

impl Intent {
    /// An empty intent (no hosts — every delivery is a leak).
    pub fn new() -> Self {
        Intent::default()
    }

    /// Intent of a single-tenant deployment: one domain holding the whole
    /// topology, host addresses from [`addr_of`].
    pub fn of_projection(proj: &SdtProjection, topo: &Topology, label: &str) -> Self {
        let mut intent = Intent::new();
        intent.push_domain(label, topo, proj, addr_of);
        intent
    }

    /// Append one domain (topology + its projection) to the intent.
    /// `addr` maps the domain's logical hosts to their fabric-wide
    /// addresses (slices pass their namespaced `Slice::host_addr`).
    pub fn push_domain(
        &mut self,
        label: &str,
        topo: &Topology,
        proj: &SdtProjection,
        addr: impl Fn(HostId) -> HostAddr,
    ) -> usize {
        let domain = self.domains.len();
        self.domains.push(label.to_string());
        let comp = topo.component_of();
        for h in 0..topo.num_hosts() {
            let h = HostId(h);
            let mut ports: Vec<PhysPort> = topo
                .attachments(h)
                .iter()
                .map(|&(_, lid)| proj.host_port[&(h, lid)])
                .collect();
            ports.sort();
            self.hosts.push(IntentHost {
                domain,
                host: h,
                addr: addr(h),
                ingress: proj.primary_host_port(topo, h),
                ports,
                group: comp[topo.host_switch(h).idx()],
            });
        }
        domain
    }

    /// Should a packet from host `i` reach host `j`? (Indexes into
    /// [`Intent::hosts`].)
    pub fn expects_delivery(&self, i: usize, j: usize) -> bool {
        let (a, b) = (&self.hosts[i], &self.hosts[j]);
        a.domain == b.domain && a.group == b.group
    }
}

/// The concrete values each header field is compared against anywhere in
/// the table set. Two packets agreeing on which of these values they carry
/// (or carrying none of them) are matched identically by every rule, so one
/// representative per equivalence class suffices — the standard
/// header-space/VeriFlow argument, exact here because every match field is
/// equality-or-wildcard (no ranges, no masks).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeaderValues {
    srcs: Vec<HostAddr>,
    dsts: Vec<HostAddr>,
    l4_srcs: Vec<u16>,
    l4_dsts: Vec<u16>,
}

/// One header equivalence class: per field, either a concrete value some
/// rule tests, or `None` — the *fresh* class of values no rule anywhere
/// mentions (all such values are indistinguishable to the pipeline).
/// `in_port` and pipeline metadata are switch-local state, not packet
/// header, and are enumerated by the walk itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HeaderClass {
    /// Source-address class.
    pub src: Option<HostAddr>,
    /// Destination-address class.
    pub dst: Option<HostAddr>,
    /// L4 source port class.
    pub l4_src: Option<u16>,
    /// L4 destination port class.
    pub l4_dst: Option<u16>,
}

impl HeaderValues {
    /// Collect the value sets from every rule in the view.
    pub fn collect(view: &TableView) -> Self {
        let mut srcs = BTreeSet::new();
        let mut dsts = BTreeSet::new();
        let mut l4_srcs = BTreeSet::new();
        let mut l4_dsts = BTreeSet::new();
        for sw in 0..view.num_switches() as u32 {
            for table in 0..2 {
                for e in view.entries(sw, table) {
                    srcs.extend(e.m.src);
                    dsts.extend(e.m.dst);
                    l4_srcs.extend(e.m.l4_src);
                    l4_dsts.extend(e.m.l4_dst);
                }
            }
        }
        HeaderValues {
            srcs: srcs.into_iter().collect(),
            dsts: dsts.into_iter().collect(),
            l4_srcs: l4_srcs.into_iter().collect(),
            l4_dsts: l4_dsts.into_iter().collect(),
        }
    }

    /// Every header class: the cross product of per-field value sets, each
    /// extended with the fresh class. This is the complete, finite partition
    /// of packet-header space the loop scan must cover.
    pub fn classes(&self) -> Vec<HeaderClass> {
        fn with_fresh<T: Copy>(vs: &[T]) -> Vec<Option<T>> {
            let mut out: Vec<Option<T>> = vs.iter().copied().map(Some).collect();
            out.push(None);
            out
        }
        let mut classes = Vec::new();
        for &src in &with_fresh(&self.srcs) {
            for &dst in &with_fresh(&self.dsts) {
                for &l4_src in &with_fresh(&self.l4_srcs) {
                    for &l4_dst in &with_fresh(&self.l4_dsts) {
                        classes.push(HeaderClass { src, dst, l4_src, l4_dst });
                    }
                }
            }
        }
        classes
    }

    /// Size of the partition [`HeaderValues::classes`] enumerates, without
    /// materializing it: per-field value count plus the fresh class, as a
    /// product.
    pub fn num_classes(&self) -> usize {
        (self.srcs.len() + 1)
            * (self.dsts.len() + 1)
            * (self.l4_srcs.len() + 1)
            * (self.l4_dsts.len() + 1)
    }

    /// The class a concrete packet header falls into: each field keeps its
    /// value if some rule tests it, else collapses to the fresh class.
    pub fn class_of(&self, src: HostAddr, dst: HostAddr, l4_src: u16, l4_dst: u16) -> HeaderClass {
        fn keep<T: Ord + Copy>(vs: &[T], v: T) -> Option<T> {
            vs.binary_search(&v).ok().map(|_| v)
        }
        HeaderClass {
            src: keep(&self.srcs, src),
            dst: keep(&self.dsts, dst),
            l4_src: keep(&self.l4_srcs, l4_src),
            l4_dst: keep(&self.l4_dsts, l4_dst),
        }
    }
}

/// Symbolic match: does `m` fit a packet of class `h` entering on
/// `in_port` with pipeline `metadata`? Mirrors `FlowMatch::matches` exactly,
/// with the fresh class (`None`) failing every concrete field test.
pub(crate) fn entry_matches(
    e: &FlowEntry,
    in_port: sdt_openflow::PortNo,
    metadata: Option<u32>,
    h: &HeaderClass,
) -> bool {
    fn ok<T: PartialEq>(rule: Option<T>, class: Option<T>) -> bool {
        match rule {
            None => true,
            Some(v) => class == Some(v),
        }
    }
    let meta_ok = match e.m.metadata {
        None => true,
        Some(want) => metadata == Some(want),
    };
    meta_ok
        && e.m.in_port.is_none_or(|p| p == in_port)
        && ok(e.m.src, h.src)
        && ok(e.m.dst, h.dst)
        && ok(e.m.l4_src, h.l4_src)
        && ok(e.m.l4_dst, h.l4_dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdt_openflow::{Action, FlowMatch, PortNo};

    #[test]
    fn view_apply_mirrors_flow_table_order() {
        let mut v = TableView::empty(1);
        let e = |p: u16, port: u16| FlowEntry {
            m: FlowMatch::on_port(PortNo(port)),
            priority: p,
            action: Action::Drop,
        };
        v.apply(0, 0, &FlowMod::Add(e(5, 0)));
        v.apply(0, 0, &FlowMod::Add(e(9, 1)));
        v.apply(0, 0, &FlowMod::Add(e(5, 2)));
        let prios: Vec<u16> = v.entries(0, 0).iter().map(|e| e.priority).collect();
        assert_eq!(prios, [9, 5, 5]);
        // Stable within a level: port 0 entry installed before port 2.
        assert_eq!(v.entries(0, 0)[1].m.in_port, Some(PortNo(0)));
        v.apply(0, 0, &FlowMod::Delete(FlowMatch::on_port(PortNo(1)), 9));
        assert_eq!(v.entries(0, 0).len(), 2);
    }

    #[test]
    fn fresh_class_fails_concrete_tests() {
        let e = FlowEntry {
            m: FlowMatch::to_dst(HostAddr(7)),
            priority: 1,
            action: Action::Drop,
        };
        let hit = HeaderClass { src: None, dst: Some(HostAddr(7)), l4_src: None, l4_dst: None };
        let fresh = HeaderClass { src: None, dst: None, l4_src: None, l4_dst: None };
        assert!(entry_matches(&e, PortNo(0), None, &hit));
        assert!(!entry_matches(&e, PortNo(0), None, &fresh));
    }

    #[test]
    fn class_of_collapses_unknown_values() {
        let mut v = TableView::empty(1);
        v.apply(
            0,
            1,
            &FlowMod::Add(FlowEntry {
                m: FlowMatch::to_dst(HostAddr(3)),
                priority: 1,
                action: Action::Drop,
            }),
        );
        let vals = HeaderValues::collect(&v);
        let c = vals.class_of(HostAddr(9), HostAddr(3), 4791, 4791);
        assert_eq!(c, HeaderClass { src: None, dst: Some(HostAddr(3)), l4_src: None, l4_dst: None });
        // 2 dst classes (3 + fresh) × 1 × 1 × 1.
        assert_eq!(vals.classes().len(), 2);
        assert_eq!(vals.num_classes(), vals.classes().len());
    }
}
