//! Static data-plane verification for SDT (`sdt-verify`).
//!
//! Every other correctness check in this workspace is *dynamic*: walk a
//! synthetic packet through live tables ([`sdt_core::walk_packet`]), or
//! probe the full cross-slice matrix (`SliceAudit`). This crate proves the
//! same properties — and more — *symbolically*, from nothing but the
//! physical wiring and the installed [`sdt_openflow::FlowEntry`] lists,
//! with **zero packet injections** (no lookup or port counter moves):
//!
//! 1. **Loop detection** — any cycle in the projected forwarding
//!    port-graph, reported as the rule chain that forms it
//!    ([`LoopFinding`]).
//! 2. **Blackhole detection** — host pairs the intent expects to
//!    communicate whose match space dead-ends in a drop rule, a table
//!    miss, or an unwired port ([`BlackholeFinding`]).
//! 3. **Static isolation proof** — the exact reachability closure over
//!    every ordered host pair, so any cross-domain (cross-slice,
//!    cross-component) delivery is a leak with the offending rule named
//!    ([`LeakFinding`]). This subsumes the pairwise-only
//!    [`sdt_openflow::shadowed_entries`] diagnostic: the closure is
//!    computed from first-match semantics with union-complete shadow
//!    analysis ([`sdt_openflow::shadowed_entries_in`]).
//! 4. **Incremental epoch checking** — [`Verifier::check_delta`] verifies a
//!    pending flow-mod batch against the *current* tables plus the delta,
//!    VeriFlow-style: only the switches the batch touches are rescanned and
//!    only the host pairs whose forwarding path crosses them are re-walked,
//!    so admission-time gating costs O(delta), not O(network).
//!
//! Exhaustiveness is affordable because the match algebra is
//! equality-or-wildcard: collecting the concrete values each header field
//! is compared against anywhere, plus one "fresh" value per field, yields
//! an exact finite partition of header space ([`HeaderValues`]); two
//! packets in the same class take identical decisions at every rule, so
//! one symbolic walk per class covers all packets.
//!
//! # Verification at scale
//!
//! The exhaustive walk is collapsed, memoized and sharded (see
//! [`mod@fast`]): structurally equivalent `(ingress, header-class)` walks
//! share one representative, per-class verdicts persist across passes in a
//! [`WalkCache`] keyed on table content fingerprints
//! ([`sdt_openflow::TableFp`]), and class jobs spread over cores
//! weighted-heaviest-first. All of it is *transparent*: whenever a
//! precondition fails the pass falls back to the reference walker, and
//! findings are byte-identical either way ([`Verifier::stats`] reports what
//! was saved). Callers that verify repeatedly pass a long-lived cache to
//! [`Verifier::check_cached`] / [`Verifier::check_delta_cached`].

pub mod analysis;
pub mod fast;
pub mod model;
pub mod shared;

pub use analysis::{
    BlackholeFinding, DropReason, LeakFinding, LoopFinding, NondetFinding, RuleRef,
    ShadowFinding, Verifier, VerifyReport,
};
pub use fast::{VerifyStats, WalkCache};
pub use model::{HeaderClass, HeaderValues, Intent, IntentHost, TableView};
pub use shared::{CacheLease, SharedCache};

/// The walk cache in its shareable form: leased for each verify pass,
/// generation-guarded against concurrent invalidation. This is what
/// long-lived owners (`SliceManager`, the daemon) hold; one-shot callers
/// can keep passing a plain [`WalkCache`].
pub type SharedWalkCache = SharedCache<WalkCache>;

/// Worker count for the parallel analyses ([`Verifier::check`],
/// [`Verifier::check_delta`], and the tenancy audit matrices):
/// `SDT_VERIFY_THREADS` when set to a positive integer, else the machine's
/// available parallelism. The fan-out is deterministic — findings are
/// merged in canonical order, so any thread count produces byte-identical
/// reports (pinned by `tests/determinism.rs`).
pub fn verify_threads() -> usize {
    sdt_par::threads_from_env("SDT_VERIFY_THREADS")
}
