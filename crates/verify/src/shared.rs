//! Shared, invalidation-safe ownership of a cross-pass memo cache.
//!
//! [`WalkCache`](crate::WalkCache) entries are fingerprint-validated, so a
//! *stale entry* can never replay against changed tables — it just misses.
//! What fingerprints cannot protect against is a stale **cache object**:
//! once the cache is shared (the daemon's engine verifying on one thread
//! while an operator path invalidates on another), a verify pass that
//! leased the cache *before* an invalidation could write its harvest back
//! *after* it, resurrecting entries the invalidation was meant to kill —
//! including the cluster-fingerprint binding itself.
//!
//! [`SharedCache`] closes that window with a generation counter under one
//! mutex:
//!
//! * [`lease`](SharedCache::lease) takes the cache out (leaving an empty
//!   one) and records the generation — the verify pass then works on the
//!   leased value without holding any lock;
//! * dropping the [`CacheLease`] restores the (now warmer) cache **only if
//!   the generation is unchanged**; if an
//!   [`invalidate`](SharedCache::invalidate) happened meanwhile, the
//!   harvest is discarded wholesale — the cache stays cold rather than
//!   possibly stale;
//! * concurrent leases are legal: the second lease simply starts from the
//!   empty cache (a cold pass, never a wrong one), and whichever restore
//!   runs last against an unchanged generation wins.
//!
//! The mutex is an [`sdt_sync`] shim, so `sdt-check` model tests explore
//! every interleaving of lease / restore / invalidate and prove the
//! "never restored across an invalidation" claim on all of them.

use std::mem;

use sdt_sync::sync::{Arc, Mutex};

/// A memo cache shared between threads, guarded by a generation counter.
/// Cloning shares the underlying cache. `C` is the cache value —
/// [`SharedWalkCache`](crate::SharedWalkCache) in production, anything
/// `Default` in tests.
#[derive(Debug, Default)]
pub struct SharedCache<C> {
    inner: Arc<Mutex<Slot<C>>>,
}

#[derive(Debug, Default)]
struct Slot<C> {
    cache: C,
    generation: u64,
}

impl<C> Clone for SharedCache<C> {
    fn clone(&self) -> Self {
        SharedCache { inner: Arc::clone(&self.inner) }
    }
}

impl<C: Default> SharedCache<C> {
    /// A fresh cache at generation 0.
    pub fn new() -> Self {
        SharedCache::default()
    }

    /// The current generation: bumped by every
    /// [`invalidate`](SharedCache::invalidate).
    pub fn generation(&self) -> u64 {
        self.inner.lock().generation
    }

    /// Drop every entry and bump the generation, so that leases taken
    /// before this call can no longer restore. Returns the new generation.
    pub fn invalidate(&self) -> u64 {
        let mut slot = self.inner.lock();
        slot.cache = C::default();
        slot.generation += 1;
        slot.generation
    }

    /// Take the cache out for a verify pass. The shared slot holds an
    /// empty cache until the lease drops (or forever, if an invalidation
    /// intervenes — see [`CacheLease`]).
    pub fn lease(&self) -> CacheLease<C> {
        let mut slot = self.inner.lock();
        CacheLease {
            cache: mem::take(&mut slot.cache),
            generation: slot.generation,
            owner: Arc::clone(&self.inner),
        }
    }

    /// Read the cache in place (for size/stats queries).
    pub fn with<R>(&self, f: impl FnOnce(&C) -> R) -> R {
        f(&self.inner.lock().cache)
    }
}

/// Exclusive use of the cache between one [`SharedCache::lease`] and the
/// drop that restores it. Dereferences to `C`; pass `&mut *lease` where a
/// `&mut C` is expected.
///
/// Restoring on `Drop` (rather than an explicit call) makes early returns
/// and `?` in verify paths restore the harvest automatically.
#[derive(Debug)]
pub struct CacheLease<C: Default> {
    cache: C,
    generation: u64,
    owner: Arc<Mutex<Slot<C>>>,
}

impl<C: Default> CacheLease<C> {
    /// The generation this lease was taken at.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl<C: Default> std::ops::Deref for CacheLease<C> {
    type Target = C;
    fn deref(&self) -> &C {
        &self.cache
    }
}

impl<C: Default> std::ops::DerefMut for CacheLease<C> {
    fn deref_mut(&mut self) -> &mut C {
        &mut self.cache
    }
}

impl<C: Default> Drop for CacheLease<C> {
    fn drop(&mut self) {
        // During a panic unwind, skip the restore entirely: the harvest of
        // a pass that panicked is suspect anyway, and taking the lock here
        // would risk a double panic.
        if std::thread::panicking() {
            return;
        }
        let mut slot = self.owner.lock();
        if slot.generation == self.generation {
            slot.cache = mem::take(&mut self.cache);
        }
        // Generation moved: an invalidation raced this pass. Drop the
        // harvest — entries computed from pre-invalidation reads must not
        // outlive the invalidation.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_restores_harvest_when_no_invalidation() {
        let shared: SharedCache<Vec<u32>> = SharedCache::new();
        {
            let mut lease = shared.lease();
            lease.push(7);
        }
        assert_eq!(shared.with(Vec::len), 1);
        assert_eq!(shared.generation(), 0);
    }

    #[test]
    fn invalidation_during_lease_discards_the_harvest() {
        let shared: SharedCache<Vec<u32>> = SharedCache::new();
        let mut lease = shared.lease();
        lease.push(7);
        assert_eq!(shared.invalidate(), 1);
        drop(lease);
        assert_eq!(shared.with(Vec::len), 0, "stale harvest must not be restored");
        assert_eq!(shared.generation(), 1);
    }

    #[test]
    fn concurrent_lease_starts_cold_and_last_restore_wins() {
        let shared: SharedCache<Vec<u32>> = SharedCache::new();
        let mut a = shared.lease();
        a.push(1);
        let mut b = shared.lease();
        assert!(b.is_empty(), "second lease starts from the empty cache");
        b.push(2);
        drop(a);
        drop(b);
        assert_eq!(shared.with(|c| c.clone()), vec![2], "later restore wins");
    }

    #[test]
    fn clones_share_state() {
        let shared: SharedCache<Vec<u32>> = SharedCache::new();
        let other = shared.clone();
        {
            let mut lease = shared.lease();
            lease.push(3);
        }
        assert_eq!(other.with(Vec::len), 1);
        other.invalidate();
        assert_eq!(shared.with(Vec::len), 0);
    }
}
