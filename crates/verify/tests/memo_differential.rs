//! Differential proof that the fast verifier is invisible: the
//! symmetry-collapsed, memoized, weight-sharded walk must produce reports
//! **byte-identical** to the reference (plain) walker — on the paper's
//! preset topologies, on incremental delta checks, on a seeded random
//! multi-tenant slice mix, on the live tables left behind by a
//! chaos-style `recover()`, and on arbitrary interleavings of flow-mod
//! batches with verification passes (property test). The persistent
//! [`WalkCache`] must never change a report either — only wall-clock.
//!
//! These tests compare the full `Debug` rendering of [`VerifyReport`], so
//! any drift in a finding, a counter, or even ordering fails loudly.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sdt_controller::{FailureReport, RecoveryConfig, SdtController};
use sdt_core::cluster::ClusterBuilder;
use sdt_core::methods::SwitchModel;
use sdt_core::sdt::SdtProjector;
use sdt_openflow::{
    Action, ControlChannel, FlowEntry, FlowMatch, FlowMod, HostAddr, PortNo,
};
use sdt_tenancy::SliceManager;
use sdt_topology::chain::{chain, ring};
use sdt_topology::dragonfly::dragonfly;
use sdt_topology::fattree::fat_tree;
use sdt_topology::meshtorus::{mesh, torus};
use sdt_topology::Topology;
use sdt_verify::{Intent, TableView, Verifier, WalkCache};

/// Fast and plain must have derived the same proof, bit for bit.
fn assert_identical(fast: &Verifier, plain: &Verifier, label: &str) {
    let (rf, rp) = (fast.report(), plain.report());
    assert_eq!(rf.loops, rp.loops, "{label}: loops differ");
    assert_eq!(rf.blackholes, rp.blackholes, "{label}: blackholes differ");
    assert_eq!(rf.leaks, rp.leaks, "{label}: leaks differ");
    assert_eq!(rf.shadowed, rp.shadowed, "{label}: shadow findings differ");
    assert_eq!(rf.nondeterminism, rp.nondeterminism, "{label}: nondet findings differ");
    assert_eq!(
        format!("{rf:?}"),
        format!("{rp:?}"),
        "{label}: reports not byte-identical"
    );
}

/// Project a topology onto the smallest cluster that carries it.
fn project(topo: &Topology) -> (sdt_core::cluster::PhysicalCluster, sdt_core::sdt::SdtProjection) {
    let model = SwitchModel::openflow_128x100g();
    let projector = SdtProjector { merge_entries_on_overflow: true, ..Default::default() };
    for n in 1..=8u32 {
        let cluster = ClusterBuilder::new(model, n)
            .hosts_per_switch((topo.num_hosts() / n).max(1) as u16)
            .inter_links_per_pair(24)
            .build();
        if let Ok(p) = projector.project_default(topo, &cluster) {
            return (cluster, p);
        }
    }
    panic!("{} does not fit on 8 switches", topo.name());
}

#[test]
fn paper_presets_fast_equals_plain_and_cache_is_invisible() {
    let presets: Vec<Topology> =
        vec![fat_tree(4), torus(&[4, 4]), dragonfly(4, 9, 2, 2), ring(8)];
    for topo in &presets {
        let (cluster, proj) = project(topo);
        let view = || TableView::of_synthesis(&proj.synthesis);
        let intent = || Intent::of_projection(&proj, topo, topo.name());
        let plain = Verifier::check_plain_threads(&cluster, view(), intent(), 2);
        let fast = Verifier::check_threads(&cluster, view(), intent(), 2);
        assert_identical(&fast, &plain, topo.name());
        assert!(
            fast.stats().symmetric,
            "{}: SDT synthesis should admit the fast path",
            topo.name()
        );
        // Cold cached pass fills the cache; warm pass must replay from it
        // and still render the exact same report.
        let mut cache = WalkCache::new();
        let cold = Verifier::check_cached(&cluster, view(), intent(), 2, &mut cache);
        assert_identical(&cold, &plain, &format!("{} cold cached", topo.name()));
        assert!(cache.entries() > 0, "{}: cold pass must fill the cache", topo.name());
        let warm = Verifier::check_cached(&cluster, view(), intent(), 2, &mut cache);
        assert_identical(&warm, &plain, &format!("{} warm cached", topo.name()));
        assert!(
            warm.stats().cache_hits > 0 || warm.stats().warn_cache_hits > 0,
            "{}: warm pass should hit the cache",
            topo.name()
        );
    }
}

#[test]
fn delta_checks_fast_equals_plain_across_modes() {
    // Corrupt a verified fat-tree with a batch clearing one routing table:
    // plain delta, fast delta and cached delta must all report the same
    // blackholes, and a follow-up repair batch must agree too.
    let topo = fat_tree(4);
    let (cluster, proj) = project(&topo);
    let view = || TableView::of_synthesis(&proj.synthesis);
    let intent = || Intent::of_projection(&proj, &topo, topo.name());
    let plain0 = Verifier::check_plain_threads(&cluster, view(), intent(), 2);
    let fast0 = Verifier::check_threads(&cluster, view(), intent(), 2);
    let mut cache = WalkCache::new();
    let cached0 = Verifier::check_cached(&cluster, view(), intent(), 2, &mut cache);

    let batch: Vec<(u32, u8, FlowMod)> = vec![(0, 1, FlowMod::Clear)];
    let dp = Verifier::check_delta_plain_threads(&plain0, &batch, intent(), 2);
    let df = Verifier::check_delta_threads(&fast0, &batch, intent(), 2);
    let dc = Verifier::check_delta_cached(&cached0, &batch, intent(), 2, &mut cache);
    assert_identical(&df, &dp, "clear delta fast");
    assert_identical(&dc, &dp, "clear delta cached");
    assert!(!dp.holds(), "clearing a routing table must break the proof");

    // Re-verify the unmodified tables through the warm cache: an empty
    // batch delta must agree with the plain empty delta (both report zero
    // re-walked pairs — everything reused) and keep every clean finding.
    let empty: Vec<(u32, u8, FlowMod)> = Vec::new();
    let warm = Verifier::check_delta_cached(&cached0, &empty, intent(), 2, &mut cache);
    let warm_plain = Verifier::check_delta_plain_threads(&plain0, &empty, intent(), 2);
    assert_identical(&warm, &warm_plain, "warm empty delta");
    assert!(warm.holds(), "empty delta over clean tables stays clean");
}

#[test]
fn random_slice_mix_fast_equals_plain() {
    // Seeded random multi-tenant churn leaves live tables richer than any
    // single synthesis (orphaned shadows, uneven metadata tiers). Both
    // walkers must agree on the full proof, cache or no cache.
    let mut rng = StdRng::seed_from_u64(0x5d7_2026);
    let cluster = ClusterBuilder::new(SwitchModel::openflow_128x100g(), 3)
        .hosts_per_switch(16)
        .inter_links_per_pair(16)
        .build();
    let mut mgr = SliceManager::new(cluster);
    let mut admitted = Vec::new();
    for i in 0..10 {
        let topo = match rng.random_range(0..3u32) {
            0 => chain(rng.random_range(2..5u32)),
            1 => ring(rng.random_range(3..6u32)),
            _ => mesh(&[2, 2]),
        };
        if let Ok(id) = mgr.create(&format!("s{i}"), &topo) {
            admitted.push(id);
        }
        if !admitted.is_empty() && rng.random_bool(0.3) {
            let victim = admitted.swap_remove(rng.random_range(0..admitted.len()));
            mgr.destroy(victim).unwrap();
        }
    }
    assert!(!admitted.is_empty(), "seed produced no surviving slices");
    let view = || TableView::of_switches(mgr.switches());
    let plain = Verifier::check_plain_threads(mgr.cluster(), view(), mgr.intent(), 2);
    let fast = Verifier::check_threads(mgr.cluster(), view(), mgr.intent(), 2);
    assert_identical(&fast, &plain, "random slice mix");
    let mut cache = WalkCache::new();
    let c1 = Verifier::check_cached(mgr.cluster(), view(), mgr.intent(), 2, &mut cache);
    let c2 = Verifier::check_cached(mgr.cluster(), view(), mgr.intent(), 2, &mut cache);
    assert_identical(&c1, &plain, "slice mix cold cached");
    assert_identical(&c2, &plain, "slice mix warm cached");
}

#[test]
fn post_recovery_live_tables_fast_equals_plain() {
    // Chaos-style fault + recover(): kill a cable under a deployed torus,
    // reconcile the live switches, then prove fast == plain on the exact
    // tables the recovery left behind — including a warm pass through a
    // cache that watched the *pre-fault* deployment (every invalidation
    // must be caught by the table fingerprints).
    let cluster = ClusterBuilder::new(SwitchModel::openflow_128x100g(), 2)
        .hosts_per_switch(16)
        .inter_links_per_pair(10)
        .build();
    let mut c = SdtController::new(cluster);
    let d = c.deploy(&torus(&[4, 4])).unwrap();
    let mut cache = WalkCache::new();
    let pre = Verifier::check_cached(
        c.cluster(),
        TableView::of_switches(&d.switches),
        Intent::of_projection(&d.projection, &d.topology, d.topology.name()),
        2,
        &mut cache,
    );
    assert!(pre.holds(), "intact deployment must verify clean");

    let dead = (sdt_topology::SwitchId(0), sdt_topology::SwitchId(1));
    let mut ch = ControlChannel::reliable();
    let report = FailureReport::links(vec![dead]);
    let out = c.recover(d, &report, &mut ch, &RecoveryConfig::default()).unwrap();
    assert!(out.retry.converged, "reliable channel must converge");

    let dep = &out.deployment;
    let view = || TableView::of_switches(&dep.switches);
    let intent = || Intent::of_projection(&dep.projection, &dep.topology, dep.topology.name());
    let plain = Verifier::check_plain_threads(c.cluster(), view(), intent(), 2);
    let fast = Verifier::check_threads(c.cluster(), view(), intent(), 2);
    assert_identical(&fast, &plain, "post-recovery live tables");
    let warm = Verifier::check_cached(c.cluster(), view(), intent(), 2, &mut cache);
    assert_identical(&warm, &plain, "post-recovery warm through stale cache");
}

/// Decode a random match over tiny field domains so entries collide and
/// shadow constantly — and regularly break the symmetry preconditions
/// (header-matching classify rules, port-matching route rules), forcing
/// the fast path through its fallback as well as its collapsed walk.
fn decode_match(r: u32) -> FlowMatch {
    let mut m = FlowMatch::any();
    if r & 1 != 0 {
        m.in_port = Some(PortNo(((r >> 8) & 3) as u16));
    }
    if r & 2 != 0 {
        m.metadata = Some((r >> 10) & 3);
    }
    if r & 4 != 0 {
        m.src = Some(HostAddr(((r >> 12) & 7) % 6));
    }
    if r & 8 != 0 {
        m.dst = Some(HostAddr(((r >> 15) & 7) % 6));
    }
    if r & 16 != 0 {
        m.l4_dst = Some(((r >> 18) & 3) as u16);
    }
    m
}

fn decode_mod((kind, r, priority, action): (u8, u32, u16, u8)) -> FlowMod {
    match kind % 4 {
        0 => FlowMod::Clear,
        1 => FlowMod::Delete(decode_match(r), priority),
        _ => FlowMod::Add(FlowEntry {
            m: decode_match(r),
            priority,
            action: match action % 3 {
                0 => Action::Drop,
                1 => Action::WriteMetadataGoto((r >> 21) & 3),
                _ => Action::Output(PortNo(((r >> 21) & 7) as u16)),
            },
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interleave random flow-mod batches with verification passes: after
    /// every batch, the plain delta chain, the fast delta chain and the
    /// cached delta chain must render byte-identical reports. Random
    /// batches routinely violate the pipeline shape, so this exercises
    /// collapsed walks, fallbacks, and cache invalidation in one run.
    #[test]
    fn interleaved_flow_mods_and_verifies_agree(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (any::<u8>(), any::<u32>(), 0u16..8, any::<u8>()),
                1..4,
            ),
            1..5,
        ),
        sw_seed in any::<u32>(),
    ) {
        let topo = chain(4);
        let (cluster, proj) = project(&topo);
        let intent = || Intent::of_projection(&proj, &topo, topo.name());
        let view = || TableView::of_synthesis(&proj.synthesis);
        let num_switches = cluster.num_switches();
        let mut plain = Verifier::check_plain_threads(&cluster, view(), intent(), 2);
        let mut fast = Verifier::check_threads(&cluster, view(), intent(), 2);
        let mut cache = WalkCache::new();
        let mut cached = Verifier::check_cached(&cluster, view(), intent(), 2, &mut cache);
        assert_identical(&fast, &plain, "proptest initial");
        assert_identical(&cached, &plain, "proptest initial cached");
        for (bi, raw) in batches.iter().enumerate() {
            let batch: Vec<(u32, u8, FlowMod)> = raw
                .iter()
                .enumerate()
                .map(|(mi, &op)| {
                    let sw = (sw_seed.wrapping_add((bi * 4 + mi) as u32)) % num_switches;
                    let table = (op.1 >> 5) as u8 & 1;
                    (sw, table, decode_mod(op))
                })
                .collect();
            plain = Verifier::check_delta_plain_threads(&plain, &batch, intent(), 2);
            fast = Verifier::check_delta_threads(&fast, &batch, intent(), 2);
            cached = Verifier::check_delta_cached(&cached, &batch, intent(), 2, &mut cache);
            assert_identical(&fast, &plain, &format!("proptest batch {bi}"));
            assert_identical(&cached, &plain, &format!("proptest batch {bi} cached"));
        }
    }
}
