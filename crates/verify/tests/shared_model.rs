//! Model-checked invariants of [`sdt_verify::SharedCache`] — the
//! generation-guarded lease/restore protocol behind [`SharedWalkCache`].
//! Only meaningful under `--cfg sdt_check`, where the `sdt_sync` mutex
//! inside the cache routes through the deterministic scheduler and the
//! DFS explores every interleaving of lease / restore / invalidate.
//!
//! The claim being proved: **a harvest computed before an invalidation is
//! never restored after it** — on any schedule. Entries are tagged with
//! the generation their lease was taken at, so the invariant reduces to
//! "every entry left in the cache carries the current generation".

#![cfg(sdt_check)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sdt_check::thread;
use sdt_verify::SharedCache;

/// One verify pass racing one invalidation: whichever way the schedule
/// lands, the cache never ends up holding a pre-invalidation harvest.
#[test]
fn harvest_never_survives_invalidation_on_any_schedule() {
    let exploration = sdt_check::Config::dfs()
        .explore(|| {
            let shared: SharedCache<Vec<u64>> = SharedCache::new();
            let verifier = {
                let shared = shared.clone();
                thread::spawn(move || {
                    let mut lease = shared.lease();
                    let tag = lease.generation();
                    lease.push(tag);
                })
            };
            let invalidator = {
                let shared = shared.clone();
                thread::spawn(move || {
                    shared.invalidate();
                })
            };
            verifier.join().unwrap();
            invalidator.join().unwrap();

            let generation = shared.generation();
            assert_eq!(generation, 1, "exactly one invalidation happened");
            shared.with(|cache| {
                for &tag in cache {
                    assert_eq!(
                        tag, generation,
                        "a pre-invalidation harvest was restored after the invalidation"
                    );
                }
            });
        })
        .expect("no schedule may restore a stale harvest");
    assert!(
        exploration.schedules >= 2,
        "lease/invalidate must race in more than one order, got {}",
        exploration.schedules
    );
}

/// Two concurrent verify passes and an invalidation: later leases start
/// cold (never observe another pass's in-flight harvest), and whatever
/// survives at the end is tagged with the final generation.
#[test]
fn concurrent_passes_and_invalidation_keep_only_current_generation() {
    sdt_check::model(|| {
        let shared: SharedCache<Vec<u64>> = SharedCache::new();
        let passes: Vec<_> = (0..2)
            .map(|_| {
                let shared = shared.clone();
                thread::spawn(move || {
                    let mut lease = shared.lease();
                    // A lease sees either an empty cache or a fully
                    // restored harvest — never a torn intermediate state.
                    let tag = lease.generation();
                    assert!(lease.iter().all(|&t| t == tag));
                    lease.push(tag);
                })
            })
            .collect();
        let invalidator = {
            let shared = shared.clone();
            thread::spawn(move || {
                shared.invalidate();
            })
        };
        for p in passes {
            p.join().unwrap();
        }
        invalidator.join().unwrap();

        let generation = shared.generation();
        shared.with(|cache| {
            for &tag in cache {
                assert_eq!(tag, generation, "stale harvest survived the invalidation");
            }
        });
    });
}

/// Sequential sanity inside the model runtime: no invalidation means the
/// harvest always lands, and generations never move.
#[test]
fn undisturbed_lease_always_restores() {
    sdt_check::model(|| {
        let shared: SharedCache<Vec<u64>> = SharedCache::new();
        let worker = {
            let shared = shared.clone();
            thread::spawn(move || {
                let mut lease = shared.lease();
                let tag = lease.generation();
                lease.push(tag);
            })
        };
        worker.join().unwrap();
        assert_eq!(shared.generation(), 0);
        assert_eq!(shared.with(Vec::len), 1, "undisturbed harvest must be restored");
    });
}
