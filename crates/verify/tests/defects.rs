//! Seeded-defect detection: each defect class the verifier exists for —
//! loop, blackhole, cross-domain leak, multi-rule-shadowed entry — is
//! injected into otherwise-healthy tables and must be caught statically,
//! with the offending rule(s) named. The incremental checker must reject
//! each as a pending batch while the baseline snapshot stays untouched.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sdt_core::synthesis::addr_of;
use sdt_core::{ClusterBuilder, PhysPort, SdtProjector, SwitchModel};
use sdt_openflow::{Action, FlowEntry, FlowMatch, FlowMod, HostAddr, PortNo};
use sdt_topology::fattree::fat_tree;
use sdt_topology::HostId;
use sdt_verify::{DropReason, Intent, IntentHost, TableView, Verifier};

fn two_switch_cluster() -> sdt_core::PhysicalCluster {
    ClusterBuilder::new(SwitchModel::openflow_128x100g(), 2)
        .hosts_per_switch(16)
        .inter_links_per_pair(16)
        .build()
}

/// A healthy single-tenant deployment verifies clean, with the closure
/// agreeing with the topology's size.
#[test]
fn healthy_projection_verifies() {
    let cluster = two_switch_cluster();
    let topo = fat_tree(4);
    let proj = SdtProjector::default().project_default(&topo, &cluster).unwrap();
    let intent = Intent::of_projection(&proj, &topo, topo.name());
    let v = Verifier::check(&cluster, TableView::of_synthesis(&proj.synthesis), intent);
    let r = v.report();
    assert!(v.holds(), "healthy deploy must verify: {}", r.summary());
    let h = topo.num_hosts() as usize;
    assert_eq!(r.delivered_pairs, h * (h - 1));
    assert_eq!(r.isolated_pairs, 0);
    assert!(r.loops.is_empty() && r.blackholes.is_empty() && r.leaks.is_empty());
}

/// Defect class 1: an injected forwarding loop across a cable is found as a
/// cycle, and the report names the bounce rules that form it.
#[test]
fn injected_loop_detected_with_rule_chain() {
    let cluster = two_switch_cluster();
    let topo = fat_tree(4);
    let proj = SdtProjector::default().project_default(&topo, &cluster).unwrap();
    let intent = Intent::of_projection(&proj, &topo, topo.name());
    let base = Verifier::check(&cluster, TableView::of_synthesis(&proj.synthesis), intent.clone());
    assert!(base.holds());

    // Pick an inter-switch cable and install high-priority bounce rules at
    // both endpoints: anything entering the cable port is reflected back.
    let link = cluster.inter_links_between(0, 1).next().expect("inter link");
    let bounce = |p: PhysPort, md: u32| {
        [
            (
                p.switch,
                0u8,
                FlowMod::Add(FlowEntry {
                    m: FlowMatch::on_port(p.port),
                    priority: 99,
                    action: Action::WriteMetadataGoto(md),
                }),
            ),
            (
                p.switch,
                1u8,
                FlowMod::Add(FlowEntry {
                    m: FlowMatch::default().and_metadata(md),
                    priority: 99,
                    action: Action::Output(p.port),
                }),
            ),
        ]
    };
    let mut batch = Vec::new();
    batch.extend(bounce(link.a, 7001));
    batch.extend(bounce(link.b, 7002));

    let v = Verifier::check_delta(&base, &batch, intent);
    let r = v.report();
    assert!(!v.holds(), "bounce rules must fail verification");
    assert!(!r.loops.is_empty(), "loop must be reported");
    let l = &r.loops[0];
    assert_eq!(l.ports.len(), 2, "two-port cycle: {l}");
    let cycle_switches: Vec<u32> = l.ports.iter().map(|p| p.switch).collect();
    assert!(cycle_switches.contains(&link.a.switch) && cycle_switches.contains(&link.b.switch));
    // The rule chain names the injected prio-99 rules.
    assert!(l.rules.iter().all(|r| r.entry.priority == 99), "chain: {l}");
    assert_eq!(l.rules.len(), 4, "classify + route rule at each of 2 hops");
    // The baseline snapshot was not mutated by the delta check.
    assert!(base.holds());
}

/// Defect class 2: deleting one route entry blackholes exactly the pairs
/// that depended on it, naming the miss location.
#[test]
fn deleted_route_is_a_blackhole() {
    let cluster = two_switch_cluster();
    let topo = fat_tree(4);
    let proj = SdtProjector::default().project_default(&topo, &cluster).unwrap();
    let intent = Intent::of_projection(&proj, &topo, topo.name());
    let base = Verifier::check(&cluster, TableView::of_synthesis(&proj.synthesis), intent.clone());
    assert!(base.holds());

    // Remove the table-1 entries routing to host 0 on its own switch: every
    // pair (*, host 0) whose path ends there now dies in a table miss.
    let victim = addr_of(HostId(0));
    let home = proj.primary_host_port(&topo, HostId(0)).switch;
    let batch: Vec<(u32, u8, FlowMod)> = proj.synthesis.table1[home as usize]
        .iter()
        .filter(|e| e.m.dst == Some(victim))
        .map(|e| (home, 1u8, FlowMod::Delete(e.m, e.priority)))
        .collect();
    assert!(!batch.is_empty());

    let v = Verifier::check_delta(&base, &batch, intent);
    let r = v.report();
    assert!(!v.holds());
    assert!(!r.blackholes.is_empty());
    assert!(r.loops.is_empty() && r.leaks.is_empty());
    for b in &r.blackholes {
        assert_eq!(b.dst, HostId(0), "only host-0 pairs blackholed: {b}");
        assert!(
            matches!(b.reason, DropReason::Miss { switch, table: 1 } if switch == home),
            "miss named at the gutted table: {b}"
        );
    }
    // Incrementality: only paths through the touched switch were re-walked.
    assert!(r.pairs_walked < r.pairs_checked, "{} < {}", r.pairs_walked, r.pairs_checked);
}

/// Hand-built two-domain fabric for leak tests: one switch, two sub-switch
/// domains of two hosts each.
fn two_domain_fixture() -> (sdt_core::PhysicalCluster, TableView, Intent) {
    let cluster = ClusterBuilder::new(SwitchModel::openflow_64x100g(), 1)
        .hosts_per_switch(4)
        .build();
    let hp: Vec<PhysPort> = cluster.host_ports_of(0).copied().collect();
    assert_eq!(hp.len(), 4);
    let addr = |i: u32| HostAddr(100 + i);
    let mut view = TableView::empty(1);
    for (i, p) in hp.iter().enumerate() {
        let md = if i < 2 { 1 } else { 2 };
        view.apply(
            0,
            0,
            &FlowMod::Add(FlowEntry {
                m: FlowMatch::on_port(p.port),
                priority: 10,
                action: Action::WriteMetadataGoto(md),
            }),
        );
        view.apply(
            0,
            1,
            &FlowMod::Add(FlowEntry {
                m: FlowMatch::to_dst(addr(i as u32)).and_metadata(md),
                priority: 10,
                action: Action::Output(p.port),
            }),
        );
    }
    let mut intent = Intent::new();
    intent.domains = vec!["tenant-a".into(), "tenant-b".into()];
    intent.hosts = (0u16..4)
        .map(|i| IntentHost {
            domain: usize::from(i >= 2),
            host: HostId(u32::from(i % 2)),
            addr: addr(u32::from(i)),
            ingress: hp[usize::from(i)],
            ports: vec![hp[usize::from(i)]],
            group: 0,
        })
        .collect();
    (cluster, view, intent)
}

/// Defect class 3: a rule that outputs one domain's traffic onto another
/// domain's host port is reported as a leak naming that exact rule.
#[test]
fn cross_domain_leak_names_offending_rule() {
    let (cluster, view, intent) = two_domain_fixture();
    let base = Verifier::check(&cluster, view, intent.clone());
    let r = base.report();
    assert!(base.holds(), "{}", r.summary());
    assert_eq!(r.delivered_pairs, 4, "two intra-domain ordered pairs per domain");
    assert_eq!(r.isolated_pairs, 8, "all cross-domain pairs proven isolated");

    // Tenant A's sub-switch (metadata 1) learns a route to tenant B's host
    // port: the classic slice-isolation bug.
    let b_host = &intent.hosts[2];
    let evil = FlowEntry {
        m: FlowMatch::to_dst(b_host.addr).and_metadata(1),
        priority: 99,
        action: Action::Output(b_host.ingress.port),
    };
    let v = Verifier::check_delta(&base, &[(0, 1, FlowMod::Add(evil))], intent);
    let r = v.report();
    assert!(!v.holds());
    assert_eq!(r.leaks.len(), 2, "both tenant-A hosts can now reach B: {:?}", r.leaks);
    for leak in &r.leaks {
        assert_eq!(leak.from_domain, "tenant-a");
        assert_eq!(leak.to_domain, "tenant-b");
        assert_eq!(leak.via.entry, evil, "offending rule named: {leak}");
        assert_eq!(leak.via.switch, 0);
        assert_eq!(leak.via.table, 1);
    }
    // Baseline still clean — the pending batch never touched it.
    assert!(base.holds());
}

/// Defect class 4: an entry jointly covered by several rules (none covering
/// it alone) is reported as shadowed with every covering rule named — the
/// case the pairwise `shadowed_entries` provably misses.
#[test]
fn multi_rule_shadow_detected_with_covering_rules() {
    let (cluster, mut view, intent) = two_domain_fixture();
    // Table 0 already classifies ports 0..4; add per-port classify rules
    // for *every remaining* port, then a catch-all below them. No single
    // rule covers the catch-all, but the union of per-port rules does.
    let ports = cluster.model().ports as u16;
    let existing: Vec<PortNo> = view
        .entries(0, 0)
        .iter()
        .filter_map(|e| e.m.in_port)
        .collect();
    for p in (0..ports).map(PortNo).filter(|p| !existing.contains(p)) {
        view.apply(
            0,
            0,
            &FlowMod::Add(FlowEntry {
                m: FlowMatch::on_port(p),
                priority: 10,
                action: Action::Drop,
            }),
        );
    }
    let dead = FlowEntry { m: FlowMatch::any(), priority: 5, action: Action::Drop };
    view.apply(0, 0, &FlowMod::Add(dead));

    let v = Verifier::check(&cluster, view, intent);
    let r = v.report();
    assert!(v.holds(), "dead rules are warnings, not violations: {}", r.summary());
    let s = r
        .shadowed
        .iter()
        .find(|s| s.shadowed.entry == dead)
        .expect("union-shadowed catch-all reported");
    assert_eq!(s.switch, 0);
    assert_eq!(s.table, 0);
    assert_eq!(
        s.shadowed.covered_by.len(),
        ports as usize,
        "all per-port rules named as the covering union"
    );
    // And the pairwise check alone would have missed it.
    let pairwise = sdt_openflow::shadowed_entries(
        &(0..ports)
            .map(|p| FlowEntry {
                m: FlowMatch::on_port(PortNo(p)),
                priority: 10,
                action: Action::Drop,
            })
            .chain([dead])
            .collect::<Vec<_>>(),
    );
    assert!(pairwise.is_empty(), "pairwise misses union shadowing");
}

/// Equal-priority overlapping (non-identical) matches are flagged as
/// nondeterminism warnings; identical or disjoint ones are not.
#[test]
fn equal_priority_overlap_warns() {
    let (cluster, mut view, intent) = two_domain_fixture();
    let a = FlowEntry {
        m: FlowMatch::to_dst(HostAddr(100)).and_metadata(1),
        priority: 10,
        action: Action::Drop,
    };
    // Overlaps the existing (dst=100, md=1) route entry at the same
    // priority without equalling it (adds an l4 constraint).
    let b = FlowEntry {
        m: FlowMatch { l4_dst: Some(4791), ..a.m },
        priority: 10,
        action: Action::Output(PortNo(0)),
    };
    view.apply(0, 1, &FlowMod::Add(b));
    let v = Verifier::check(&cluster, view, intent);
    let warn = &v.report().nondeterminism;
    assert!(
        warn.iter().any(|n| (n.first.m == a.m && n.second.m == b.m)
            || (n.first.m == b.m && n.second.m == a.m)),
        "overlap flagged: {warn:?}"
    );
}

/// The incremental check agrees with a from-scratch check on the same
/// post-delta tables (same verdict, same pair accounting).
#[test]
fn delta_check_agrees_with_full_recheck() {
    let cluster = two_switch_cluster();
    let topo = fat_tree(4);
    let proj = SdtProjector::default().project_default(&topo, &cluster).unwrap();
    let intent = Intent::of_projection(&proj, &topo, topo.name());
    let base = Verifier::check(&cluster, TableView::of_synthesis(&proj.synthesis), intent.clone());

    let victim = addr_of(HostId(3));
    let home = proj.primary_host_port(&topo, HostId(3)).switch;
    let batch: Vec<(u32, u8, FlowMod)> = proj.synthesis.table1[home as usize]
        .iter()
        .filter(|e| e.m.dst == Some(victim))
        .map(|e| (home, 1u8, FlowMod::Delete(e.m, e.priority)))
        .collect();

    let fast = Verifier::check_delta(&base, &batch, intent.clone());
    let mut view = TableView::of_synthesis(&proj.synthesis);
    for (sw, t, m) in &batch {
        view.apply(*sw, *t, m);
    }
    let slow = Verifier::check(&cluster, view, intent);
    let (f, s) = (fast.report(), slow.report());
    assert_eq!(f.holds(), s.holds());
    assert_eq!(f.delivered_pairs, s.delivered_pairs);
    assert_eq!(f.isolated_pairs, s.isolated_pairs);
    assert_eq!(f.blackholes.len(), s.blackholes.len());
    assert_eq!(f.leaks.len(), s.leaks.len());
    assert_eq!(f.loops.len(), s.loops.len());
}
