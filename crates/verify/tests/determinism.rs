//! The parallel verifier must be invisible: any worker count produces a
//! byte-identical report. Findings are discovered by per-switch, per-class
//! and per-source fan-out but merged in canonical order, so 1 worker and 8
//! workers must agree on every finding vec, every counter, and the full
//! `Debug` rendering — on the paper's preset topologies, on an incremental
//! delta check, and on a seeded random multi-tenant slice mix.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sdt_core::cluster::ClusterBuilder;
use sdt_core::methods::SwitchModel;
use sdt_core::sdt::SdtProjector;
use sdt_openflow::FlowMod;
use sdt_tenancy::SliceManager;
use sdt_topology::chain::{chain, ring};
use sdt_topology::dragonfly::dragonfly;
use sdt_topology::fattree::fat_tree;
use sdt_topology::meshtorus::{mesh, torus};
use sdt_topology::Topology;
use sdt_verify::{Intent, TableView, Verifier};

/// Assert two verifiers derived the exact same proof.
fn assert_identical(a: &Verifier, b: &Verifier, label: &str) {
    let (ra, rb) = (a.report(), b.report());
    assert_eq!(ra.loops, rb.loops, "{label}: loops differ");
    assert_eq!(ra.blackholes, rb.blackholes, "{label}: blackholes differ");
    assert_eq!(ra.leaks, rb.leaks, "{label}: leaks differ");
    assert_eq!(ra.shadowed, rb.shadowed, "{label}: shadow findings differ");
    assert_eq!(ra.nondeterminism, rb.nondeterminism, "{label}: nondet findings differ");
    assert_eq!(
        format!("{ra:?}"),
        format!("{rb:?}"),
        "{label}: reports not byte-identical"
    );
}

/// Project a topology onto the smallest cluster that carries it.
fn project(topo: &Topology) -> (sdt_core::cluster::PhysicalCluster, sdt_core::sdt::SdtProjection) {
    let model = SwitchModel::openflow_128x100g();
    let projector = SdtProjector { merge_entries_on_overflow: true, ..Default::default() };
    for n in 1..=8u32 {
        let cluster = ClusterBuilder::new(model, n)
            .hosts_per_switch((topo.num_hosts() / n).max(1) as u16)
            .inter_links_per_pair(24)
            .build();
        if let Ok(p) = projector.project_default(topo, &cluster) {
            return (cluster, p);
        }
    }
    panic!("{} does not fit on 8 switches", topo.name());
}

#[test]
fn paper_presets_are_thread_count_invariant() {
    let presets: Vec<Topology> =
        vec![fat_tree(4), torus(&[4, 4]), dragonfly(4, 9, 2, 2), ring(8)];
    for topo in &presets {
        let (cluster, proj) = project(topo);
        let view = || TableView::of_synthesis(&proj.synthesis);
        let intent = || Intent::of_projection(&proj, topo, topo.name());
        let v1 = Verifier::check_threads(&cluster, view(), intent(), 1);
        let v8 = Verifier::check_threads(&cluster, view(), intent(), 8);
        assert_identical(&v1, &v8, topo.name());
        assert!(v1.holds(), "{} should verify clean", topo.name());
    }
}

#[test]
fn delta_check_is_thread_count_invariant() {
    // Corrupt a verified fat-tree deployment with a batch that clears one
    // switch's routing table — the delta re-walk must report the same
    // blackholes at any worker count.
    let topo = fat_tree(4);
    let (cluster, proj) = project(&topo);
    let view = || TableView::of_synthesis(&proj.synthesis);
    let intent = || Intent::of_projection(&proj, &topo, topo.name());
    let v1 = Verifier::check_threads(&cluster, view(), intent(), 1);
    let v8 = Verifier::check_threads(&cluster, view(), intent(), 8);
    let batch: Vec<(u32, u8, FlowMod)> = vec![(0, 1, FlowMod::Clear)];
    let d1 = Verifier::check_delta_threads(&v1, &batch, intent(), 1);
    let d8 = Verifier::check_delta_threads(&v8, &batch, intent(), 8);
    assert_identical(&d1, &d8, "fat-tree k=4 + clear delta");
    assert!(!d1.holds(), "clearing a routing table must break the proof");
}

#[test]
fn random_slice_mix_is_thread_count_invariant() {
    // A seeded random multi-tenant mix: admissions and teardowns leave live
    // tables with orphaned shadows, metadata tiers and uneven occupancy —
    // richer than any single synthesis. The full proof over the live tables
    // must be identical at 1 and 8 workers.
    let mut rng = StdRng::seed_from_u64(0x5d7_2026);
    let cluster = ClusterBuilder::new(SwitchModel::openflow_128x100g(), 3)
        .hosts_per_switch(16)
        .inter_links_per_pair(16)
        .build();
    let mut mgr = SliceManager::new(cluster);
    let mut admitted = Vec::new();
    for i in 0..10 {
        let topo = match rng.random_range(0..3u32) {
            0 => chain(rng.random_range(2..5u32)),
            1 => ring(rng.random_range(3..6u32)),
            _ => mesh(&[2, 2]),
        };
        if let Ok(id) = mgr.create(&format!("s{i}"), &topo) {
            admitted.push(id);
        }
        if !admitted.is_empty() && rng.random_bool(0.3) {
            let victim = admitted.swap_remove(rng.random_range(0..admitted.len()));
            mgr.destroy(victim).unwrap();
        }
    }
    assert!(!admitted.is_empty(), "seed produced no surviving slices");
    let v1 = Verifier::check_threads(
        mgr.cluster(),
        TableView::of_switches(mgr.switches()),
        mgr.intent(),
        1,
    );
    let v8 = Verifier::check_threads(
        mgr.cluster(),
        TableView::of_switches(mgr.switches()),
        mgr.intent(),
        8,
    );
    assert_identical(&v1, &v8, "random slice mix");
    assert!(v1.holds(), "slice mix should verify clean");
}
