//! Multi-tenant topology slicing for SDT (the testbed-as-a-service layer).
//!
//! The paper's pitch (§I, §V) is that one small, fully-wired cluster can
//! host *user-defined* topologies and swap them in sub-second time. A
//! single-occupant testbed wastes exactly the resource-sharing that pitch
//! monetizes: a fat-tree k=4 needs 16 host ports and ~300 flow entries
//! while the cluster has hundreds of ports and thousands of entries. This
//! crate turns the projection machinery into a shared fabric:
//!
//! * [`SliceManager`] admits multiple logical topologies ("slices") onto
//!   one [`PhysicalCluster`](sdt_core::cluster::PhysicalCluster)
//!   concurrently, with hard resource accounting over host ports, cables,
//!   and per-switch flow-table capacity;
//! * admission is all-or-nothing: a slice that does not fit is rejected
//!   with a structured [`AdmissionError`] naming the scarce resource and
//!   the switch it ran out on — never a partial install;
//! * reconfiguring or destroying a slice is scheduled as an epoched
//!   flow-mod batch ([`Epoch`]) that is *verified* against the namespace
//!   map before anything is applied: every mod must fall inside the
//!   owning slice's (switch, in-port) and metadata space, so one tenant's
//!   churn provably cannot touch another's rules;
//! * [`SliceAudit`] extends the single-tenant isolation audit across
//!   tenants: it walks real packets through the shared tables and proves
//!   intra-slice delivery, cross-slice isolation, and structural
//!   disjointness of the match spaces, and it attributes dead (shadowed)
//!   rules to the slice that owns them.
//!
//! Isolation rests on the same §VI-B mechanism as the single-tenant
//! testbed — a miss in either table is a drop — plus two disjointness
//! invariants the manager maintains: no two slices share a physical port
//! (so table-0 classification spaces cannot overlap), and each slice's
//! table-1 entries live in a private metadata/address range (so routing
//! spaces cannot overlap either).

pub mod audit;
pub mod epoch;
pub mod manager;
pub mod schedule;

pub use audit::{SliceAudit, SliceAuditEntry};
pub use epoch::{Epoch, EpochAdd, EpochDelete, EpochReport, EpochViolation, OwnedSpace};
pub use manager::{
    AdmissionError, ManagerExport, ManagerStatus, MigrationPlan, OpOutcome,
    ReclaimedResources, RestoreError, Slice, SliceId, SliceManager, SliceOp, SliceStatus,
    SwitchOccupancy,
};
pub use schedule::{
    compile_rounds, install_scheduled, no_new_findings, RetryPolicy, Round, RoundPhase,
    RoundReport, ScheduleError, ScheduleReport,
};
