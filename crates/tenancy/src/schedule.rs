//! Transient-safe scheduled reconfiguration: dependency-ordered rounds,
//! each proven safe before it installs.
//!
//! [`Epoch::ordered_mods`] already sequences a reconfiguration
//! make-before-break, but the whole batch is installed in one shot: the
//! static gate proves the *final* table state, while every intermediate
//! state live traffic traverses during the batch is unproven. This module
//! closes that gap, Chameleon-style (SIGCOMM'23):
//!
//! 1. **Round compilation** ([`compile_rounds`]) — partition the epoch's
//!    flow-mods into dependency-ordered rounds. The dependencies are the
//!    class walks each mod touches: a table-0 classify entry that writes
//!    metadata `md` steers packets into the table-1 entries matching `md`
//!    on the same switch, so an add of the former must land in a later
//!    round than the adds of the latter, and a delete of the latter in a
//!    later round than the cutover that stops steering `md`. A delete
//!    immediately followed by adds with the same (switch, table, match,
//!    priority) key is an in-place MODIFY and is never split across
//!    rounds.
//! 2. **Per-round proofs** — [`install_scheduled`] chains a
//!    [`Verifier::check_delta_cached`] proof across the round boundaries:
//!    each boundary state is accepted only if it introduces *no finding
//!    that the pre-migration tables did not already have* (for a healthy
//!    starting state this is exactly [`sdt_verify::VerifyReport::holds`]).
//!    Boundaries before the cutover are judged against the pre-migration
//!    intent (the new pipeline is dark until a port steers to it);
//!    boundaries from the cutover on, against the post-migration intent.
//! 3. **Merge-on-failure fallback** — the layering is a heuristic; safety
//!    never rests on it. If a boundary proof fails, the round is merged
//!    with its successor and re-proven; in the limit the whole epoch
//!    collapses back into the one-shot install, whose end state the caller
//!    gated before scheduling. Progress is therefore guaranteed.
//! 4. **Pipelining** — round N+1's proof is computed while round N's
//!    flow-mods are in flight on the (possibly lossy) [`ControlChannel`],
//!    between the sends and the barrier. Per-round install time is
//!    modeled (the channel is simulated), so the report carries both the
//!    sequential total and the overlapped `pipelined_ns`.
//! 5. **Retry and divergence fallback** — after each barrier the live
//!    tables are read back and diffed against the intended boundary state;
//!    stragglers are re-sent with exponential backoff. If a round's retry
//!    budget runs out, the *actual* live state is re-verified from scratch
//!    — the proof-of-record for that boundary is then of what is really
//!    installed, not of what was intended — and the migration only
//!    proceeds if that state, too, introduces no new finding.

use crate::epoch::Epoch;
use sdt_core::cluster::PhysicalCluster;
use sdt_openflow::{diff_tables, Action, ControlChannel, FlowMod, InstallTiming, OpenFlowSwitch};
use sdt_verify::{Intent, TableView, Verifier, VerifyReport, WalkCache};
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::time::Instant;

/// Which migration phase a round belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RoundPhase {
    /// New entries installed next to the old pipeline (make).
    Make,
    /// Table-0 replacements and in-place modifies: the per-port atomic
    /// switch from the old pipeline to the new one (break).
    Cutover,
    /// Old routing state garbage-collected after nothing steers to it.
    Collect,
}

impl fmt::Display for RoundPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoundPhase::Make => write!(f, "make"),
            RoundPhase::Cutover => write!(f, "cutover"),
            RoundPhase::Collect => write!(f, "collect"),
        }
    }
}

/// One dependency-ordered round of an epoch's flow-mod batch.
#[derive(Clone, Debug)]
pub struct Round {
    /// The `(switch, table, mod)` sequence this round installs, in the
    /// epoch's original wire order.
    pub mods: Vec<(u32, u8, FlowMod)>,
    /// The migration phase of the latest constituent unit.
    pub phase: RoundPhase,
    /// Atomic units in the round (a MODIFY pair counts once).
    pub units: usize,
}

/// Retry/backoff knobs for the per-round reconciliation loop (mirrors the
/// controller's recovery loop so both paths model the same channel).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Re-diff/re-send rounds per scheduler round before falling back to
    /// re-verification of the live state.
    pub max_retries: u32,
    /// Backoff before the first retry, ns.
    pub backoff_base_ns: u64,
    /// Multiplier per further retry.
    pub backoff_factor: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 5, backoff_base_ns: 2_000_000, backoff_factor: 2 }
    }
}

/// What one scheduled round did.
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Round index (0-based install order).
    pub round: usize,
    /// Migration phase.
    pub phase: RoundPhase,
    /// Flow-mods in the round.
    pub mods: usize,
    /// Atomic units in the round.
    pub units: usize,
    /// Compiled rounds merged into this one (1 = no merge happened).
    pub merged_from: usize,
    /// Wall-clock of this boundary's static proof, ns (includes failed
    /// pre-merge attempts).
    pub proof_wall_ns: u64,
    /// Host pairs the incremental proof actually re-walked.
    pub pairs_walked: usize,
    /// Modeled install time: sends + barriers + backoff, ns.
    pub install_ns: u64,
    /// Backoff share of `install_ns`.
    pub backoff_ns: u64,
    /// Flow-mods handed to the channel, including re-sends.
    pub sends: u64,
    /// Reconciliation retries the lossy channel forced.
    pub retries: u32,
    /// Live tables matched the intended boundary state when the round
    /// finished.
    pub converged: bool,
    /// The retry budget ran out and the actual live state was re-verified
    /// in place of the intended boundary.
    pub reverified: bool,
}

/// What a whole scheduled migration did.
#[derive(Clone, Debug, Default)]
pub struct ScheduleReport {
    /// Per-round outcomes, in install order.
    pub rounds: Vec<RoundReport>,
    /// Flow-mods across all rounds (before re-sends).
    pub total_mods: usize,
    /// Round merges the fallback performed (0 = layering held everywhere).
    pub merges: usize,
    /// Divergence re-verifications performed.
    pub reverifications: usize,
    /// Boundary states that failed their proof *and* could not be merged
    /// away — always 0 on success (kept explicit for the bench gate).
    pub violations: usize,
    /// Live tables byte-identical to the epoch's end state at the end.
    pub converged: bool,
    /// Sum of all boundary-proof wall clocks, ns.
    pub proof_wall_ns_total: u64,
    /// Sum of modeled per-round install times, ns.
    pub install_ns_total: u64,
    /// Modeled wall with verify(N+1) overlapped onto install(N), ns.
    pub pipelined_ns: u64,
}

/// Why a scheduled install stopped. Flow-mods up to the failing round may
/// already be applied — every state actually reached was proven to add no
/// new finding over the starting tables.
#[derive(Clone, Debug)]
pub enum ScheduleError {
    /// A boundary failed its proof even after merging through the final
    /// round. With the whole epoch gated beforehand this indicates the
    /// caller skipped that gate (or the base proof was stale).
    UnsafeBoundary {
        /// Install-order index of the failing round.
        round: usize,
        /// Verifier summary naming the findings.
        summary: String,
    },
    /// A round's retry budget ran out and the live tables, re-verified as
    /// they actually are, carry a finding the starting state did not.
    DivergedUnsafe {
        /// Install-order index of the diverged round.
        round: usize,
        /// Verifier summary naming the findings.
        summary: String,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::UnsafeBoundary { round, summary } => {
                write!(f, "round {round}: boundary state unprovable ({summary})")
            }
            ScheduleError::DivergedUnsafe { round, summary } => {
                write!(f, "round {round}: channel diverged and live state unsafe ({summary})")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// An epoch's flow-mods grouped into atomic units: each unit is either a
/// single add/delete, or a delete immediately followed by the add(s)
/// replacing it under the same (switch, table, match, priority) key — an
/// in-place MODIFY that must never be split across rounds.
fn units_of(mods: Vec<(u32, u8, FlowMod)>) -> Vec<Vec<(u32, u8, FlowMod)>> {
    let mut units: Vec<Vec<(u32, u8, FlowMod)>> = Vec::new();
    for (sw, t, m) in mods {
        let attaches = match (&m, units.last()) {
            (FlowMod::Add(e), Some(u)) => matches!(
                u.first(),
                Some(&(usw, ut, FlowMod::Delete(dm, dp)))
                    if usw == sw && ut == t && dm == e.m && dp == e.priority
            ),
            _ => false,
        };
        match units.last_mut() {
            Some(u) if attaches => u.push((sw, t, m)),
            _ => units.push(vec![(sw, t, m)]),
        }
    }
    units
}

/// Compile an epoch into dependency-ordered rounds against the pre-epoch
/// table state `before` (needed to resolve which metadata a deleted
/// table-0 entry used to steer).
///
/// Layering (longest-path over the per-switch class-walk dependencies):
///
/// * table-1 adds — layer 0 (new routing entries, dark until steered to);
/// * table-0 adds — layer 1 when the metadata they write gains new table-1
///   entries on the same switch in this epoch (those must exist first),
///   else layer 0;
/// * table-0 deletes/modifies and table-1 modifies — the cutover layer,
///   strictly after every add;
/// * pure table-1 deletes — the collect layer, strictly after the cutover
///   (only then does nothing steer into the class being collected). A
///   delete whose metadata no table-0 entry of the pre-state `before`
///   steers is already dark and joins the cutover layer instead.
///
/// Units keep the epoch's original wire order within a layer, so
/// concatenating the rounds replays [`Epoch::ordered_mods`] exactly up to
/// the commuting of distinct-key units — the end state holds exactly the
/// same entries (only vector order can differ, and epoch entries never
/// share a (match, priority) key, so lookup behavior is identical; pinned
/// by `tests/round_properties.rs`). Determinism needs no seed: the
/// compilation is a pure function of the epoch and `before`.
pub fn compile_rounds(epoch: &Epoch, before: &TableView) -> Vec<Round> {
    let units = units_of(epoch.ordered_mods());

    // Metadata values gaining new table-1 routes per switch in this epoch.
    let mut fresh_routes: HashSet<(u32, u32)> = HashSet::new();
    for u in &units {
        if let [(sw, 1, FlowMod::Add(e))] = u.as_slice() {
            if let Some(md) = e.m.metadata {
                fresh_routes.insert((*sw, md));
            }
        }
    }

    // Metadata the pre-state's table 0 still steers, per switch: a pure
    // table-1 delete in a live class must wait for the cutover to go dark;
    // one in an already-dark class has no walk crossing it and needn't.
    let mut steered: HashSet<(u32, u32)> = HashSet::new();
    for sw in 0..before.num_switches() as u32 {
        for e in before.entries(sw, 0) {
            if let Action::WriteMetadataGoto(md) = e.action {
                steered.insert((sw, md));
            }
        }
    }

    // Longest-path layer per unit. Adds occupy layers 0..=add_max; the
    // cutover and collect layers come strictly after.
    let mut add_max = 0usize;
    let mut layers: Vec<(usize, RoundPhase)> = Vec::with_capacity(units.len());
    for u in &units {
        let layer = match u.as_slice() {
            [(_, 1, FlowMod::Add(_))] => (0, RoundPhase::Make),
            [(sw, 0, FlowMod::Add(e))] => {
                let depends = match e.action {
                    Action::WriteMetadataGoto(md) => fresh_routes.contains(&(*sw, md)),
                    _ => false,
                };
                (usize::from(depends), RoundPhase::Make)
            }
            [(_, 0, FlowMod::Delete(..)), ..] => (usize::MAX - 1, RoundPhase::Cutover),
            // Table-1 MODIFY: in-place route repoint, grouped with the
            // cutover (its class stays live before and after).
            [(_, 1, FlowMod::Delete(..)), _, ..] => (usize::MAX - 1, RoundPhase::Cutover),
            // Pure table-1 delete: collect only after the cutover stops
            // steering its class — unless the class is already dark.
            [(sw, 1, FlowMod::Delete(dm, _))] => {
                let live = dm.metadata.is_some_and(|md| steered.contains(&(*sw, md)));
                if live {
                    (usize::MAX, RoundPhase::Collect)
                } else {
                    (usize::MAX - 1, RoundPhase::Cutover)
                }
            }
            _ => (usize::MAX - 1, RoundPhase::Cutover),
        };
        if layer.1 == RoundPhase::Make {
            add_max = add_max.max(layer.0);
        }
        layers.push(layer);
    }

    // Materialize rounds in layer order, preserving wire order inside each.
    let resolved = |l: usize| match l {
        usize::MAX => add_max + 2,
        x if x == usize::MAX - 1 => add_max + 1,
        x => x,
    };
    let mut rounds: Vec<Round> = Vec::new();
    for target in 0..=add_max + 2 {
        let mut mods = Vec::new();
        let mut n_units = 0usize;
        let mut phase = RoundPhase::Make;
        for (u, &(l, p)) in units.iter().zip(&layers) {
            if resolved(l) == target {
                mods.extend(u.iter().cloned());
                n_units += 1;
                phase = phase.max(p);
            }
        }
        if !mods.is_empty() {
            rounds.push(Round { mods, phase, units: n_units });
        }
    }
    rounds
}

/// True when `r` carries no loop/blackhole/leak finding that `base` did
/// not already have. A healthy base makes this exactly `r.holds()`; a
/// wounded base (recovery) accepts monotone improvement.
pub fn no_new_findings(r: &VerifyReport, base: &VerifyReport) -> bool {
    if r.holds() {
        return true;
    }
    let known: HashSet<String> = base
        .loops
        .iter()
        .map(|f| format!("{f:?}"))
        .chain(base.blackholes.iter().map(|f| format!("{f:?}")))
        .chain(base.leaks.iter().map(|f| format!("{f:?}")))
        .collect();
    r.loops
        .iter()
        .map(|f| format!("{f:?}"))
        .chain(r.blackholes.iter().map(|f| format!("{f:?}")))
        .chain(r.leaks.iter().map(|f| format!("{f:?}")))
        .all(|s| known.contains(&s))
}

/// A proven next round: its (possibly merged) mods and the verifier of the
/// boundary state they reach.
struct Proven {
    round: Round,
    verifier: Verifier,
    proof_wall_ns: u64,
    merged_from: usize,
    pairs_walked: usize,
    /// The intent this boundary was judged against (re-used by the
    /// divergence fallback).
    post: bool,
}

/// Prove the next round's boundary, merging forward on failure. `base` is
/// the proof of the previous boundary; acceptance is "no new finding over
/// `base_report`" (the pre-migration live state).
#[allow(clippy::too_many_arguments)]
fn prove_with_merge(
    work: &mut VecDeque<Round>,
    base: &Verifier,
    base_report: &VerifyReport,
    pre_intent: &Intent,
    post_intent: &Intent,
    threads: usize,
    cache: &mut WalkCache,
    merges: &mut usize,
    round_index: usize,
) -> Result<Proven, ScheduleError> {
    let Some(mut round) = work.pop_front() else {
        unreachable!("prove_with_merge called with an empty worklist");
    };
    let mut merged_from = 1usize;
    let mut wall = 0u64;
    loop {
        // Pre-cutover boundaries still implement the old intent: the new
        // pipeline is dark until a port steers into it. From the cutover
        // on — and always for the final boundary — the new intent rules.
        let post = work.is_empty() || round.phase >= RoundPhase::Cutover;
        let intent = if post { post_intent } else { pre_intent };
        let t0 = Instant::now();
        let v = Verifier::check_delta_cached(base, &round.mods, intent.clone(), threads, cache);
        wall += t0.elapsed().as_nanos() as u64;
        if no_new_findings(v.report(), base_report) {
            let pairs_walked = v.report().pairs_walked;
            return Ok(Proven {
                round,
                verifier: v,
                proof_wall_ns: wall,
                merged_from,
                pairs_walked,
                post,
            });
        }
        // The layering mispredicted: coarsen by merging with the next
        // round. The fully-merged round is the one-shot epoch, whose end
        // state the caller already gated — so this terminates.
        match work.pop_front() {
            Some(next) => {
                round.mods.extend(next.mods);
                round.phase = round.phase.max(next.phase);
                round.units += next.units;
                merged_from += 1;
                *merges += 1;
            }
            None => {
                return Err(ScheduleError::UnsafeBoundary {
                    round: round_index,
                    summary: v.report().summary(),
                })
            }
        }
    }
}

/// Install dependency-ordered `rounds` over `channel`, proving every
/// boundary before its round goes out and pipelining proof N+1 with
/// install N. See the module docs for the full contract. Returns the
/// verifier of the final proven boundary and the round report.
///
/// `base` must be a proof of the *current* live tables (its intent is the
/// pre-migration intent); `pre_intent`/`post_intent` bracket the cutover.
/// The caller is expected to have gated the whole epoch's end state
/// already — that is what guarantees the merge fallback terminates.
#[allow(clippy::too_many_arguments)]
pub fn install_scheduled(
    cluster: &PhysicalCluster,
    switches: &mut [OpenFlowSwitch],
    channel: &mut ControlChannel,
    rounds: Vec<Round>,
    base: Verifier,
    pre_intent: &Intent,
    post_intent: &Intent,
    timing: &InstallTiming,
    threads: usize,
    cache: &mut WalkCache,
    retry: &RetryPolicy,
) -> Result<(Verifier, ScheduleReport), ScheduleError> {
    let base_report = base.report().clone();
    let total_mods: usize = rounds.iter().map(|r| r.mods.len()).sum();
    let mut work: VecDeque<Round> = rounds.into();
    let mut report = ScheduleReport { total_mods, ..Default::default() };
    // The intended boundary trajectory, chained round by round.
    let mut view = TableView::of_switches(switches);
    let mut current = base;

    let mut next = if work.is_empty() {
        None
    } else {
        Some(prove_with_merge(
            &mut work,
            &current,
            &base_report,
            pre_intent,
            post_intent,
            threads,
            cache,
            &mut report.merges,
            0,
        )?)
    };

    let mut index = 0usize;
    while let Some(p) = next.take() {
        let Proven { round, verifier, proof_wall_ns, merged_from, pairs_walked, post } = p;
        for (sw, t, m) in &round.mods {
            view.apply(*sw, *t, m);
        }

        // Send the round tagged, then prove the *next* boundary while the
        // mods are in flight — that proof is what the pipelining overlaps
        // onto this round's install window.
        channel.begin_round(index as u32 + 1);
        let mut per_switch = vec![0usize; switches.len()];
        let mut sends = 0u64;
        for (sw, t, m) in &round.mods {
            channel.send(*sw as usize, *t, m.clone());
            per_switch[*sw as usize] += 1;
            sends += 1;
        }
        if !work.is_empty() {
            next = Some(prove_with_merge(
                &mut work,
                &verifier,
                &base_report,
                pre_intent,
                post_intent,
                threads,
                cache,
                &mut report.merges,
                index + 1,
            )?);
        }
        channel.barrier(switches);
        let busiest = per_switch.iter().copied().max().unwrap_or(0);
        let mut install_ns = timing.install_time_ns(busiest) + 2 * channel.delay_ns();
        let mut backoff_ns = 0u64;

        // Reconcile the live tables against the intended boundary: the
        // diff is computed from what is *actually* installed, so silently
        // dropped or reordered mods are detected and re-issued.
        let mut attempts = 1u32;
        let mut retries = 0u32;
        let mut converged = false;
        loop {
            let mut mods = Vec::new();
            let mut per = vec![0usize; switches.len()];
            for (sw, s) in switches.iter().enumerate() {
                for t in [0u8, 1u8] {
                    for m in diff_tables(s.table(t).entries(), view.entries(sw as u32, t)) {
                        per[sw] += 1;
                        mods.push((sw, t, m));
                    }
                }
            }
            if mods.is_empty() {
                converged = true;
                break;
            }
            if attempts > retry.max_retries {
                break;
            }
            retries += 1;
            let wait = retry.backoff_base_ns * u64::from(retry.backoff_factor).pow(attempts - 1);
            backoff_ns += wait;
            install_ns += wait;
            for (sw, t, m) in mods {
                channel.send(sw, t, m);
                sends += 1;
            }
            channel.barrier(switches);
            install_ns +=
                timing.install_time_ns(per.iter().copied().max().unwrap_or(0))
                    + 2 * channel.delay_ns();
            attempts += 1;
        }

        // Divergence fallback: the boundary proof describes the intended
        // state; if the channel never got the switches there, prove what
        // is actually installed before going on.
        let mut reverified = false;
        if !converged {
            reverified = true;
            report.reverifications += 1;
            let intent = if post { post_intent } else { pre_intent };
            let live = Verifier::check_cached(
                cluster,
                TableView::of_switches(switches),
                intent.clone(),
                threads,
                cache,
            );
            if !no_new_findings(live.report(), &base_report) {
                report.violations += 1;
                return Err(ScheduleError::DivergedUnsafe {
                    round: index,
                    summary: live.report().summary(),
                });
            }
        }

        report.rounds.push(RoundReport {
            round: index,
            phase: round.phase,
            mods: round.mods.len(),
            units: round.units,
            merged_from,
            proof_wall_ns,
            pairs_walked,
            install_ns,
            backoff_ns,
            sends,
            retries,
            converged,
            reverified,
        });
        current = verifier;
        index += 1;
    }

    // Overall convergence: later rounds chase earlier stragglers (every
    // retry diff targets the chained view), so only the final divergence
    // matters.
    report.converged = switches.iter().enumerate().all(|(sw, s)| {
        (0u8..2).all(|t| {
            diff_tables(s.table(t).entries(), view.entries(sw as u32, t)).is_empty()
        })
    });
    report.proof_wall_ns_total = report.rounds.iter().map(|r| r.proof_wall_ns).sum();
    report.install_ns_total = report.rounds.iter().map(|r| r.install_ns).sum();
    // Pipelined model: proof 0 up front, then each round's install window
    // overlaps the next round's proof.
    report.pipelined_ns = report.rounds.first().map_or(0, |r| r.proof_wall_ns)
        + report
            .rounds
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let next_proof =
                    report.rounds.get(i + 1).map_or(0, |n| n.proof_wall_ns);
                r.install_ns.max(next_proof)
            })
            .sum::<u64>();
    Ok((current, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SliceId;
    use sdt_openflow::{FlowEntry, FlowMatch, HostAddr, PortNo};

    fn t0(port: u16, md: u32) -> FlowEntry {
        FlowEntry {
            m: FlowMatch::on_port(PortNo(port)),
            priority: 10,
            action: Action::WriteMetadataGoto(md),
        }
    }

    fn t1(md: u32, dst: u32, out: u16) -> FlowEntry {
        FlowEntry {
            m: FlowMatch::to_dst(HostAddr(dst)).and_metadata(md),
            priority: 10,
            action: Action::Output(PortNo(out)),
        }
    }

    fn view1() -> TableView {
        TableView::empty(1)
    }

    #[test]
    fn modify_pairs_stay_atomic() {
        // Same key delete+add = MODIFY: one unit, never split.
        let mut e = Epoch { slice: SliceId(0), ..Default::default() };
        e.deletes.push(crate::epoch::EpochDelete {
            switch: 0,
            table: 1,
            m: t1(5, 1, 1).m,
            priority: 10,
        });
        e.adds.push(crate::epoch::EpochAdd { switch: 0, table: 1, entry: t1(5, 1, 2) });
        let rounds = compile_rounds(&e, &view1());
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].units, 1);
        assert_eq!(rounds[0].mods.len(), 2);
        assert_eq!(rounds[0].phase, RoundPhase::Cutover);
    }

    #[test]
    fn adds_layer_before_cutover_before_collect() {
        // Grow: new t1 route, then the t0 add steering to it; shrink: the
        // old port's t0 delete, then its route's t1 delete.
        let mut e = Epoch { slice: SliceId(0), ..Default::default() };
        e.adds.push(crate::epoch::EpochAdd { switch: 0, table: 1, entry: t1(9, 2, 3) });
        e.adds.push(crate::epoch::EpochAdd { switch: 0, table: 0, entry: t0(4, 9) });
        e.deletes.push(crate::epoch::EpochDelete {
            switch: 0,
            table: 0,
            m: t0(1, 5).m,
            priority: 10,
        });
        e.deletes.push(crate::epoch::EpochDelete {
            switch: 0,
            table: 1,
            m: t1(5, 1, 1).m,
            priority: 10,
        });
        // Pre-state: port 1 classifies into metadata 5, routed by t1.
        let mut before = view1();
        before.apply(0, 0, &FlowMod::Add(t0(1, 5)));
        before.apply(0, 1, &FlowMod::Add(t1(5, 1, 1)));
        let rounds = compile_rounds(&e, &before);
        let phases: Vec<RoundPhase> = rounds.iter().map(|r| r.phase).collect();
        assert_eq!(
            phases,
            vec![RoundPhase::Make, RoundPhase::Make, RoundPhase::Cutover, RoundPhase::Collect]
        );
        // t1 add strictly before the t0 add that steers to it.
        assert!(matches!(rounds[0].mods[0], (0, 1, FlowMod::Add(_))));
        assert!(matches!(rounds[1].mods[0], (0, 0, FlowMod::Add(_))));
        // Concatenation preserves the mod multiset.
        let total: usize = rounds.iter().map(|r| r.mods.len()).sum();
        assert_eq!(total, e.ordered_mods().len());
    }

    #[test]
    fn independent_t0_add_needs_no_extra_layer() {
        // A t0 add whose metadata gains no new routes this epoch sits in
        // layer 0 alongside the t1 adds.
        let mut e = Epoch { slice: SliceId(0), ..Default::default() };
        e.adds.push(crate::epoch::EpochAdd { switch: 0, table: 0, entry: t0(4, 9) });
        let rounds = compile_rounds(&e, &view1());
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].phase, RoundPhase::Make);
    }
}
