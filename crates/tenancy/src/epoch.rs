//! Epoched flow-mod batches — the unit of multi-tenant reconfiguration.
//!
//! Every mutation the [`crate::SliceManager`] performs on the shared
//! switches — admitting a slice, reconfiguring it, tearing it down — is
//! first materialized as an [`Epoch`]: the complete set of additions and
//! deletions, each targeted at a (physical switch, pipeline table). Before
//! anything is applied, [`Epoch::verify`] proves that every mod's match
//! space lies inside the owning slice's namespace and outside every other
//! slice's — so a reconfiguration *cannot* touch a co-tenant's rules, by
//! construction and by check.
//!
//! Application order implements make-before-break:
//!
//! 1. **adds, table 1 first** — new routing entries become matchable before
//!    any port steers to them;
//! 2. **adds, table 0** — new classify entries land *behind* the old ones
//!    (same priority, stable insertion order), so the old pipeline keeps
//!    winning first-match until step 3;
//! 3. **deletes, table 0 first** — removing an old classify entry is the
//!    per-port atomic cutover to the already-installed new pipeline;
//! 4. **deletes, table 1** — only then is the old routing state garbage
//!    collected.
//!
//! At no instant does a port classify into a sub-switch whose routing
//! entries are absent, and at no instant is another slice's state touched.

use crate::SliceId;
use sdt_core::synthesis::SynthesisOutput;
use sdt_openflow::{diff_tables, FlowEntry, FlowMatch, FlowMod, InstallTiming, PortNo};
use std::collections::HashSet;
use std::fmt;

/// One entry installation, targeted at a switch and pipeline table.
#[derive(Clone, Copy, Debug)]
pub struct EpochAdd {
    /// Physical switch.
    pub switch: u32,
    /// Pipeline table (0 or 1).
    pub table: u8,
    /// Entry to install.
    pub entry: FlowEntry,
}

/// One strict deletion (exact match + priority), targeted like an add.
#[derive(Clone, Copy, Debug)]
pub struct EpochDelete {
    /// Physical switch.
    pub switch: u32,
    /// Pipeline table (0 or 1).
    pub table: u8,
    /// Match of the entry to remove.
    pub m: FlowMatch,
    /// Priority of the entry to remove.
    pub priority: u16,
}

/// A verified, atomic batch of flow-mods belonging to exactly one slice.
#[derive(Clone, Debug, Default)]
pub struct Epoch {
    /// The slice this epoch mutates.
    pub slice: SliceId,
    /// Entries to install (applied first: table 1, then table 0).
    pub adds: Vec<EpochAdd>,
    /// Entries to remove (applied last: table 0, then table 1).
    pub deletes: Vec<EpochDelete>,
}

/// The match-space a slice owns on the shared fabric: its ingress ports
/// (table 0) and its metadata range (table 1). Two slices' spaces are
/// disjoint by construction; [`Epoch::verify`] re-proves it per epoch.
#[derive(Clone, Debug, Default)]
pub struct OwnedSpace {
    /// (physical switch, ingress port) pairs whose table-0 entries belong
    /// to the slice.
    pub ports: HashSet<(u32, PortNo)>,
    /// Metadata ranges `[base, base + len)` scoping the slice's table-1
    /// entries. More than one range only transiently, mid-reconfiguration.
    pub metadata: Vec<(u32, u32)>,
}

impl OwnedSpace {
    /// Does the space own this ingress port?
    pub fn contains_port(&self, switch: u32, port: PortNo) -> bool {
        self.ports.contains(&(switch, port))
    }

    /// Does the space own this metadata value?
    pub fn contains_metadata(&self, md: u32) -> bool {
        self.metadata.iter().any(|&(base, len)| md >= base && md - base < len)
    }

    /// Absorb another space (used to union "all other slices").
    pub fn merge(&mut self, other: &OwnedSpace) {
        self.ports.extend(other.ports.iter().copied());
        self.metadata.extend(other.metadata.iter().copied());
    }
}

/// Why an epoch failed verification. Any of these firing means a manager
/// bug, not an operator error — the manager refuses to apply the epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EpochViolation {
    /// A mod targets an ingress port owned by another slice.
    ForeignPort {
        /// Physical switch.
        switch: u32,
        /// The foreign port.
        port: PortNo,
    },
    /// A table-0 mod targets a port the slice does not own.
    UnownedPort {
        /// Physical switch.
        switch: u32,
        /// The unowned port.
        port: PortNo,
    },
    /// A mod's metadata lies in another slice's range.
    ForeignMetadata {
        /// Physical switch.
        switch: u32,
        /// The foreign metadata value.
        metadata: u32,
    },
    /// A table-1 mod's metadata is outside the slice's ranges.
    UnownedMetadata {
        /// Physical switch.
        switch: u32,
        /// The unowned metadata value.
        metadata: u32,
    },
    /// A mod's match is not scoped at all (no in-port on table 0, no
    /// metadata on table 1) — it could match co-tenant traffic.
    UnscopedMatch {
        /// Physical switch.
        switch: u32,
        /// Pipeline table.
        table: u8,
    },
}

impl fmt::Display for EpochViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpochViolation::ForeignPort { switch, port } => {
                write!(f, "switch {switch}: mod touches foreign port {}", port.0)
            }
            EpochViolation::UnownedPort { switch, port } => {
                write!(f, "switch {switch}: mod touches unowned port {}", port.0)
            }
            EpochViolation::ForeignMetadata { switch, metadata } => {
                write!(f, "switch {switch}: mod touches foreign metadata {metadata}")
            }
            EpochViolation::UnownedMetadata { switch, metadata } => {
                write!(f, "switch {switch}: mod touches unowned metadata {metadata}")
            }
            EpochViolation::UnscopedMatch { switch, table } => {
                write!(f, "switch {switch} table {table}: unscoped match")
            }
        }
    }
}

/// What applying an epoch cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochReport {
    /// Entries installed.
    pub adds: usize,
    /// Entries removed.
    pub deletes: usize,
    /// Flow-mods on the busiest switch (switches install in parallel).
    pub max_mods_one_switch: usize,
    /// Modeled wall-clock of the epoch, ns (busiest switch + barrier).
    pub install_time_ns: u64,
}

impl EpochReport {
    /// Total flow-mods sent.
    pub fn flow_mods(&self) -> usize {
        self.adds + self.deletes
    }
}

impl Epoch {
    /// Diff two synthesized pipelines into an epoch: exactly the mods that
    /// turn `old` into `new`, table by table, switch by switch. Entries
    /// present in both stay untouched, which is what keeps same-family
    /// reconfigurations proportional to the delta.
    pub fn from_diff(slice: SliceId, old: &SynthesisOutput, new: &SynthesisOutput) -> Epoch {
        let mut epoch = Epoch { slice, ..Default::default() };
        let num_switches = old.table0.len().max(new.table0.len());
        let empty: Vec<FlowEntry> = Vec::new();
        for sw in 0..num_switches {
            for (table, old_t, new_t) in [
                (0u8, old.table0.get(sw).unwrap_or(&empty), new.table0.get(sw).unwrap_or(&empty)),
                (1u8, old.table1.get(sw).unwrap_or(&empty), new.table1.get(sw).unwrap_or(&empty)),
            ] {
                for m in diff_tables(old_t, new_t) {
                    match m {
                        FlowMod::Add(entry) => {
                            epoch.adds.push(EpochAdd { switch: sw as u32, table, entry })
                        }
                        FlowMod::Delete(fm, priority) => epoch.deletes.push(EpochDelete {
                            switch: sw as u32,
                            table,
                            m: fm,
                            priority,
                        }),
                        FlowMod::Clear => unreachable!("diff_tables never clears"),
                    }
                }
            }
        }
        epoch
    }

    /// Flow-mods this epoch sends to each switch (adds + deletes).
    pub fn mods_per_switch(&self, num_switches: usize) -> Vec<usize> {
        let mut per = vec![0usize; num_switches];
        for a in &self.adds {
            per[a.switch as usize] += 1;
        }
        for d in &self.deletes {
            per[d.switch as usize] += 1;
        }
        per
    }

    /// *Adds* this epoch sends to each switch — the transient extra table
    /// occupancy make-before-break needs headroom for.
    pub fn adds_per_switch(&self, num_switches: usize) -> Vec<usize> {
        let mut per = vec![0usize; num_switches];
        for a in &self.adds {
            per[a.switch as usize] += 1;
        }
        per
    }

    /// Prove that every mod in the epoch stays inside `own` (the epoch's
    /// slice, old ∪ new namespace) and outside `others` (the union of every
    /// co-tenant's namespace). This is the "provably never touch another
    /// slice's rules" guarantee: table-0 mods must name an owned, non-foreign
    /// ingress port; table-1 mods an owned, non-foreign metadata value.
    pub fn verify(&self, own: &OwnedSpace, others: &OwnedSpace) -> Result<(), EpochViolation> {
        let check = |switch: u32, table: u8, m: &FlowMatch| -> Result<(), EpochViolation> {
            match table {
                0 => {
                    let Some(port) = m.in_port else {
                        return Err(EpochViolation::UnscopedMatch { switch, table });
                    };
                    if others.contains_port(switch, port) {
                        return Err(EpochViolation::ForeignPort { switch, port });
                    }
                    if !own.contains_port(switch, port) {
                        return Err(EpochViolation::UnownedPort { switch, port });
                    }
                    Ok(())
                }
                _ => {
                    let Some(md) = m.metadata else {
                        return Err(EpochViolation::UnscopedMatch { switch, table });
                    };
                    if others.contains_metadata(md) {
                        return Err(EpochViolation::ForeignMetadata { switch, metadata: md });
                    }
                    if !own.contains_metadata(md) {
                        return Err(EpochViolation::UnownedMetadata { switch, metadata: md });
                    }
                    Ok(())
                }
            }
        };
        for a in &self.adds {
            check(a.switch, a.table, &a.entry.m)?;
        }
        for d in &self.deletes {
            check(d.switch, d.table, &d.m)?;
        }
        Ok(())
    }

    /// The epoch lowered to wire order: the exact `(switch, table,
    /// flow-mod)` sequence make-before-break application sends — adds table
    /// 1 → table 0, then deletes table 0 → table 1, with a same-(match,
    /// priority) delete+add pair applied as an in-place replacement
    /// (OpenFlow MODIFY: the add is held back and lands right after its
    /// delete, otherwise the delete would wipe its own replacement).
    ///
    /// Both the manager's `apply_epoch` and the static pre-install check
    /// replay this sequence, so what the verifier proves is byte-for-byte
    /// what the switches receive.
    pub fn ordered_mods(&self) -> Vec<(u32, u8, FlowMod)> {
        type ModKey = (u32, u8, FlowMatch, u16);
        let delete_keys: HashSet<ModKey> =
            self.deletes.iter().map(|d| (d.switch, d.table, d.m, d.priority)).collect();
        let mut replacements: std::collections::HashMap<ModKey, Vec<FlowEntry>> =
            std::collections::HashMap::new();
        let mut mods = Vec::with_capacity(self.adds.len() + self.deletes.len());
        for table in [1u8, 0u8] {
            for a in self.adds.iter().filter(|a| a.table == table) {
                let key = (a.switch, a.table, a.entry.m, a.entry.priority);
                if delete_keys.contains(&key) {
                    replacements.entry(key).or_default().push(a.entry);
                } else {
                    mods.push((a.switch, a.table, FlowMod::Add(a.entry)));
                }
            }
        }
        for table in [0u8, 1u8] {
            for d in self.deletes.iter().filter(|d| d.table == table) {
                mods.push((d.switch, d.table, FlowMod::Delete(d.m, d.priority)));
                let key = (d.switch, d.table, d.m, d.priority);
                for e in replacements.remove(&key).into_iter().flatten() {
                    mods.push((d.switch, d.table, FlowMod::Add(e)));
                }
            }
        }
        mods
    }

    /// Build the report for this epoch (before or after applying it).
    pub fn report(&self, num_switches: usize, timing: &InstallTiming) -> EpochReport {
        let max = self.mods_per_switch(num_switches).into_iter().max().unwrap_or(0);
        EpochReport {
            adds: self.adds.len(),
            deletes: self.deletes.len(),
            max_mods_one_switch: max,
            install_time_ns: timing.install_time_ns(max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdt_openflow::{Action, HostAddr};

    fn t0_entry(port: u16, md: u32) -> FlowEntry {
        FlowEntry {
            m: FlowMatch::on_port(PortNo(port)),
            priority: 10,
            action: Action::WriteMetadataGoto(md),
        }
    }

    fn t1_entry(md: u32, dst: u32, out: u16) -> FlowEntry {
        FlowEntry {
            m: FlowMatch::to_dst(HostAddr(dst)).and_metadata(md),
            priority: 10,
            action: Action::Output(PortNo(out)),
        }
    }

    fn synth(t0: Vec<FlowEntry>, t1: Vec<FlowEntry>) -> SynthesisOutput {
        let entries = t0.len() + t1.len();
        SynthesisOutput {
            table0: vec![t0],
            table1: vec![t1],
            entries_per_switch: vec![entries],
        }
    }

    #[test]
    fn diff_splits_adds_and_deletes_by_table() {
        let old = synth(vec![t0_entry(1, 100)], vec![t1_entry(100, 7, 1)]);
        let new = synth(vec![t0_entry(2, 100)], vec![t1_entry(100, 7, 2)]);
        let e = Epoch::from_diff(SliceId(0), &old, &new);
        assert_eq!(e.adds.len(), 2);
        assert_eq!(e.deletes.len(), 2);
        assert_eq!(e.mods_per_switch(1), vec![4]);
        assert_eq!(e.adds_per_switch(1), vec![2]);
    }

    #[test]
    fn verify_rejects_foreign_and_unowned_matches() {
        let own = OwnedSpace {
            ports: [(0, PortNo(1))].into_iter().collect(),
            metadata: vec![(100, 4)],
        };
        let others = OwnedSpace {
            ports: [(0, PortNo(9))].into_iter().collect(),
            metadata: vec![(200, 4)],
        };
        let mk = |t0: Vec<FlowEntry>, t1: Vec<FlowEntry>| {
            Epoch::from_diff(SliceId(0), &synth(vec![], vec![]), &synth(t0, t1))
        };
        assert_eq!(mk(vec![t0_entry(1, 100)], vec![t1_entry(100, 0, 1)]).verify(&own, &others), Ok(()));
        assert!(matches!(
            mk(vec![t0_entry(9, 100)], vec![]).verify(&own, &others),
            Err(EpochViolation::ForeignPort { .. })
        ));
        assert!(matches!(
            mk(vec![t0_entry(3, 100)], vec![]).verify(&own, &others),
            Err(EpochViolation::UnownedPort { .. })
        ));
        assert!(matches!(
            mk(vec![], vec![t1_entry(201, 0, 1)]).verify(&own, &others),
            Err(EpochViolation::ForeignMetadata { .. })
        ));
        assert!(matches!(
            mk(vec![], vec![t1_entry(50, 0, 1)]).verify(&own, &others),
            Err(EpochViolation::UnownedMetadata { .. })
        ));
        // A table-1 entry with no metadata scope is never acceptable.
        let unscoped = FlowEntry {
            m: FlowMatch::to_dst(HostAddr(0)),
            priority: 10,
            action: Action::Output(PortNo(1)),
        };
        assert!(matches!(
            mk(vec![], vec![unscoped]).verify(&own, &others),
            Err(EpochViolation::UnscopedMatch { table: 1, .. })
        ));
    }

    #[test]
    fn report_models_busiest_switch() {
        let old = synth(vec![], vec![]);
        let new = synth(vec![t0_entry(1, 100)], vec![t1_entry(100, 7, 1)]);
        let e = Epoch::from_diff(SliceId(0), &old, &new);
        let r = e.report(1, &InstallTiming::default());
        assert_eq!(r.adds, 2);
        assert_eq!(r.deletes, 0);
        assert_eq!(r.flow_mods(), 2);
        assert_eq!(r.max_mods_one_switch, 2);
        assert_eq!(r.install_time_ns, InstallTiming::default().install_time_ns(2));
    }
}
