//! The slice manager: admission control and lifecycle over one shared
//! cluster.
//!
//! A *slice* is one logical topology projected onto the shared physical
//! cluster alongside other slices. The manager holds the only mutable
//! reference to the live switches; every slice mutation goes through an
//! [`Epoch`] that is verified against the namespace map before a single
//! flow-mod is applied.
//!
//! ## Resource model
//!
//! Three hard resources are accounted per slice:
//!
//! * **host ports** — each logical host attachment claims one;
//! * **cables** — each logical fabric link claims one self-link or
//!   inter-switch cable;
//! * **flow-table entries** — each slice's remapped pipeline occupies
//!   entries of the per-switch shared table budget.
//!
//! Port/cable disjointness is enforced by reusing the projector's
//! [`FailedResources`] mechanism: everything a co-tenant holds is passed to
//! the new slice's projection as if it were failed hardware, so the
//! projection *cannot* assign it — and a rejection reports the genuinely
//! free counts, not the raw wiring.
//!
//! ## Namespacing
//!
//! Every slice's topology numbers switches and hosts from 0, so the raw
//! synthesized pipelines of two slices would collide on table-1 metadata
//! (`write-metadata(sub-switch id)`) and host addresses. The manager
//! allocates each slice a private metadata range and host-address range
//! (monotonic bases, never reused) and rewrites the synthesized entries
//! into them before installation. Table-0 entries need no rewrite: their
//! ingress ports are disjoint by the resource model.

use crate::epoch::{Epoch, EpochReport, OwnedSpace};
use sdt_core::cluster::{PhysLink, PhysicalCluster};
use sdt_core::sdt::{
    FailedResources, ProjectOptions, ProjectionError, SdtProjection, SdtProjector,
};
use sdt_core::synthesis::SynthesisOutput;
use sdt_openflow::{
    Action, HostAddr, InstallTiming, OpenFlowSwitch, SwitchConfig,
};
use sdt_routing::{default_strategy, RouteTable};
use sdt_topology::{HostId, SwitchId, Topology};
use sdt_verify::{Intent, SharedWalkCache, TableView, Verifier, VerifyStats, WalkCache};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Identifier of an admitted slice. Ids are never reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SliceId(pub u32);

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice-{}", self.0)
    }
}

/// Why a slice was refused. Every variant names the scarce resource and
/// where it ran out; nothing is installed on a refusal.
#[derive(Clone, Debug)]
pub enum AdmissionError {
    /// Ports, cables or single-tenant table capacity are short. The counts
    /// inside reflect what co-tenants left free, not the raw wiring.
    Resources(ProjectionError),
    /// The shared flow table of a switch lacks headroom for this slice's
    /// entries on top of its co-tenants' (plus, during reconfiguration, the
    /// make-before-break overlap).
    TableHeadroom {
        /// Physical switch that is out of entries.
        switch: u32,
        /// Entries this operation needs to install there.
        need: usize,
        /// Entries actually free there.
        free: usize,
    },
    /// No slice with this id.
    UnknownSlice(SliceId),
    /// Epoch verification failed — a manager invariant was violated and the
    /// epoch was not applied. Should never happen.
    EpochViolation(String),
    /// The static verifier proved the pending epoch would create a loop,
    /// blackhole or cross-slice leak; nothing was installed. The string is
    /// the verifier's summary naming the offending rule(s).
    StaticViolation(String),
    /// A scheduled migration stopped mid-flight: a round boundary could
    /// not be proven safe, or the control channel diverged and the live
    /// state failed re-verification. Unlike every other variant, flow-mods
    /// up to the failing round may already be applied — each state
    /// actually reached was individually proven safe.
    ScheduleFailed(String),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Resources(e) => write!(f, "insufficient resources: {e}"),
            AdmissionError::TableHeadroom { switch, need, free } => write!(
                f,
                "switch {switch}: flow table lacks headroom ({need} entries needed, {free} free)"
            ),
            AdmissionError::UnknownSlice(id) => write!(f, "unknown {id}"),
            AdmissionError::EpochViolation(v) => write!(f, "epoch verification failed: {v}"),
            AdmissionError::StaticViolation(v) => {
                write!(f, "static verification rejected the epoch: {v}")
            }
            AdmissionError::ScheduleFailed(v) => {
                write!(f, "scheduled migration failed: {v}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// One queued lifecycle operation, as consumed by
/// [`SliceManager::apply_batch`]. Routes are resolved by the caller (the
/// controller's strategy/deadlock gates run *before* queueing) so a batch
/// is pure admission work.
#[derive(Clone, Debug)]
pub enum SliceOp {
    /// Admit a new slice.
    Create {
        /// Operator-facing name.
        name: String,
        /// Logical topology to realize.
        topo: Topology,
        /// Resolved routing.
        routes: RouteTable,
    },
    /// Make-before-break reconfiguration of an admitted slice.
    Reconfigure {
        /// Slice to migrate.
        id: SliceId,
        /// New logical topology.
        topo: Topology,
        /// Resolved routing for the new topology.
        routes: RouteTable,
    },
    /// Tear a slice down.
    Destroy {
        /// Slice to remove.
        id: SliceId,
    },
}

impl SliceOp {
    /// The already-admitted slice this operation touches (`None` for a
    /// create — fresh ids cannot collide). Used to split batches at
    /// repeated ids, where the disjoint-match-space argument behind the
    /// combined proof would not hold.
    fn slice_id(&self) -> Option<u32> {
        match self {
            SliceOp::Create { .. } => None,
            SliceOp::Reconfigure { id, .. } | SliceOp::Destroy { id } => Some(id.0),
        }
    }
}

/// What a successful [`SliceOp`] produced.
#[derive(Clone, Debug)]
pub enum OpOutcome {
    /// A create: the new slice's id.
    Created(SliceId),
    /// A reconfiguration: the applied epoch's report.
    Reconfigured(EpochReport),
    /// A teardown: the reclaimed resources.
    Destroyed(ReclaimedResources),
}

/// The manager's mutable state, dumped by [`SliceManager::export`] and
/// consumed by [`SliceManager::restore`]. Serialization lives with the
/// daemon (`sdt-sdtd`), which owns the on-disk format; this struct is the
/// typed contract between the two.
#[derive(Clone, Debug)]
pub struct ManagerExport {
    /// Admitted slices, in id order.
    pub slices: Vec<Slice>,
    /// Next slice id (ids are never reused, so this is not derivable from
    /// `slices` once something was destroyed).
    pub next_id: u32,
    /// Next free metadata namespace base.
    pub next_metadata: u32,
    /// Next free host-address namespace base.
    pub next_addr: u32,
    /// Per switch: live `(table 0, table 1)` entries in first-match order.
    pub tables: Vec<(Vec<sdt_openflow::FlowEntry>, Vec<sdt_openflow::FlowEntry>)>,
}

/// Why [`SliceManager::restore`] refused a dump. Restores are all-or-
/// nothing: any inconsistency between the dump and the cluster leaves
/// nothing constructed.
#[derive(Clone, Debug)]
pub struct RestoreError(pub String);

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "restore rejected: {}", self.0)
    }
}

impl std::error::Error for RestoreError {}

/// Resources handed back by [`SliceManager::destroy`] — exactly what the
/// slice had reserved, by construction of the teardown epoch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReclaimedResources {
    /// Host ports returned to the free pool.
    pub host_ports: usize,
    /// Cables (self-links + inter-switch links) returned.
    pub cables: usize,
    /// Flow-table entries removed across the cluster.
    pub flow_entries: usize,
}

/// A compiled, not-yet-applied scheduled reconfiguration: the epoch, its
/// dependency-ordered rounds, and the intents each round boundary is
/// proven against. Produced by [`SliceManager::plan_scheduled`]; consumed
/// by [`SliceManager::commit_scheduled`]. Planning is pure — nothing is
/// installed and no bookkeeping moves until commit.
#[derive(Clone, Debug)]
pub struct MigrationPlan {
    epoch: Epoch,
    rounds: Vec<crate::schedule::Round>,
    pre_intent: Intent,
    post_intent: Intent,
    new_slice: Slice,
    fits: bool,
}

impl MigrationPlan {
    /// The flow-mod batch this plan installs.
    pub fn epoch(&self) -> &Epoch {
        &self.epoch
    }

    /// The dependency-ordered rounds the epoch was compiled into.
    pub fn rounds(&self) -> &[crate::schedule::Round] {
        &self.rounds
    }

    /// Reachability intent the pre-cutover boundaries are proven against
    /// (the fleet as admitted today, old slice included).
    pub fn pre_intent(&self) -> &Intent {
        &self.pre_intent
    }

    /// Reachability intent from the cutover round on (old slice replaced
    /// by the reconfigured one).
    pub fn post_intent(&self) -> &Intent {
        &self.post_intent
    }
}

/// An admitted slice: its logical topology, projection, namespace, and the
/// remapped pipeline actually installed on the shared switches.
#[derive(Clone, Debug)]
pub struct Slice {
    /// Stable identifier.
    pub id: SliceId,
    /// Operator-facing name.
    pub name: String,
    /// The logical topology this slice realizes.
    pub topology: Topology,
    /// Routing table behind the slice's pipeline.
    pub routes: RouteTable,
    /// Projection onto the shared cluster (ports/cables it owns).
    pub projection: SdtProjection,
    /// First metadata value of the slice's table-1 namespace.
    pub metadata_base: u32,
    /// Reserved metadata values (may exceed the current topology's switch
    /// count after a shrinking reconfiguration).
    pub metadata_reserved: u32,
    /// First host address of the slice's namespace.
    pub addr_base: u32,
    /// Reserved host addresses.
    pub addr_reserved: u32,
    /// The namespaced pipeline as installed (synthesis remapped into the
    /// slice's metadata/address ranges).
    pub installed: SynthesisOutput,
    /// Epochs applied to this slice (1 = initial install).
    pub epochs: u32,
}

impl Slice {
    /// Flow-table entries this slice occupies across the cluster.
    pub fn entries(&self) -> usize {
        self.installed.entries_per_switch.iter().sum()
    }

    /// The fabric-wide address of one of the slice's hosts.
    pub fn host_addr(&self, h: HostId) -> HostAddr {
        HostAddr(self.addr_base + h.0)
    }

    /// The match-space this slice owns on the shared switches.
    pub fn owned_space(&self) -> OwnedSpace {
        let mut own = OwnedSpace {
            metadata: vec![(self.metadata_base, self.metadata_reserved)],
            ..Default::default()
        };
        for (sw, t0) in self.installed.table0.iter().enumerate() {
            for e in t0 {
                if let Some(p) = e.m.in_port {
                    own.ports.insert((sw as u32, p));
                }
            }
        }
        own
    }
}

/// Occupancy of one shared switch's flow table.
#[derive(Clone, Copy, Debug)]
pub struct SwitchOccupancy {
    /// Physical switch.
    pub switch: u32,
    /// Shared pipeline capacity, entries.
    pub capacity: usize,
    /// Entries installed (all slices).
    pub used: usize,
    /// Entries free.
    pub free: usize,
}

/// One slice's row in [`ManagerStatus`].
#[derive(Clone, Debug)]
pub struct SliceStatus {
    /// Slice id.
    pub id: SliceId,
    /// Slice name.
    pub name: String,
    /// Logical topology name.
    pub topology: String,
    /// Logical switches.
    pub switches: u32,
    /// Logical hosts.
    pub hosts: u32,
    /// Host ports reserved.
    pub host_ports: usize,
    /// Cables reserved.
    pub cables: usize,
    /// Flow-table entries occupied.
    pub entries: usize,
    /// Metadata namespace `[base, base + reserved)`.
    pub metadata_range: (u32, u32),
    /// Host-address namespace `[base, base + reserved)`.
    pub addr_range: (u32, u32),
    /// Epochs applied (1 = initial install).
    pub epochs: u32,
}

/// Cluster-wide resource accounting snapshot.
#[derive(Clone, Debug)]
pub struct ManagerStatus {
    /// Per-switch flow-table occupancy.
    pub switches: Vec<SwitchOccupancy>,
    /// Host ports wired on the cluster.
    pub host_ports_total: usize,
    /// Host ports held by slices.
    pub host_ports_used: usize,
    /// Cables wired on the cluster.
    pub cables_total: usize,
    /// Cables held by slices.
    pub cables_used: usize,
    /// Per-slice rows, in id order.
    pub slices: Vec<SliceStatus>,
}

/// Admission-controlled multi-tenant manager over one physical cluster.
pub struct SliceManager {
    cluster: PhysicalCluster,
    projector: SdtProjector,
    timing: InstallTiming,
    switches: Vec<OpenFlowSwitch>,
    slices: BTreeMap<u32, Slice>,
    next_id: u32,
    next_metadata: u32,
    next_addr: u32,
    /// Gate every epoch on a static proof before any flow-mod is applied.
    /// On by default; [`SliceManager::set_static_verify`] is the escape
    /// hatch for experiments that install intentionally broken tables.
    static_verify: bool,
    /// Proof of the *current* live tables, carried between epochs so each
    /// admission only pays for the delta ([`Verifier::check_delta`]).
    /// `None` until first use, or after the escape hatch bypassed a proof.
    verifier: Option<Verifier>,
    /// Memoized per-class walk results, retained across every proof this
    /// manager runs (admissions, reconfigurations, teardowns, full
    /// re-verifies). Entries are fingerprint-validated, so they survive the
    /// escape hatch and direct table edits: a stale entry simply misses.
    /// Held as a [`SharedWalkCache`]: each proof leases the cache and the
    /// generation guard discards a pass's harvest if an invalidation
    /// (e.g. [`SliceManager::switches_mut`]) raced it.
    cache: SharedWalkCache,
    /// Per-round reconciliation budget for scheduled installs. The default
    /// suits epochs of a few hundred flow-mods; the expected number of
    /// stragglers after `r` retries is `mods * drop_prob^(r+1)`, so large
    /// fabrics over very lossy channels need more retries to converge —
    /// see [`SliceManager::set_retry_policy`].
    retry: crate::schedule::RetryPolicy,
}

impl SliceManager {
    /// An empty manager over a wired cluster: live switches with empty
    /// tables, no slices.
    pub fn new(cluster: PhysicalCluster) -> Self {
        let model = cluster.model();
        let cfg = SwitchConfig {
            num_ports: model.ports as u16,
            port_gbps: model.gbps,
            table_capacity: model.table_capacity,
        };
        let switches =
            (0..cluster.num_switches()).map(|i| OpenFlowSwitch::new(i, cfg)).collect();
        SliceManager {
            cluster,
            // §VII-C mitigation stays on: a slice that only fits merged
            // still beats a rejection.
            projector: SdtProjector { merge_entries_on_overflow: true, ..Default::default() },
            timing: InstallTiming::default(),
            switches,
            slices: BTreeMap::new(),
            next_id: 0,
            next_metadata: 0,
            next_addr: 0,
            static_verify: true,
            verifier: None,
            cache: SharedWalkCache::new(),
            retry: crate::schedule::RetryPolicy::default(),
        }
    }

    /// Escape hatch: enable/disable the static pre-install proof. Disabling
    /// also drops the cached proof — it no longer describes what is
    /// installed once unverified epochs go through.
    pub fn set_static_verify(&mut self, on: bool) {
        self.static_verify = on;
        if !on {
            self.verifier = None;
        }
    }

    /// Per-round reconciliation budget for scheduled installs
    /// ([`SliceManager::commit_scheduled`]). Convergence over a channel
    /// dropping a fraction `p` of flow-mods needs roughly
    /// `log(mods) / log(1/p)` retries; raise `max_retries` accordingly for
    /// large fabrics over very lossy channels.
    pub fn set_retry_policy(&mut self, retry: crate::schedule::RetryPolicy) {
        self.retry = retry;
    }

    /// The shared cluster.
    pub fn cluster(&self) -> &PhysicalCluster {
        &self.cluster
    }

    /// The live shared switches.
    pub fn switches(&self) -> &[OpenFlowSwitch] {
        &self.switches
    }

    /// Mutable access to the live switches (the audit needs to forward
    /// probe packets, which bumps port counters). Drops the cached static
    /// proof: a caller may rewrite tables behind the manager's back, and a
    /// stale proof would let the next delta check miss that damage. The
    /// walk cache is invalidated too — its entries would merely miss on
    /// fingerprints, but the generation bump also cancels any in-flight
    /// lease, so a verify pass racing this edit can never restore results
    /// computed from the pre-edit tables.
    pub fn switches_mut(&mut self) -> &mut [OpenFlowSwitch] {
        self.verifier = None;
        self.cache.invalidate();
        &mut self.switches
    }

    /// Admitted slices, in id order.
    pub fn slices(&self) -> impl Iterator<Item = &Slice> {
        self.slices.values()
    }

    /// One slice by id.
    pub fn slice(&self, id: SliceId) -> Option<&Slice> {
        self.slices.get(&id.0)
    }

    /// Number of admitted slices.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// The flow-mod timing model used for epoch reports.
    pub fn timing(&self) -> &InstallTiming {
        &self.timing
    }

    /// Everything co-tenants hold, expressed as "failed" resources so a
    /// projection for one slice cannot take them and shortage errors report
    /// true free counts. `skip` excludes one slice (its own resources are
    /// available to a reconfiguration of itself).
    fn occupancy_excluding(&self, skip: Option<SliceId>) -> FailedResources {
        let mut occ = FailedResources::new();
        for s in self.slices.values() {
            if Some(s.id) == skip {
                continue;
            }
            for cable in s.projection.link_real.values() {
                occ.fail_cable(cable);
            }
            for &p in s.projection.host_port.values() {
                occ.fail_port(p);
            }
        }
        occ
    }

    /// Union of every co-tenant's owned match-space.
    fn owned_by_others(&self, skip: SliceId) -> OwnedSpace {
        let mut all = OwnedSpace::default();
        for s in self.slices.values() {
            if s.id != skip {
                all.merge(&s.owned_space());
            }
        }
        all
    }

    /// Make-before-break headroom: can every switch absorb this epoch's
    /// *adds* on top of its current occupancy?
    fn headroom_check(&self, adds_per_switch: &[usize]) -> Result<(), AdmissionError> {
        for (sw, &need) in adds_per_switch.iter().enumerate() {
            let free = self.switches[sw].config().table_capacity
                - self.switches[sw].total_entries();
            if need > free {
                return Err(AdmissionError::TableHeadroom { switch: sw as u32, need, free });
            }
        }
        Ok(())
    }

    /// Apply a verified epoch in make-before-break order (see
    /// [`crate::epoch`]): adds table 1 → table 0, then deletes table 0 →
    /// table 1. Headroom was pre-checked, so installs cannot fail.
    ///
    /// One subtlety: a route change that keeps an entry's match and
    /// priority but changes its action diffs to a delete + an add with the
    /// same key — and `FlowMod::Delete` removes by (match, priority), so
    /// adding first would only get the replacement wiped by its own
    /// delete. Those pairs are applied as an in-place replacement
    /// (OpenFlow's MODIFY): the add is held back and installed right after
    /// its delete.
    fn apply_epoch(&mut self, epoch: &Epoch) -> EpochReport {
        for (sw, table, m) in epoch.ordered_mods() {
            if let Err(e) = self.switches[sw as usize].apply(table, m) {
                unreachable!("headroom pre-checked before applying the epoch: {e}");
            }
        }
        epoch.report(self.switches.len(), &self.timing)
    }

    /// The connectivity intent of a hypothetical slice set: every current
    /// slice except `skip`, plus `extra` — the shape admission, make-before-
    /// break reconfiguration and teardown each verify against.
    fn intent_with(&self, skip: Option<SliceId>, extra: Option<&Slice>) -> Intent {
        fn push(intent: &mut Intent, s: &Slice) {
            intent.push_domain(
                &format!("{}:{}", s.id, s.name),
                &s.topology,
                &s.projection,
                |h| s.host_addr(h),
            );
        }
        let mut intent = Intent::new();
        for s in self.slices.values() {
            if Some(s.id) != skip {
                push(&mut intent, s);
            }
        }
        if let Some(s) = extra {
            push(&mut intent, s);
        }
        intent
    }

    /// The intent the live tables are currently expected to implement.
    pub fn intent(&self) -> Intent {
        self.intent_with(None, None)
    }

    /// A proof of the *current* live tables, building it on first use and
    /// caching it for delta checks.
    fn current_verifier(&mut self) -> Verifier {
        match self.verifier.take() {
            Some(v) => v,
            None => {
                let mut cache = self.cache.lease();
                Verifier::check_cached(
                    &self.cluster,
                    TableView::of_switches(&self.switches),
                    self.intent(),
                    sdt_verify::verify_threads(),
                    &mut cache,
                )
            }
        }
    }

    /// Statically verify a full pass over the live tables against the
    /// current intent, and cache the proof. Zero packet injections.
    pub fn verify_report(&mut self) -> sdt_verify::VerifyReport {
        let v = self.current_verifier();
        let report = v.report().clone();
        self.verifier = Some(v);
        report
    }

    /// Run a full memoized proof over the live tables — even when a cached
    /// proof exists — and return it with the fast-path statistics (collapsed
    /// walks, memo hits/misses) and the walk-cache size: the numbers behind
    /// `sdtctl verify --stats`.
    pub fn verify_report_with_stats(
        &mut self,
    ) -> (sdt_verify::VerifyReport, VerifyStats, usize) {
        let v = {
            let mut cache = self.cache.lease();
            Verifier::check_cached(
                &self.cluster,
                TableView::of_switches(&self.switches),
                self.intent(),
                sdt_verify::verify_threads(),
                &mut cache,
            )
            // Lease drops here, restoring the warmed cache before the
            // entry count below reads it.
        };
        let report = v.report().clone();
        let stats = v.stats().clone();
        self.verifier = Some(v);
        (report, stats, self.walk_cache_entries())
    }

    /// Number of memoized walk-cache entries retained by this manager.
    pub fn walk_cache_entries(&self) -> usize {
        self.cache.with(WalkCache::entries)
    }

    /// Statically verify a pending epoch against the live tables plus its
    /// delta, without applying anything: would the tables *after* this
    /// epoch still be loop-free, blackhole-free and isolated? Live tables
    /// are untouched either way.
    pub fn precheck_epoch(&mut self, epoch: &Epoch) -> Result<(), AdmissionError> {
        let current = self.current_verifier();
        let mut cache = self.cache.lease();
        let pending = Verifier::check_delta_cached(
            &current,
            &epoch.ordered_mods(),
            self.intent(),
            sdt_verify::verify_threads(),
            &mut cache,
        );
        drop(cache);
        self.verifier = Some(current);
        if pending.holds() {
            Ok(())
        } else {
            Err(AdmissionError::StaticViolation(pending.report().summary()))
        }
    }

    /// The pre-install gate used by every lifecycle operation: prove the
    /// epoch against the current tables + delta and the post-operation
    /// intent. On success returns the new proof (installed into the cache
    /// by the caller *after* `apply_epoch`); on failure restores the cached
    /// current proof and nothing is applied.
    fn static_gate(
        &mut self,
        epoch: &Epoch,
        intent: Intent,
    ) -> Result<Option<Verifier>, AdmissionError> {
        if !self.static_verify {
            return Ok(None);
        }
        let current = self.current_verifier();
        let mut cache = self.cache.lease();
        let pending = Verifier::check_delta_cached(
            &current,
            &epoch.ordered_mods(),
            intent,
            sdt_verify::verify_threads(),
            &mut cache,
        );
        drop(cache);
        if pending.holds() {
            Ok(Some(pending))
        } else {
            let summary = pending.report().summary();
            self.verifier = Some(current);
            Err(AdmissionError::StaticViolation(summary))
        }
    }

    /// Admit a slice with its topology's default (Table III) routing.
    pub fn create(&mut self, name: &str, topo: &Topology) -> Result<SliceId, AdmissionError> {
        let strategy = default_strategy(topo);
        let routes = RouteTable::build_for_hosts(topo, strategy.as_ref());
        self.create_with_routes(name, topo, routes)
    }

    /// Admit a slice with explicit routes. Either the whole pipeline is
    /// installed, or nothing is and the error names the scarce resource.
    pub fn create_with_routes(
        &mut self,
        name: &str,
        topo: &Topology,
        routes: RouteTable,
    ) -> Result<SliceId, AdmissionError> {
        let occ = self.occupancy_excluding(None);
        let opts = ProjectOptions { failed: Some(&occ), ..Default::default() };
        let projection = self
            .projector
            .project_with(topo, &self.cluster, &routes, &opts)
            .map_err(AdmissionError::Resources)?;

        let id = SliceId(self.next_id);
        let (metadata_base, metadata_reserved) = (self.next_metadata, topo.num_switches());
        let (addr_base, addr_reserved) = (self.next_addr, topo.num_hosts());
        let installed = remap_synthesis(&projection.synthesis, metadata_base, addr_base);

        let empty = empty_synthesis(self.cluster.num_switches() as usize);
        let epoch = Epoch::from_diff(id, &empty, &installed);
        self.headroom_check(&epoch.adds_per_switch(self.switches.len()))?;

        let slice = Slice {
            id,
            name: name.to_string(),
            topology: topo.clone(),
            routes,
            projection,
            metadata_base,
            metadata_reserved,
            addr_base,
            addr_reserved,
            installed,
            epochs: 1,
        };
        epoch
            .verify(&slice.owned_space(), &self.owned_by_others(id))
            .map_err(|v| AdmissionError::EpochViolation(v.to_string()))?;
        let proof = self.static_gate(&epoch, self.intent_with(None, Some(&slice)))?;

        self.apply_epoch(&epoch);
        self.verifier = proof;
        self.next_id += 1;
        self.next_metadata += metadata_reserved;
        self.next_addr += addr_reserved;
        self.slices.insert(id.0, slice);
        Ok(id)
    }

    /// Reconfigure a slice to a new topology with default routing.
    pub fn reconfigure(
        &mut self,
        id: SliceId,
        topo: &Topology,
    ) -> Result<EpochReport, AdmissionError> {
        let strategy = default_strategy(topo);
        let routes = RouteTable::build_for_hosts(topo, strategy.as_ref());
        self.reconfigure_with_routes(id, topo, routes)
    }

    /// Make-before-break reconfiguration: project the new topology around
    /// co-tenant resources (preferring the slice's current cables so the
    /// diff stays small), install the new pipeline *next to* the old one,
    /// then cut over port by port and garbage-collect. Co-tenants' rules
    /// are untouched — the epoch is verified against their namespace before
    /// any flow-mod is applied. On any error the switches are exactly as
    /// before.
    pub fn reconfigure_with_routes(
        &mut self,
        id: SliceId,
        topo: &Topology,
        routes: RouteTable,
    ) -> Result<EpochReport, AdmissionError> {
        let (epoch, new_slice, fits) = self.plan_reconfigure(id, topo, routes)?;
        let proof = self.static_gate(&epoch, self.intent_with(Some(id), Some(&new_slice)))?;

        let report = self.apply_epoch(&epoch);
        self.verifier = proof;
        if !fits {
            self.next_metadata += new_slice.metadata_reserved;
            self.next_addr += new_slice.addr_reserved;
        }
        self.slices.insert(id.0, new_slice);
        Ok(report)
    }

    /// The planning half of a reconfiguration, shared by the one-shot and
    /// the scheduled paths: project the new topology around co-tenants
    /// (preferring the slice's current cables), resolve the namespace,
    /// diff the pipelines into an epoch, and verify headroom and namespace
    /// ownership. Pure — nothing is installed, no manager state moves.
    fn plan_reconfigure(
        &self,
        id: SliceId,
        topo: &Topology,
        routes: RouteTable,
    ) -> Result<(Epoch, Slice, bool), AdmissionError> {
        let old = self.slices.get(&id.0).ok_or(AdmissionError::UnknownSlice(id))?;

        // Keep healthy cables where they are when logical pairs coincide:
        // same-family reconfigurations then diff to near-nothing.
        let mut prefer: HashMap<(SwitchId, SwitchId), PhysLink> = HashMap::new();
        for l in old.topology.fabric_links() {
            let (a, b) = l.switch_ends();
            prefer.insert((a.min(b), a.max(b)), old.projection.link_real[&l.id]);
        }
        let occ = self.occupancy_excluding(Some(id));
        let opts = ProjectOptions {
            failed: Some(&occ),
            prefer_cables: Some(&prefer),
            ..Default::default()
        };
        let projection = self
            .projector
            .project_with(topo, &self.cluster, &routes, &opts)
            .map_err(AdmissionError::Resources)?;

        // Namespace: reuse the reserved ranges when the new topology fits
        // (diff-friendly); otherwise allocate fresh ranges.
        let fits = topo.num_switches() <= old.metadata_reserved
            && topo.num_hosts() <= old.addr_reserved;
        let (metadata_base, metadata_reserved, addr_base, addr_reserved) = if fits {
            (old.metadata_base, old.metadata_reserved, old.addr_base, old.addr_reserved)
        } else {
            (
                self.next_metadata,
                topo.num_switches(),
                self.next_addr,
                topo.num_hosts(),
            )
        };
        let installed = remap_synthesis(&projection.synthesis, metadata_base, addr_base);

        let epoch = Epoch::from_diff(id, &old.installed, &installed);
        self.headroom_check(&epoch.adds_per_switch(self.switches.len()))?;

        // The epoch may touch the old and the new namespace of this slice.
        let mut own = old.owned_space();
        let new_slice = Slice {
            id,
            name: old.name.clone(),
            topology: topo.clone(),
            routes,
            projection,
            metadata_base,
            metadata_reserved,
            addr_base,
            addr_reserved,
            installed,
            epochs: old.epochs + 1,
        };
        own.merge(&new_slice.owned_space());
        epoch
            .verify(&own, &self.owned_by_others(id))
            .map_err(|v| AdmissionError::EpochViolation(v.to_string()))?;
        Ok((epoch, new_slice, fits))
    }

    /// Plan a *scheduled* reconfiguration with the topology's default
    /// routing: compile the epoch into dependency-ordered rounds without
    /// applying anything. See [`SliceManager::reconfigure_scheduled`].
    pub fn plan_scheduled(
        &self,
        id: SliceId,
        topo: &Topology,
    ) -> Result<MigrationPlan, AdmissionError> {
        let strategy = default_strategy(topo);
        let routes = RouteTable::build_for_hosts(topo, strategy.as_ref());
        self.plan_scheduled_with_routes(id, topo, routes)
    }

    /// Plan a scheduled reconfiguration with explicit routes. Pure: the
    /// live tables and the manager's bookkeeping are untouched; the plan
    /// can be inspected (rounds, intents) or handed to
    /// [`SliceManager::commit_scheduled`].
    pub fn plan_scheduled_with_routes(
        &self,
        id: SliceId,
        topo: &Topology,
        routes: RouteTable,
    ) -> Result<MigrationPlan, AdmissionError> {
        let (epoch, new_slice, fits) = self.plan_reconfigure(id, topo, routes)?;
        let before = TableView::of_switches(&self.switches);
        let rounds = crate::schedule::compile_rounds(&epoch, &before);
        let pre_intent = self.intent();
        let post_intent = self.intent_with(Some(id), Some(&new_slice));
        Ok(MigrationPlan { epoch, rounds, pre_intent, post_intent, new_slice, fits })
    }

    /// Transient-safe reconfiguration: like
    /// [`SliceManager::reconfigure`], but the epoch is partitioned into
    /// dependency-ordered rounds, every intermediate table state is
    /// statically proven before its round installs, and the rounds go out
    /// over `channel` — which may drop and reorder flow-mods — with
    /// per-round read-back reconciliation (see [`crate::schedule`]).
    ///
    /// The whole epoch's end state is gated first, exactly as the one-shot
    /// path does; the per-round proofs come on top. On
    /// [`AdmissionError::ScheduleFailed`] the live switches hold the last
    /// individually-proven boundary state and the manager's bookkeeping
    /// still describes the *old* slice; the cached live-state proof is
    /// dropped either way.
    pub fn reconfigure_scheduled(
        &mut self,
        id: SliceId,
        topo: &Topology,
        channel: &mut sdt_openflow::ControlChannel,
    ) -> Result<(EpochReport, crate::schedule::ScheduleReport), AdmissionError> {
        let plan = self.plan_scheduled(id, topo)?;
        self.commit_scheduled(plan, channel)
    }

    /// Scheduled reconfiguration with explicit routes.
    pub fn reconfigure_scheduled_with_routes(
        &mut self,
        id: SliceId,
        topo: &Topology,
        routes: RouteTable,
        channel: &mut sdt_openflow::ControlChannel,
    ) -> Result<(EpochReport, crate::schedule::ScheduleReport), AdmissionError> {
        let plan = self.plan_scheduled_with_routes(id, topo, routes)?;
        self.commit_scheduled(plan, channel)
    }

    /// Execute a [`MigrationPlan`]: gate the epoch's end state, then prove
    /// and install the rounds pipelined over `channel`. The scheduled path
    /// always proves its boundaries — the
    /// [`SliceManager::set_static_verify`] escape hatch only governs the
    /// one-shot path.
    pub fn commit_scheduled(
        &mut self,
        plan: MigrationPlan,
        channel: &mut sdt_openflow::ControlChannel,
    ) -> Result<(EpochReport, crate::schedule::ScheduleReport), AdmissionError> {
        let MigrationPlan { epoch, rounds, pre_intent, post_intent, new_slice, fits } = plan;
        let threads = sdt_verify::verify_threads();
        let retry = self.retry;

        // Whole-epoch gate first. Beyond matching the one-shot contract,
        // this is what guarantees the scheduler's merge-on-failure
        // fallback terminates: the fully-merged round *is* this epoch.
        let current = self.current_verifier();
        // One lease spans the whole-epoch gate and the per-round proofs:
        // the rounds re-walk overlapping table states, so they feed on
        // each other's harvest.
        let mut cache = self.cache.lease();
        let pending = Verifier::check_delta_cached(
            &current,
            &epoch.ordered_mods(),
            post_intent.clone(),
            threads,
            &mut cache,
        );
        if !pending.holds() {
            let summary = pending.report().summary();
            self.verifier = Some(current);
            return Err(AdmissionError::StaticViolation(summary));
        }

        match crate::schedule::install_scheduled(
            &self.cluster,
            &mut self.switches,
            channel,
            rounds,
            current,
            &pre_intent,
            &post_intent,
            &self.timing,
            threads,
            &mut cache,
            &retry,
        ) {
            Ok((proof, sreport)) => {
                // A proof of the intended end state only describes the
                // live tables if they actually converged there.
                self.verifier = if sreport.converged { Some(proof) } else { None };
                if !fits {
                    self.next_metadata += new_slice.metadata_reserved;
                    self.next_addr += new_slice.addr_reserved;
                }
                let report = epoch.report(self.switches.len(), &self.timing);
                self.slices.insert(new_slice.id.0, new_slice);
                Ok((report, sreport))
            }
            Err(e) => {
                self.verifier = None;
                Err(AdmissionError::ScheduleFailed(e.to_string()))
            }
        }
    }

    /// Tear a slice down: delete exactly its entries (table 0 first, so its
    /// ports stop classifying before the routing state goes) and return its
    /// resources. Co-tenants are untouched.
    pub fn destroy(&mut self, id: SliceId) -> Result<ReclaimedResources, AdmissionError> {
        let slice = self.slices.get(&id.0).ok_or(AdmissionError::UnknownSlice(id))?;
        let reclaimed = ReclaimedResources {
            host_ports: slice.projection.host_port.len(),
            cables: slice.projection.link_real.len(),
            flow_entries: slice.entries(),
        };
        let empty = empty_synthesis(self.cluster.num_switches() as usize);
        let epoch = Epoch::from_diff(id, &slice.installed, &empty);
        epoch
            .verify(&slice.owned_space(), &self.owned_by_others(id))
            .map_err(|v| AdmissionError::EpochViolation(v.to_string()))?;
        let proof = self.static_gate(&epoch, self.intent_with(Some(id), None))?;
        self.apply_epoch(&epoch);
        self.verifier = proof;
        self.slices.remove(&id.0);
        Ok(reclaimed)
    }

    /// Apply one queued lifecycle operation. Exactly the semantics of the
    /// underlying `create_with_routes` / `reconfigure_with_routes` /
    /// `destroy` call, shaped for queue processing.
    pub fn apply_one(&mut self, op: SliceOp) -> Result<OpOutcome, AdmissionError> {
        match op {
            SliceOp::Create { name, topo, routes } => self
                .create_with_routes(&name, &topo, routes)
                .map(OpOutcome::Created),
            SliceOp::Reconfigure { id, topo, routes } => self
                .reconfigure_with_routes(id, &topo, routes)
                .map(OpOutcome::Reconfigured),
            SliceOp::Destroy { id } => self.destroy(id).map(OpOutcome::Destroyed),
        }
    }

    /// Apply a batch of lifecycle operations with **one** static proof for
    /// the whole batch instead of one per operation, preserving exactly the
    /// accept/reject decisions and named errors sequential submission would
    /// produce.
    ///
    /// How: resource projection, headroom and namespace-ownership checks
    /// still run per operation, in order, against the evolving state — they
    /// are cheap and their rejections are position-dependent either way.
    /// The static proof, the expensive part, is deferred: epochs apply
    /// unproven, then a single memoized full pass
    /// ([`Verifier::check_cached`]) proves the batch's end state. That is
    /// sound because distinct slices occupy disjoint match-spaces (disjoint
    /// ingress ports in table 0, disjoint metadata in table 1 — enforced by
    /// [`Epoch::verify`] before anything installs), so one operation's
    /// violation cannot be masked or repaired by another slice's entries:
    /// it survives verbatim into the end state. Two operations on the
    /// *same* slice could mask each other, so a batch is split into
    /// segments at any repeated slice id and each segment proven
    /// separately.
    ///
    /// If the combined proof fails, the segment is rolled back exactly
    /// (switch banks are cloned up front — sequence numbers and
    /// fingerprints included) and re-run sequentially with per-operation
    /// proofs, which attributes the named [`AdmissionError`] to the
    /// culprit(s) and admits the innocent. The slow path costs more than
    /// plain sequential submission, but only fires when a batch actually
    /// contains a statically invalid operation.
    pub fn apply_batch(
        &mut self,
        ops: Vec<SliceOp>,
    ) -> Vec<Result<OpOutcome, AdmissionError>> {
        if !self.static_verify || ops.len() <= 1 {
            return ops.into_iter().map(|op| self.apply_one(op)).collect();
        }
        let mut results = Vec::with_capacity(ops.len());
        let mut segment: Vec<SliceOp> = Vec::new();
        let mut touched: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for op in ops {
            if let Some(id) = op.slice_id() {
                if !touched.insert(id) {
                    results.extend(self.apply_segment(std::mem::take(&mut segment)));
                    touched.clear();
                    touched.insert(id);
                }
            }
            segment.push(op);
        }
        results.extend(self.apply_segment(segment));
        results
    }

    /// One same-slice-free segment of [`SliceManager::apply_batch`].
    fn apply_segment(
        &mut self,
        ops: Vec<SliceOp>,
    ) -> Vec<Result<OpOutcome, AdmissionError>> {
        if ops.len() <= 1 {
            return ops.into_iter().map(|op| self.apply_one(op)).collect();
        }
        // Proof of the pre-batch live tables (cached from the previous
        // epoch in the steady state) — restored verbatim on rollback.
        let current = self.current_verifier();
        let saved_switches = self.switches.clone();
        let saved_slices = self.slices.clone();
        let saved_counters = (self.next_id, self.next_metadata, self.next_addr);

        // Fast path: everything but the proof, in order.
        self.static_verify = false;
        let fast: Vec<Result<OpOutcome, AdmissionError>> =
            ops.iter().cloned().map(|op| self.apply_one(op)).collect();
        self.static_verify = true;

        if fast.iter().all(|r| r.is_err()) {
            // Nothing installed; the pre-batch proof still describes the
            // live tables.
            self.verifier = Some(current);
            return fast;
        }
        let pending = {
            let mut cache = self.cache.lease();
            Verifier::check_cached(
                &self.cluster,
                TableView::of_switches(&self.switches),
                self.intent(),
                sdt_verify::verify_threads(),
                &mut cache,
            )
        };
        if pending.holds() {
            self.verifier = Some(pending);
            return fast;
        }

        // Slow path: exact rollback (clones preserve sequence numbers and
        // fingerprints, so the restored bank is bit-identical), then
        // sequential re-run with per-operation proofs to name the
        // culprit(s).
        self.switches = saved_switches;
        self.slices = saved_slices;
        (self.next_id, self.next_metadata, self.next_addr) = saved_counters;
        self.verifier = Some(current);
        ops.into_iter().map(|op| self.apply_one(op)).collect()
    }

    /// Dump the manager's mutable state for persistence: admitted slices,
    /// namespace counters, and the live per-switch tables in first-match
    /// order. The physical cluster itself is wiring, not state — the caller
    /// persists its build parameters and hands an identically wired cluster
    /// back to [`SliceManager::restore`].
    pub fn export(&self) -> ManagerExport {
        ManagerExport {
            slices: self.slices.values().cloned().collect(),
            next_id: self.next_id,
            next_metadata: self.next_metadata,
            next_addr: self.next_addr,
            tables: self
                .switches
                .iter()
                .map(|sw| {
                    (sw.table(0).entries().to_vec(), sw.table(1).entries().to_vec())
                })
                .collect(),
        }
    }

    /// Rebuild a manager from an [`ManagerExport`] over a freshly wired
    /// cluster. The live tables are re-installed entry by entry in dump
    /// order (reproducing equal-priority tie-breaks exactly), which
    /// re-derives fresh sequence numbers and table fingerprints; the walk
    /// cache starts cold and the first proof after a restore is a full
    /// memoized [`Verifier::check_cached`] pass. The restored manager's
    /// verifiable behavior — admission decisions, verify findings, audit
    /// results — is byte-identical to the exporter's.
    pub fn restore(
        cluster: PhysicalCluster,
        export: ManagerExport,
    ) -> Result<SliceManager, RestoreError> {
        let mut mgr = SliceManager::new(cluster);
        if export.tables.len() != mgr.switches.len() {
            return Err(RestoreError(format!(
                "dump has {} switch table(s), cluster has {} switch(es)",
                export.tables.len(),
                mgr.switches.len()
            )));
        }
        for (sw, (t0, t1)) in export.tables.iter().enumerate() {
            mgr.switches[sw]
                .restore_tables(t0, t1)
                .map_err(|e| RestoreError(format!("switch {sw}: {e}")))?;
        }
        let live: usize = mgr.switches.iter().map(|s| s.total_entries()).sum();
        let owned: usize = export.slices.iter().map(|s| s.entries()).sum();
        if live != owned {
            return Err(RestoreError(format!(
                "live tables hold {live} entries but the slices own {owned}"
            )));
        }
        mgr.slices = export.slices.into_iter().map(|s| (s.id.0, s)).collect();
        mgr.next_id = export.next_id;
        mgr.next_metadata = export.next_metadata;
        mgr.next_addr = export.next_addr;
        Ok(mgr)
    }

    /// Resource accounting snapshot: per-switch table occupancy, port and
    /// cable pools, and every slice's reservations.
    pub fn status(&self) -> ManagerStatus {
        let switches = self
            .switches
            .iter()
            .enumerate()
            .map(|(i, sw)| SwitchOccupancy {
                switch: i as u32,
                capacity: sw.config().table_capacity,
                used: sw.total_entries(),
                free: sw.config().table_capacity - sw.total_entries(),
            })
            .collect();
        let slices: Vec<SliceStatus> = self
            .slices
            .values()
            .map(|s| SliceStatus {
                id: s.id,
                name: s.name.clone(),
                topology: s.topology.name().to_string(),
                switches: s.topology.num_switches(),
                hosts: s.topology.num_hosts(),
                host_ports: s.projection.host_port.len(),
                cables: s.projection.link_real.len(),
                entries: s.entries(),
                metadata_range: (s.metadata_base, s.metadata_base + s.metadata_reserved),
                addr_range: (s.addr_base, s.addr_base + s.addr_reserved),
                epochs: s.epochs,
            })
            .collect();
        ManagerStatus {
            host_ports_total: self.cluster.host_ports().len(),
            host_ports_used: slices.iter().map(|s| s.host_ports).sum(),
            cables_total: self.cluster.links().len(),
            cables_used: slices.iter().map(|s| s.cables).sum(),
            switches,
            slices,
        }
    }
}

/// Rewrite a synthesized pipeline into a slice's namespace: table-1
/// metadata and host addresses get the slice's bases added (actions and
/// matches alike). Table-0 ingress-port matches stay as synthesized — the
/// ports themselves are slice-disjoint.
pub fn remap_synthesis(s: &SynthesisOutput, metadata_base: u32, addr_base: u32) -> SynthesisOutput {
    let shift_addr = |a: Option<HostAddr>| a.map(|HostAddr(x)| HostAddr(x + addr_base));
    let mut out = SynthesisOutput {
        table0: Vec::with_capacity(s.table0.len()),
        table1: Vec::with_capacity(s.table1.len()),
        entries_per_switch: s.entries_per_switch.clone(),
    };
    for t0 in &s.table0 {
        out.table0.push(
            t0.iter()
                .map(|&e| {
                    let action = match e.action {
                        Action::WriteMetadataGoto(md) => {
                            Action::WriteMetadataGoto(md + metadata_base)
                        }
                        other => other,
                    };
                    sdt_openflow::FlowEntry { action, ..e }
                })
                .collect(),
        );
    }
    for t1 in &s.table1 {
        out.table1.push(
            t1.iter()
                .map(|&e| {
                    let mut m = e.m;
                    m.metadata = m.metadata.map(|md| md + metadata_base);
                    m.src = shift_addr(m.src);
                    m.dst = shift_addr(m.dst);
                    sdt_openflow::FlowEntry { m, ..e }
                })
                .collect(),
        );
    }
    out
}

fn empty_synthesis(num_switches: usize) -> SynthesisOutput {
    SynthesisOutput {
        table0: vec![Vec::new(); num_switches],
        table1: vec![Vec::new(); num_switches],
        entries_per_switch: vec![0; num_switches],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdt_core::cluster::ClusterBuilder;
    use sdt_core::methods::SwitchModel;
    use sdt_topology::chain::{chain, ring};
    use sdt_topology::fattree::fat_tree;
    use sdt_topology::meshtorus::mesh;

    fn small_cluster() -> PhysicalCluster {
        ClusterBuilder::new(SwitchModel::openflow_128x100g(), 2)
            .hosts_per_switch(16)
            .inter_links_per_pair(12)
            .build()
    }

    #[test]
    fn two_slices_coexist_with_disjoint_resources() {
        let mut mgr = SliceManager::new(small_cluster());
        let a = mgr.create("a", &chain(4)).unwrap();
        let b = mgr.create("b", &ring(5)).unwrap();
        assert_eq!(mgr.num_slices(), 2);
        let (sa, sb) = (mgr.slice(a).unwrap(), mgr.slice(b).unwrap());
        // Disjoint host ports and cables.
        for p in sa.projection.host_port.values() {
            assert!(!sb.projection.host_port.values().any(|q| q == p));
        }
        for c in sa.projection.link_real.values() {
            assert!(!sb.projection.link_real.values().any(|d| (d.a, d.b) == (c.a, c.b)));
        }
        // Disjoint namespaces.
        assert!(sa.metadata_base + sa.metadata_reserved <= sb.metadata_base);
        assert!(sa.addr_base + sa.addr_reserved <= sb.addr_base);
        // Live occupancy equals the slices' bookkeeping.
        let status = mgr.status();
        let live: usize = status.switches.iter().map(|s| s.used).sum();
        assert_eq!(live, sa.entries() + sb.entries());
    }

    #[test]
    fn admission_rejects_with_true_free_counts() {
        // 16 host ports per switch; first slice takes 16 of 32.
        let mut mgr = SliceManager::new(small_cluster());
        mgr.create("big", &fat_tree(4)).unwrap();
        // A second fat-tree needs more inter-switch cables than the first
        // one left free; the error must report the *remaining* free count
        // (4 of 12 cables left after the first tenant took 8), not the raw
        // wiring.
        let err = mgr.create("bigger", &fat_tree(4)).unwrap_err();
        match err {
            AdmissionError::Resources(ProjectionError::NotEnoughInterLinks {
                need,
                have,
                ..
            }) => {
                assert!(have < need, "free count must reflect the co-tenant ({have} >= {need})");
                assert!(have < 12, "raw wiring is 12 per pair; {have} must be what is left");
            }
            other => panic!("unexpected admission error: {other:?}"),
        }
        // Honest rejection: nothing was installed.
        assert_eq!(mgr.num_slices(), 1);
    }

    #[test]
    fn table_headroom_rejection_is_structured_and_clean() {
        let mut model = SwitchModel::openflow_128x100g();
        model.table_capacity = 150; // enough for one small slice only
        let cluster = ClusterBuilder::new(model, 1).hosts_per_switch(24).build();
        let mut mgr = SliceManager::new(cluster);
        mgr.create("first", &chain(8)).unwrap();
        let before: Vec<usize> =
            mgr.switches().iter().map(|s| s.total_entries()).collect();
        let err = mgr.create("second", &chain(8)).unwrap_err();
        match err {
            AdmissionError::TableHeadroom { switch, need, free } => {
                assert_eq!(switch, 0);
                assert!(need > free, "{need} vs {free}");
            }
            other => panic!("unexpected admission error: {other:?}"),
        }
        let after: Vec<usize> = mgr.switches().iter().map(|s| s.total_entries()).collect();
        assert_eq!(before, after, "rejection must not leave a partial install");
    }

    #[test]
    fn destroy_returns_exact_reservation() {
        let mut mgr = SliceManager::new(small_cluster());
        let a = mgr.create("a", &chain(4)).unwrap();
        let b = mgr.create("b", &mesh(&[2, 2])).unwrap();
        let sb = mgr.slice(b).unwrap();
        let expect = ReclaimedResources {
            host_ports: sb.projection.host_port.len(),
            cables: sb.projection.link_real.len(),
            flow_entries: sb.entries(),
        };
        let live_before: usize = mgr.switches().iter().map(|s| s.total_entries()).sum();
        let got = mgr.destroy(b).unwrap();
        assert_eq!(got, expect);
        let live_after: usize = mgr.switches().iter().map(|s| s.total_entries()).sum();
        assert_eq!(live_before - live_after, expect.flow_entries);
        // Slice a is untouched and still fully installed.
        assert_eq!(live_after, mgr.slice(a).unwrap().entries());
        assert!(mgr.slice(b).is_none());
        assert!(matches!(
            mgr.destroy(b),
            Err(AdmissionError::UnknownSlice(_))
        ));
    }

    #[test]
    fn reconfigure_prefers_existing_cables() {
        let mut mgr = SliceManager::new(small_cluster());
        let a = mgr.create("a", &ring(6)).unwrap();
        let before = mgr.slice(a).unwrap().projection.link_real.clone();
        // Same topology: the epoch should be empty (pure reuse).
        let report = mgr.reconfigure(a, &ring(6)).unwrap();
        assert_eq!(report.flow_mods(), 0, "identical topology must diff to nothing");
        assert_eq!(mgr.slice(a).unwrap().projection.link_real, before);
        assert_eq!(mgr.slice(a).unwrap().epochs, 2);
    }

    #[test]
    fn reconfigure_to_larger_topology_allocates_fresh_namespace() {
        let mut mgr = SliceManager::new(small_cluster());
        let a = mgr.create("a", &chain(3)).unwrap();
        let (mb, ab) =
            (mgr.slice(a).unwrap().metadata_base, mgr.slice(a).unwrap().addr_base);
        mgr.reconfigure(a, &chain(8)).unwrap();
        let s = mgr.slice(a).unwrap();
        assert!(s.metadata_base > mb || s.addr_base > ab, "larger topology → fresh ranges");
        assert_eq!(s.metadata_reserved, 8);
        // The old namespace's entries are gone from the live switches.
        for sw in mgr.switches() {
            for e in sw.table(1).entries() {
                let md = e.m.metadata.unwrap();
                assert!(md >= s.metadata_base && md < s.metadata_base + s.metadata_reserved);
            }
        }
    }

    /// Drive the same op list through `apply_one` on one manager and
    /// `apply_batch` on another; the decisions, named errors, bookkeeping
    /// and live tables must be indistinguishable.
    fn assert_batch_matches_sequential(ops: Vec<SliceOp>) {
        let mut seq = SliceManager::new(small_cluster());
        let mut bat = SliceManager::new(small_cluster());
        let seq_results: Vec<_> =
            ops.iter().cloned().map(|op| seq.apply_one(op)).collect();
        let bat_results = bat.apply_batch(ops);
        assert_eq!(seq_results.len(), bat_results.len());
        for (i, (s, b)) in seq_results.iter().zip(&bat_results).enumerate() {
            match (s, b) {
                (Ok(OpOutcome::Created(x)), Ok(OpOutcome::Created(y))) => {
                    assert_eq!(x, y, "op {i}")
                }
                (Ok(OpOutcome::Reconfigured(x)), Ok(OpOutcome::Reconfigured(y))) => {
                    assert_eq!(x.flow_mods(), y.flow_mods(), "op {i}")
                }
                (Ok(OpOutcome::Destroyed(x)), Ok(OpOutcome::Destroyed(y))) => {
                    assert_eq!(x, y, "op {i}")
                }
                (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string(), "op {i}"),
                other => panic!("op {i}: sequential vs batched diverged: {other:?}"),
            }
        }
        assert_eq!(format!("{:?}", seq.status()), format!("{:?}", bat.status()));
        for (a, b) in seq.switches().iter().zip(bat.switches()) {
            assert_eq!(a.table(0).entries(), b.table(0).entries());
            assert_eq!(a.table(1).entries(), b.table(1).entries());
        }
        assert!(seq.verify_report().holds() == bat.verify_report().holds());
    }

    #[test]
    fn batch_admission_matches_sequential_accepts_and_rejects() {
        // Mix of accepts and position-dependent rejects: the second
        // fat-tree no longer fits next to the first, the unknown-slice
        // destroy fails by name, the last chain still fits.
        let op = |t: &Topology, n: &str| SliceOp::Create {
            name: n.to_string(),
            topo: t.clone(),
            routes: RouteTable::build_for_hosts(t, default_strategy(t).as_ref()),
        };
        assert_batch_matches_sequential(vec![
            op(&fat_tree(4), "a"),
            op(&fat_tree(4), "b"),
            SliceOp::Destroy { id: SliceId(99) },
            op(&chain(3), "c"),
        ]);
    }

    #[test]
    fn batch_splits_same_slice_segments() {
        // Two reconfigurations of the same slice in one batch: the segment
        // split keeps the combined-proof argument sound, and the end state
        // must equal sequential submission's.
        let mut setup = SliceManager::new(small_cluster());
        let a = setup.create("a", &ring(4)).unwrap();
        drop(setup);
        let re = |t: &Topology| SliceOp::Reconfigure {
            id: a,
            topo: t.clone(),
            routes: RouteTable::build_for_hosts(t, default_strategy(t).as_ref()),
        };
        let mk = |t: &Topology, n: &str| SliceOp::Create {
            name: n.to_string(),
            topo: t.clone(),
            routes: RouteTable::build_for_hosts(t, default_strategy(t).as_ref()),
        };
        assert_batch_matches_sequential(vec![
            mk(&ring(4), "a"),
            re(&chain(5)),
            re(&ring(6)),
            SliceOp::Destroy { id: a },
        ]);
    }

    #[test]
    fn batch_fallback_names_static_violations() {
        // Corrupt the live tables behind the manager's back, so every
        // subsequent proof fails: the batch's combined proof fails, the
        // rollback path re-runs per-op, and both ops come back with the
        // named StaticViolation — exactly like sequential submission.
        fn corrupted() -> SliceManager {
            let mut mgr = SliceManager::new(small_cluster());
            mgr.create("a", &chain(4)).unwrap();
            let e = *mgr.switches()[0].table(1).entries().first().unwrap();
            mgr.switches_mut()[0]
                .apply(1, sdt_openflow::FlowMod::Delete(e.m, e.priority))
                .unwrap();
            mgr
        }
        let op = |t: &Topology, n: &str| SliceOp::Create {
            name: n.to_string(),
            topo: t.clone(),
            routes: RouteTable::build_for_hosts(t, default_strategy(t).as_ref()),
        };
        let mut seq = corrupted();
        let mut bat = corrupted();
        let ops = vec![op(&chain(3), "b"), op(&ring(3), "c")];
        let seq_r: Vec<_> = ops.iter().cloned().map(|o| seq.apply_one(o)).collect();
        let bat_r = bat.apply_batch(ops);
        for (s, b) in seq_r.iter().zip(&bat_r) {
            let (Err(se), Err(be)) = (s, b) else {
                panic!("corrupted fabric must reject: {s:?} vs {b:?}")
            };
            assert!(matches!(se, AdmissionError::StaticViolation(_)), "{se}");
            assert_eq!(se.to_string(), be.to_string());
        }
        // Rollback was exact: nothing new installed on either manager.
        assert_eq!(seq.num_slices(), 1);
        assert_eq!(bat.num_slices(), 1);
        for (a, b) in seq.switches().iter().zip(bat.switches()) {
            assert_eq!(a.table(1).entries(), b.table(1).entries());
        }
    }

    #[test]
    fn export_restore_round_trips_state_and_decisions() {
        let mut mgr = SliceManager::new(small_cluster());
        let a = mgr.create("a", &chain(4)).unwrap();
        let b = mgr.create("b", &ring(5)).unwrap();
        mgr.reconfigure(b, &ring(6)).unwrap();
        mgr.destroy(a).unwrap();
        let report_before = mgr.verify_report();

        let export = mgr.export();
        let mut back = SliceManager::restore(small_cluster(), export).unwrap();

        // Bookkeeping, live tables and verifier findings are identical.
        assert_eq!(format!("{:?}", mgr.status()), format!("{:?}", back.status()));
        for (x, y) in mgr.switches().iter().zip(back.switches()) {
            assert_eq!(x.table(0).entries(), y.table(0).entries());
            assert_eq!(x.table(1).entries(), y.table(1).entries());
        }
        let report_after = back.verify_report();
        assert_eq!(format!("{report_before:?}"), format!("{report_after:?}"));

        // Ids are never reused: the restored manager continues the id
        // sequence instead of resurrecting slice a's.
        let c1 = mgr.create("c", &chain(3)).unwrap();
        let c2 = back.create("c", &chain(3)).unwrap();
        assert_eq!(c1, c2);
        assert!(c1.0 > b.0);
    }

    #[test]
    fn restore_rejects_mismatched_cluster_or_orphans() {
        let mut mgr = SliceManager::new(small_cluster());
        mgr.create("a", &chain(4)).unwrap();
        let export = mgr.export();

        // Wrong switch count.
        let one = ClusterBuilder::new(SwitchModel::openflow_128x100g(), 1)
            .hosts_per_switch(16)
            .build();
        assert!(SliceManager::restore(one, export.clone()).is_err());

        // Orphan entries: a dump whose tables hold more than the slices own.
        let mut orphaned = export.clone();
        orphaned.slices.clear();
        let err = match SliceManager::restore(small_cluster(), orphaned) {
            Err(e) => e,
            Ok(_) => panic!("orphaned dump must be rejected"),
        };
        assert!(err.to_string().contains("entries"), "{err}");
    }

    #[test]
    fn remap_offsets_metadata_and_addresses() {
        let t = chain(3);
        let cluster = ClusterBuilder::new(SwitchModel::openflow_128x100g(), 1)
            .hosts_per_switch(4)
            .build();
        let p = SdtProjector::default().project_default(&t, &cluster).unwrap();
        let r = remap_synthesis(&p.synthesis, 100, 1000);
        for (orig, shifted) in p.synthesis.table0[0].iter().zip(&r.table0[0]) {
            match (orig.action, shifted.action) {
                (Action::WriteMetadataGoto(a), Action::WriteMetadataGoto(b)) => {
                    assert_eq!(b, a + 100)
                }
                other => panic!("unexpected actions {other:?}"),
            }
            assert_eq!(orig.m, shifted.m);
        }
        for (orig, shifted) in p.synthesis.table1[0].iter().zip(&r.table1[0]) {
            assert_eq!(shifted.m.metadata, orig.m.metadata.map(|m| m + 100));
            assert_eq!(shifted.m.dst, orig.m.dst.map(|HostAddr(d)| HostAddr(d + 1000)));
        }
        assert_eq!(r.entries_per_switch, p.synthesis.entries_per_switch);
    }
}
