//! Cross-slice isolation audit: prove that co-tenant slices cannot see
//! each other.
//!
//! The single-tenant audit ([`sdt_core::walk::IsolationReport`]) checks one
//! projection against its own topology. Multi-tenancy adds two failure
//! classes it cannot express: a structural overlap (two slices matching the
//! same (switch, ingress-port) or metadata space) and a behavioral leak (a
//! packet injected inside slice A addressed to a host of slice B actually
//! arriving somewhere). [`SliceAudit::run`] checks all of it against the
//! *live* shared tables — not a re-synthesized ideal — so any flow-mod the
//! manager got wrong shows up here:
//!
//! 1. **structural**: pairwise-disjoint (switch, in-port) sets from the
//!    installed table-0 entries; pairwise-disjoint metadata ranges;
//! 2. **intra-slice**: every ordered host pair of every slice walks the
//!    shared dataplane and must behave exactly as in a single-tenant
//!    deployment (delivered within a connected component, dropped across);
//! 3. **cross-slice**: every (host of A, host of B) probe must be dropped —
//!    a delivery anywhere is a leak;
//! 4. **diagnostics**: dead (shadowed) rules are attributed to the slice
//!    that owns them, and entries owned by nobody are counted as orphans.
//!    These are capacity-hygiene warnings, not isolation failures.

use crate::manager::{SliceId, SliceManager};
use sdt_core::cluster::{PhysPort, PhysicalCluster};
use sdt_openflow::{shadowed_entries, HostAddr, OpenFlowSwitch, PacketMeta, PortNo};
use sdt_topology::HostId;
use std::collections::HashMap;
use std::fmt;

/// One slice's behavioral audit results.
#[derive(Clone, Debug)]
pub struct SliceAuditEntry {
    /// Slice id.
    pub id: SliceId,
    /// Slice name.
    pub name: String,
    /// Intra-slice ordered pairs delivered correctly.
    pub delivered: usize,
    /// Intra-slice cross-component pairs correctly dropped.
    pub isolated: usize,
    /// Intra-slice violations (wrong destination, unexpected drop, loop).
    pub violations: Vec<(HostId, HostId, String)>,
    /// Dead rules this slice owns on the live switches: installed entries
    /// that can never match because a higher-priority entry covers them.
    /// They waste table capacity silently (§VII-C) — surfaced here so the
    /// tenant, not the operator, gets the bill.
    pub shadowed: usize,
}

/// Where a cross-slice probe ended up when it should have been dropped.
#[derive(Clone, Debug)]
pub struct CrossLeak {
    /// Slice the probe was injected in.
    pub from_slice: SliceId,
    /// Source host (local to `from_slice`).
    pub src: HostId,
    /// Slice the probe was addressed to.
    pub to_slice: SliceId,
    /// Destination host (local to `to_slice`).
    pub dst: HostId,
    /// What happened instead of a drop.
    pub outcome: String,
}

impl fmt::Display for CrossLeak {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} host {} -> {} host {}: {}",
            self.from_slice, self.src.0, self.to_slice, self.dst.0, self.outcome
        )
    }
}

/// The full multi-tenant audit report.
#[derive(Clone, Debug, Default)]
pub struct SliceAudit {
    /// Per-slice behavioral results, in id order.
    pub per_slice: Vec<SliceAuditEntry>,
    /// (switch, port) classified by more than one slice's table-0 — must be
    /// empty.
    pub port_overlaps: Vec<(u32, PortNo)>,
    /// Slice pairs with intersecting metadata ranges — must be empty.
    pub metadata_overlaps: Vec<(SliceId, SliceId)>,
    /// Cross-slice probes that were not dropped — must be empty.
    pub cross_leaks: Vec<CrossLeak>,
    /// Cross-slice probes correctly dropped.
    pub cross_isolated: usize,
    /// Live entries owned by no admitted slice (stale state the manager
    /// failed to garbage-collect) — must be zero.
    pub orphan_entries: usize,
}

impl SliceAudit {
    /// True when every isolation property holds. Shadowed rules are
    /// diagnostics, not violations — a clean audit may still report them.
    pub fn clean(&self) -> bool {
        self.port_overlaps.is_empty()
            && self.metadata_overlaps.is_empty()
            && self.cross_leaks.is_empty()
            && self.orphan_entries == 0
            && self.per_slice.iter().all(|s| s.violations.is_empty())
    }

    /// Run the audit over the manager's live switches. Probe packets bump
    /// port counters (they walk the real dataplane), hence `&mut`. Worker
    /// count comes from [`sdt_verify::verify_threads`] (`SDT_VERIFY_THREADS`).
    pub fn run(mgr: &mut SliceManager) -> SliceAudit {
        Self::run_threads(mgr, sdt_verify::verify_threads())
    }

    /// [`SliceAudit::run`] with an explicit worker count. The probe matrices
    /// fan out one job per (slice, source host) over the *shared* switch
    /// bank — [`OpenFlowSwitch::pipeline_egress`] takes `&self` and its
    /// table counters are atomic, so no bank clones are needed — then merge
    /// outcomes and replay port-stat effects in canonical (slice, src,
    /// target-slice, dst) order. Any thread count produces an identical
    /// audit and identical final counters: the walks only read the tables,
    /// and counter increments commute.
    pub fn run_threads(mgr: &mut SliceManager, threads: usize) -> SliceAudit {
        // Snapshot the slices; the walks below need the switches mutably.
        let slices: Vec<crate::manager::Slice> = mgr.slices().cloned().collect();
        let cluster = mgr.cluster().clone();
        let mut audit = SliceAudit::default();

        // ---- 1. structural disjointness -------------------------------
        let mut port_owner: HashMap<(u32, PortNo), SliceId> = HashMap::new();
        for s in &slices {
            for (sw, t0) in s.installed.table0.iter().enumerate() {
                for e in t0 {
                    let Some(p) = e.m.in_port else { continue };
                    if let Some(prev) = port_owner.insert((sw as u32, p), s.id) {
                        if prev != s.id {
                            audit.port_overlaps.push((sw as u32, p));
                        }
                    }
                }
            }
        }
        for (i, a) in slices.iter().enumerate() {
            for b in &slices[i + 1..] {
                let (a0, a1) = (a.metadata_base, a.metadata_base + a.metadata_reserved);
                let (b0, b1) = (b.metadata_base, b.metadata_base + b.metadata_reserved);
                if a0 < b1 && b0 < a1 {
                    audit.metadata_overlaps.push((a.id, b.id));
                }
            }
        }

        // ---- 4a. ownership / orphans / shadowing ----------------------
        // Attribute every live entry: table 0 by ingress port, table 1 by
        // metadata range. Anything unattributable is an orphan.
        let in_range =
            |md: u32, s: &crate::manager::Slice| -> bool {
                md >= s.metadata_base && md < s.metadata_base + s.metadata_reserved
            };
        let mut shadowed_of: HashMap<SliceId, usize> = HashMap::new();
        for sw in mgr.switches() {
            for table in [0u8, 1u8] {
                for e in sw.table(table).entries() {
                    let owner = if table == 0 {
                        e.m.in_port.and_then(|p| port_owner.get(&(sw.id(), p)).copied())
                    } else {
                        e.m.metadata
                            .and_then(|md| slices.iter().find(|s| in_range(md, s)).map(|s| s.id))
                    };
                    if owner.is_none() {
                        audit.orphan_entries += 1;
                    }
                }
                for e in shadowed_entries(sw.table(table).entries()) {
                    let owner = if table == 0 {
                        e.m.in_port.and_then(|p| port_owner.get(&(sw.id(), p)).copied())
                    } else {
                        e.m.metadata
                            .and_then(|md| slices.iter().find(|s| in_range(md, s)).map(|s| s.id))
                    };
                    if let Some(id) = owner {
                        *shadowed_of.entry(id).or_insert(0) += 1;
                    }
                }
            }
        }

        // ---- 2 & 3. behavioral walks ----------------------------------
        // Host-port ownership across all slices, for classifying where a
        // probe actually landed.
        let mut host_owner: HashMap<PhysPort, (SliceId, HostId)> = HashMap::new();
        for s in &slices {
            for (&(h, _), &pp) in &s.projection.host_port {
                host_owner.insert(pp, (s.id, h));
            }
        }

        // One job per (slice, source host): every probe that host originates
        // — the intra-slice row plus its row of every cross-slice matrix —
        // walked against the shared read-only bank. Hop effects are recorded
        // and replayed below so the port counters end up exactly as if the
        // probes had run sequentially.
        let jobs: Vec<(usize, u32)> = slices
            .iter()
            .enumerate()
            .flat_map(|(si, s)| (0..s.topology.num_hosts()).map(move |a| (si, a)))
            .collect();
        let mut offsets = Vec::with_capacity(slices.len());
        {
            let mut acc = 0;
            for s in &slices {
                offsets.push(acc);
                acc += s.topology.num_hosts() as usize;
            }
        }
        let bank: &[OpenFlowSwitch] = mgr.switches();
        let (cluster_ref, owner_ref, slices_ref) = (&cluster, &host_owner, &slices);
        let probes: Vec<SrcProbes> = sdt_par::par_map_threads(threads, &jobs, |&(si, a)| {
            let s = &slices_ref[si];
            let src = HostId(a);
            let start = s.projection.primary_host_port(&s.topology, src);
            let mut hops = Vec::new();
            let mut intra = Vec::new();
            for b in 0..s.topology.num_hosts() {
                if a == b {
                    continue;
                }
                let dst = HostId(b);
                let w = walk(
                    cluster_ref,
                    bank,
                    owner_ref,
                    start,
                    s.host_addr(src),
                    s.host_addr(dst),
                    &mut hops,
                );
                intra.push((src, dst, w));
            }
            let mut cross = vec![Vec::new(); slices_ref.len()];
            for (ti, t) in slices_ref.iter().enumerate() {
                if t.id == s.id {
                    continue;
                }
                for b in 0..t.topology.num_hosts() {
                    let dst = HostId(b);
                    let w = walk(
                        cluster_ref,
                        bank,
                        owner_ref,
                        start,
                        s.host_addr(src),
                        t.host_addr(dst),
                        &mut hops,
                    );
                    cross[ti].push((src, dst, w));
                }
            }
            SrcProbes { intra, cross, hops }
        });

        // Merge in the canonical order the sequential audit used: per slice,
        // intra pairs src-major, then cross matrices target-slice-major.
        for (si, s) in slices.iter().enumerate() {
            let mut entry = SliceAuditEntry {
                id: s.id,
                name: s.name.clone(),
                delivered: 0,
                isolated: 0,
                violations: Vec::new(),
                shadowed: shadowed_of.get(&s.id).copied().unwrap_or(0),
            };
            let comp = s.topology.component_of();
            for a in 0..s.topology.num_hosts() {
                for &(src, dst, outcome) in &probes[offsets[si] + a as usize].intra {
                    let same = comp[s.topology.host_switch(src).idx()]
                        == comp[s.topology.host_switch(dst).idx()];
                    match outcome {
                        Walk::Delivered(owner) if same && owner == (s.id, dst) => {
                            entry.delivered += 1
                        }
                        Walk::Delivered((sid, h)) => entry.violations.push((
                            src,
                            dst,
                            format!("delivered to {sid} host {} (same-component = {same})", h.0),
                        )),
                        Walk::Dropped(_) if !same => entry.isolated += 1,
                        Walk::Dropped(at) => entry
                            .violations
                            .push((src, dst, format!("dropped at switch {at}"))),
                        Walk::Looped => {
                            entry.violations.push((src, dst, "forwarding loop".into()))
                        }
                    }
                }
            }
            for (ti, t) in slices.iter().enumerate() {
                if t.id == s.id {
                    continue;
                }
                for a in 0..s.topology.num_hosts() {
                    for &(src, dst, outcome) in &probes[offsets[si] + a as usize].cross[ti] {
                        match outcome {
                            Walk::Dropped(_) => audit.cross_isolated += 1,
                            Walk::Delivered((sid, h)) => audit.cross_leaks.push(CrossLeak {
                                from_slice: s.id,
                                src,
                                to_slice: t.id,
                                dst,
                                outcome: format!("delivered to {sid} host {}", h.0),
                            }),
                            Walk::Looped => audit.cross_leaks.push(CrossLeak {
                                from_slice: s.id,
                                src,
                                to_slice: t.id,
                                dst,
                                outcome: "forwarding loop".into(),
                            }),
                        }
                    }
                }
            }
            audit.per_slice.push(entry);
        }

        // Replay the probes' port-counter effects. Increments commute, so
        // job order is immaterial; canonical order keeps it reproducible.
        let switches = mgr.switches_mut();
        for p in &probes {
            for &(sw, in_port, out) in &p.hops {
                switches[sw as usize].record_traffic(in_port, out, 1500);
            }
        }
        audit
    }
}

/// Everything one (slice, source host) job produced: its intra-slice row,
/// one row per foreign slice's cross matrix, and the hop-by-hop port
/// effects to replay.
struct SrcProbes {
    intra: Vec<(HostId, HostId, Walk)>,
    cross: Vec<Vec<(HostId, HostId, Walk)>>,
    hops: Vec<(u32, PortNo, Option<PortNo>)>,
}

#[derive(Clone, Copy)]
enum Walk {
    Delivered((SliceId, HostId)),
    Dropped(u32),
    Looped,
}

/// Slice-aware packet walk: like [`sdt_core::walk::walk_packet`] but with
/// explicit fabric-wide addresses (the slice's namespaced ones) and a
/// cross-slice host-port owner map, so a mis-delivery names the tenant that
/// received the packet. Runs on a shared bank via
/// [`OpenFlowSwitch::pipeline_egress`]; every hop's port effect is appended
/// to `hops` for the caller to replay through
/// [`OpenFlowSwitch::record_traffic`].
fn walk(
    cluster: &PhysicalCluster,
    switches: &[OpenFlowSwitch],
    host_owner: &HashMap<PhysPort, (SliceId, HostId)>,
    start: PhysPort,
    src: HostAddr,
    dst: HostAddr,
    hops: &mut Vec<(u32, PortNo, Option<PortNo>)>,
) -> Walk {
    let mut at_switch = start.switch;
    let mut in_port = start.port;
    let budget = 4 * cluster.links().len() + 8;
    for _ in 0..budget {
        let meta = PacketMeta { in_port, src, dst, l4_src: 4791, l4_dst: 4791 };
        let decision = switches[at_switch as usize].pipeline_egress(&meta);
        hops.push((at_switch, in_port, decision));
        let out = match decision {
            Some(p) => p,
            None => return Walk::Dropped(at_switch),
        };
        let out_pp = PhysPort { switch: at_switch, port: out };
        if cluster.is_host_port(out_pp) {
            return match host_owner.get(&out_pp) {
                Some(&owner) => Walk::Delivered(owner),
                // Egress on an unassigned host port: the packet left the
                // fabric but reached nobody.
                None => Walk::Dropped(at_switch),
            };
        }
        match cluster.link_at(out_pp) {
            Some(cable) => {
                let far = cable.other(out_pp);
                at_switch = far.switch;
                in_port = far.port;
            }
            None => return Walk::Dropped(at_switch),
        }
    }
    Walk::Looped
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdt_core::cluster::ClusterBuilder;
    use sdt_core::methods::SwitchModel;
    use sdt_topology::chain::{chain, ring};
    use sdt_topology::meshtorus::mesh;

    fn manager() -> SliceManager {
        let cluster = ClusterBuilder::new(SwitchModel::openflow_128x100g(), 2)
            .hosts_per_switch(16)
            .inter_links_per_pair(12)
            .build();
        SliceManager::new(cluster)
    }

    #[test]
    fn three_slices_audit_clean() {
        let mut mgr = manager();
        mgr.create("a", &chain(4)).unwrap();
        mgr.create("b", &ring(5)).unwrap();
        mgr.create("c", &mesh(&[2, 2])).unwrap();
        let audit = SliceAudit::run(&mut mgr);
        assert!(audit.clean(), "audit not clean: {audit:?}");
        // Every slice's hosts talk among themselves...
        for s in &audit.per_slice {
            assert!(s.delivered > 0, "{}: nothing delivered", s.name);
            assert!(s.violations.is_empty());
        }
        // ...and every cross-slice probe died: 2 * (4*5 + 4*4 + 5*4).
        assert_eq!(audit.cross_isolated, 2 * (4 * 5 + 4 * 4 + 5 * 4));
        assert!(audit.cross_leaks.is_empty());
    }

    #[test]
    fn audit_reflects_destroy() {
        let mut mgr = manager();
        mgr.create("a", &chain(4)).unwrap();
        let b = mgr.create("b", &ring(5)).unwrap();
        mgr.destroy(b).unwrap();
        let audit = SliceAudit::run(&mut mgr);
        assert!(audit.clean(), "stale state after destroy: {audit:?}");
        assert_eq!(audit.per_slice.len(), 1);
        assert_eq!(audit.orphan_entries, 0);
    }

    #[test]
    fn audit_is_thread_count_invariant() {
        // Two identically-built managers, audited with 1 worker and with 8:
        // the reports must be byte-identical and the live switches must end
        // with identical table and port counters (probe effects replay in
        // canonical order; lookup counters commute).
        let build = || {
            let mut mgr = manager();
            mgr.create("a", &chain(4)).unwrap();
            mgr.create("b", &ring(5)).unwrap();
            mgr.create("c", &mesh(&[2, 2])).unwrap();
            mgr
        };
        let (mut seq, mut par) = (build(), build());
        let a1 = SliceAudit::run_threads(&mut seq, 1);
        let a8 = SliceAudit::run_threads(&mut par, 8);
        assert_eq!(format!("{a1:?}"), format!("{a8:?}"));
        for (s1, s8) in seq.switches().iter().zip(par.switches()) {
            assert_eq!(s1.table(0).stats(), s8.table(0).stats());
            assert_eq!(s1.table(1).stats(), s8.table(1).stats());
            assert_eq!(format!("{:?}", s1.all_port_stats()), format!("{:?}", s8.all_port_stats()));
        }
    }

    #[test]
    fn audit_survives_reconfiguration() {
        let mut mgr = manager();
        mgr.create("a", &chain(4)).unwrap();
        let b = mgr.create("b", &ring(5)).unwrap();
        mgr.create("c", &mesh(&[2, 2])).unwrap();
        mgr.reconfigure(b, &chain(5)).unwrap();
        let audit = SliceAudit::run(&mut mgr);
        assert!(audit.clean(), "audit not clean after reconfigure: {audit:?}");
    }
}
