//! Transient-state differential suite: every intermediate table state a
//! scheduled migration produces is proven clean by the *reference*
//! (unmemoized, uncollapsed) verifier — and the naive one-shot order is
//! shown to produce a transient violation the scheduler provably avoids.
//!
//! The scheduler's own proofs run through the memoized incremental walker
//! (`check_delta_cached`); trusting it to certify its own rounds would be
//! circular. Here each round boundary is re-derived independently: the
//! rounds are applied to a [`TableView`] snapshot one by one and each
//! resulting state is handed to `Verifier::check_plain_threads`, which
//! shares no caching or collapse machinery with the fast path.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use sdt_core::cluster::{ClusterBuilder, PhysicalCluster};
use sdt_core::methods::SwitchModel;
use sdt_openflow::FlowMod;
use sdt_tenancy::{MigrationPlan, RoundPhase, SliceManager};
use sdt_topology::chain::{chain, ring};
use sdt_topology::fattree::fat_tree;
use sdt_topology::meshtorus::{mesh, torus};
use sdt_topology::Topology;
use sdt_verify::{Intent, TableView, Verifier};

fn cluster2() -> PhysicalCluster {
    ClusterBuilder::new(SwitchModel::openflow_128x100g(), 2)
        .hosts_per_switch(16)
        .inter_links_per_pair(12)
        .build()
}

/// The boundary intent rule the scheduler uses: pre-cutover states still
/// implement the old intent (the new pipeline is dark until steered to);
/// from the first cutover-phase round on — and always at the end — the
/// post-migration intent rules.
fn boundary_intent(plan: &MigrationPlan, i: usize) -> &Intent {
    let last = plan.rounds().len() - 1;
    if i == last || plan.rounds()[i].phase >= RoundPhase::Cutover {
        plan.post_intent()
    } else {
        plan.pre_intent()
    }
}

/// Walk a plan's rounds over a table snapshot, handing every boundary
/// state to `check` for independent judgment.
fn enumerate_boundaries(
    mgr: &SliceManager,
    plan: &MigrationPlan,
    mut check: impl FnMut(usize, &TableView, &Intent),
) {
    let mut view = TableView::of_switches(mgr.switches());
    for (i, round) in plan.rounds().iter().enumerate() {
        for (sw, t, m) in &round.mods {
            view.apply(*sw, *t, m);
        }
        check(i, &view, boundary_intent(plan, i));
    }
}

/// Reference verdict on one boundary: no loop, blackhole or leak.
fn assert_boundary_clean(mgr: &SliceManager, plan: &MigrationPlan, label: &str) {
    enumerate_boundaries(mgr, plan, |i, view, intent| {
        let v = Verifier::check_plain_threads(mgr.cluster(), view.clone(), intent.clone(), 1);
        assert!(
            v.holds(),
            "{label}: round {i}/{} boundary violates: {}",
            plan.rounds().len(),
            v.report().summary()
        );
    });
}

#[test]
fn paper_preset_migrations_are_clean_at_every_boundary() {
    // The paper's reconfiguration demos: fat-tree <-> torus, chain -> ring,
    // each migrated while a co-tenant occupies the same fabric (so a
    // transient mis-steer would surface as a leak, not just a blackhole).
    let presets: &[(Topology, Topology)] = &[
        (fat_tree(4), torus(&[4, 4])),
        (chain(4), ring(4)),
        (ring(6), mesh(&[2, 3])),
    ];
    for (from, to) in presets {
        let mut mgr = SliceManager::new(cluster2());
        mgr.create("co-tenant", &chain(4)).unwrap();
        let id = mgr.create("migrant", from).unwrap();
        let plan = mgr.plan_scheduled(id, to).unwrap();
        assert!(plan.rounds().len() > 1, "{}->{}: expected multiple rounds", from.name(), to.name());
        assert_boundary_clean(&mgr, &plan, &format!("{}->{}", from.name(), to.name()));
    }
}

#[test]
fn seeded_random_slice_mixes_are_clean_at_every_boundary() {
    // Deterministic xorshift over a topology zoo: admit a random pair of
    // slices, migrate the second to another random topology, and prove
    // every scheduled boundary with the reference walker.
    let zoo: &[fn() -> Topology] = &[
        || chain(3),
        || chain(4),
        || ring(4),
        || ring(5),
        || mesh(&[2, 2]),
        || mesh(&[3, 2]),
    ];
    let mut state = 0x5eed_f00d_u64;
    let mut next = move |n: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % n as u64) as usize
    };
    for case in 0..6 {
        let a = zoo[next(zoo.len())]();
        let b = zoo[next(zoo.len())]();
        let to = zoo[next(zoo.len())]();
        let mut mgr = SliceManager::new(cluster2());
        mgr.create("a", &a).unwrap();
        let id = mgr.create("b", &b).unwrap();
        let plan = mgr.plan_scheduled(id, &to).unwrap();
        assert_boundary_clean(
            &mgr,
            &plan,
            &format!("case {case}: {}+{} -> {}", a.name(), b.name(), to.name()),
        );
    }
}

#[test]
fn memoized_round_proofs_match_the_reference_walker() {
    // Differential closure of the scheduler's actual proof chain: replay it
    // with `check_delta_plain_threads` (no memoization, no collapse) and
    // assert findings are byte-identical to the fast incremental chain at
    // every boundary.
    let mut mgr = SliceManager::new(cluster2());
    mgr.create("co-tenant", &chain(4)).unwrap();
    let id = mgr.create("migrant", &fat_tree(4)).unwrap();
    let plan = mgr.plan_scheduled(id, &torus(&[4, 4])).unwrap();

    let before = TableView::of_switches(mgr.switches());
    let mut cache = sdt_verify::WalkCache::new();
    let mut fast = Verifier::check_cached(
        mgr.cluster(),
        before.clone(),
        plan.pre_intent().clone(),
        sdt_verify::verify_threads(),
        &mut cache,
    );
    let mut plain = Verifier::check_plain_threads(
        mgr.cluster(),
        before,
        plan.pre_intent().clone(),
        1,
    );
    for (i, round) in plan.rounds().iter().enumerate() {
        let intent = boundary_intent(&plan, i);
        fast = Verifier::check_delta_cached(
            &fast,
            &round.mods,
            intent.clone(),
            sdt_verify::verify_threads(),
            &mut cache,
        );
        plain = Verifier::check_delta_plain_threads(&plain, &round.mods, intent.clone(), 1);
        let (f, p) = (fast.report(), plain.report());
        assert_eq!(format!("{:?}", f.loops), format!("{:?}", p.loops), "round {i} loops");
        assert_eq!(
            format!("{:?}", f.blackholes),
            format!("{:?}", p.blackholes),
            "round {i} blackholes"
        );
        assert_eq!(format!("{:?}", f.leaks), format!("{:?}", p.leaks), "round {i} leaks");
        assert!(p.holds(), "round {i}: reference found {}", p.summary());
    }
}

#[test]
fn naive_one_shot_order_produces_a_transient_violation() {
    // The crafted case the scheduler earns its keep on: install the same
    // epoch in the naive break-before-make order (deletes first, adds
    // after). Mid-batch — old pipeline torn down, new one not yet up — the
    // reference verifier must find a blackhole against the pre-migration
    // intent, because live traffic at that instant still follows it.
    let mut mgr = SliceManager::new(cluster2());
    let id = mgr.create("migrant", &chain(4)).unwrap();
    let plan = mgr.plan_scheduled(id, &ring(4)).unwrap();
    assert!(
        !plan.epoch().deletes.is_empty() && !plan.epoch().adds.is_empty(),
        "migration must both add and delete for the ordering to matter"
    );

    let mut view = TableView::of_switches(mgr.switches());
    for d in &plan.epoch().deletes {
        view.apply(d.switch, d.table, &FlowMod::Delete(d.m, d.priority));
    }
    let mid =
        Verifier::check_plain_threads(mgr.cluster(), view.clone(), plan.pre_intent().clone(), 1);
    assert!(
        !mid.report().blackholes.is_empty(),
        "deletes-first midpoint must blackhole live traffic: {}",
        mid.report().summary()
    );

    // Completing the naive batch lands on the same end state the scheduler
    // reaches — the violation is purely transient, which is exactly why
    // one-shot end-state gating cannot see it.
    for a in &plan.epoch().adds {
        view.apply(a.switch, a.table, &FlowMod::Add(a.entry));
    }
    let done =
        Verifier::check_plain_threads(mgr.cluster(), view, plan.post_intent().clone(), 1);
    assert!(done.holds(), "end state clean either way: {}", done.report().summary());
}
