//! Property tests over random slice mixes: whatever sequence of
//! admissions and teardowns the manager sees, the multi-tenant invariants
//! hold.
//!
//! (a) no two admitted slices ever share a (switch, ingress-port) match
//!     space;
//! (b) the per-switch sum of slice entries equals the live table occupancy
//!     and never exceeds the switch's capacity;
//! (c) destroying a slice returns exactly its reserved ports, cables and
//!     entries — and the live tables shrink by exactly that much;
//! (d) a rejected admission leaves the fabric byte-identical.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use proptest::prelude::*;
use sdt_core::cluster::ClusterBuilder;
use sdt_core::methods::SwitchModel;
use sdt_tenancy::{SliceAudit, SliceManager};
use sdt_topology::chain::{chain, ring};
use sdt_topology::fattree::fat_tree;
use sdt_topology::meshtorus::mesh;
use sdt_topology::Topology;
use std::collections::HashSet;

/// One requested slice: a small topology drawn from the generator zoo.
fn arb_slice_topo() -> impl Strategy<Value = Topology> {
    (0u8..5, 2u32..6).prop_map(|(kind, size)| match kind {
        0 => chain(size),
        1 => ring(size.max(3)),
        2 => mesh(&[2, 2]),
        3 => mesh(&[size.min(3), 2]),
        // Deliberately big for the little cluster below: often rejected,
        // which exercises the honest-rejection path.
        _ => fat_tree(4),
    })
}

/// A 2-switch cluster small enough that random mixes hit every scarce
/// resource: 8 host ports and 8 inter-switch cables per side, and a flow
/// table tight enough for headroom rejections.
fn small_cluster() -> sdt_core::cluster::PhysicalCluster {
    let mut model = SwitchModel::openflow_128x100g();
    model.table_capacity = 160;
    ClusterBuilder::new(model, 2).hosts_per_switch(8).inter_links_per_pair(8).build()
}

/// Per-switch occupancy contributed by each admitted slice must add up to
/// the live table occupancy and respect capacity; table-0 ingress ports
/// must be pairwise disjoint.
fn check_invariants(mgr: &SliceManager) {
    let mut per_switch = vec![0usize; mgr.cluster().num_switches() as usize];
    let mut seen_ports: HashSet<(u32, sdt_openflow::PortNo)> = HashSet::new();
    for s in mgr.slices() {
        for (sw, n) in s.installed.entries_per_switch.iter().enumerate() {
            per_switch[sw] += n;
        }
        for (sw, t0) in s.installed.table0.iter().enumerate() {
            for e in t0 {
                let p = e.m.in_port.expect("table-0 entries match an ingress port");
                assert!(
                    seen_ports.insert((sw as u32, p)),
                    "two slices share (switch {sw}, {p:?})"
                );
            }
        }
    }
    for (sw, live) in mgr.switches().iter().enumerate() {
        assert_eq!(
            per_switch[sw],
            live.total_entries(),
            "switch {sw}: slice bookkeeping disagrees with live tables"
        );
        assert!(per_switch[sw] <= live.config().table_capacity);
    }
}

/// Snapshot of everything a rejection must not disturb.
fn fabric_fingerprint(mgr: &SliceManager) -> (usize, Vec<Vec<sdt_openflow::FlowEntry>>) {
    let tables = mgr
        .switches()
        .iter()
        .flat_map(|sw| [sw.table(0).entries().to_vec(), sw.table(1).entries().to_vec()])
        .collect();
    (mgr.num_slices(), tables)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn slice_mix_invariants(
        topos in proptest::collection::vec(arb_slice_topo(), 1..7),
        destroy_mask in any::<u32>(),
    ) {
        let mut mgr = SliceManager::new(small_cluster());
        let mut admitted = Vec::new();
        for (i, t) in topos.iter().enumerate() {
            let before = fabric_fingerprint(&mgr);
            match mgr.create(&format!("s{i}"), t) {
                Ok(id) => admitted.push(id),
                Err(_) => {
                    // (d) honest rejection: nothing changed.
                    prop_assert_eq!(before, fabric_fingerprint(&mgr));
                }
            }
            check_invariants(&mgr);
        }

        // (c) destroy a random subset; each teardown returns exactly the
        // slice's reservation and shrinks the live tables by exactly it.
        for (i, id) in admitted.iter().enumerate() {
            if destroy_mask & (1 << (i % 32)) == 0 {
                continue;
            }
            let s = mgr.slice(*id).unwrap();
            let expect = (
                s.projection.host_port.len(),
                s.projection.link_real.len(),
                s.entries(),
            );
            let live_before: usize =
                mgr.switches().iter().map(|sw| sw.total_entries()).sum();
            let got = mgr.destroy(*id).unwrap();
            prop_assert_eq!(
                (got.host_ports, got.cables, got.flow_entries),
                expect,
                "reclaim must equal the reservation"
            );
            let live_after: usize =
                mgr.switches().iter().map(|sw| sw.total_entries()).sum();
            prop_assert_eq!(live_before - live_after, got.flow_entries);
            check_invariants(&mgr);
        }

        // Whatever survived still passes the full behavioral audit.
        let audit = SliceAudit::run(&mut mgr);
        prop_assert!(audit.clean(), "audit not clean: {:?}", audit);
    }
}
