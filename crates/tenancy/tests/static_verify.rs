//! Pre-install epoch checking: the manager must refuse to apply a pending
//! epoch whose *post-state* would violate a static property — even when
//! the epoch is perfectly well-scoped under the ownership rules — and a
//! refusal must leave the live tables byte-identical.
//!
//! This is the VeriFlow-style gap [`Epoch::verify`] cannot close: ownership
//! checking looks at *match* fields only, so an epoch can stay entirely
//! inside its own (port, metadata) namespace and still blackhole its own
//! routes or output another tenant's traffic. Only the static data-plane
//! verifier sees that.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sdt_core::cluster::ClusterBuilder;
use sdt_core::methods::SwitchModel;
use sdt_openflow::{Action, FlowEntry, FlowMatch, FlowMod, OpenFlowSwitch};
use sdt_tenancy::{
    AdmissionError, Epoch, EpochAdd, EpochDelete, OwnedSpace, SliceManager,
};
use sdt_topology::chain::{chain, ring};
use sdt_topology::HostId;

fn manager() -> SliceManager {
    let cluster = ClusterBuilder::new(SwitchModel::openflow_128x100g(), 2)
        .hosts_per_switch(8)
        .inter_links_per_pair(8)
        .build();
    SliceManager::new(cluster)
}

/// Byte-level snapshot of every live table.
fn fingerprint(mgr: &SliceManager) -> Vec<Vec<FlowEntry>> {
    mgr.switches()
        .iter()
        .flat_map(|sw| [sw.table(0).entries().to_vec(), sw.table(1).entries().to_vec()])
        .collect()
}

/// An epoch that deletes one of the slice's own route entries passes the
/// ownership check but blackholes a pair — the static precheck must reject
/// it and must not touch the live tables while doing so.
#[test]
fn precheck_rejects_blackholing_epoch_and_leaves_tables_untouched() {
    let mut mgr = manager();
    let a = mgr.create("a", &ring(4)).unwrap();
    let slice = mgr.slice(a).unwrap().clone();
    let (sw, victim) = slice
        .installed
        .table1
        .iter()
        .enumerate()
        .find_map(|(sw, t)| t.first().map(|e| (sw as u32, *e)))
        .expect("an admitted slice has route entries");

    let epoch = Epoch {
        slice: a,
        adds: vec![],
        deletes: vec![EpochDelete { switch: sw, table: 1, m: victim.m, priority: victim.priority }],
    };
    // Ownership-wise the epoch is impeccable: it only touches the slice's
    // own metadata space.
    epoch
        .verify(&slice.owned_space(), &OwnedSpace::default())
        .expect("the epoch is inside its own namespace");

    let before = fingerprint(&mgr);
    let err = mgr.precheck_epoch(&epoch).unwrap_err();
    assert!(
        matches!(err, AdmissionError::StaticViolation(ref s) if s.contains("blackhole")),
        "static precheck names the defect class: {err}"
    );
    assert_eq!(fingerprint(&mgr), before, "a refused precheck must not mutate live tables");
    // The live fabric still verifies clean — only the *pending* state was bad.
    assert!(mgr.verify_report().holds());
}

/// A MODIFY-shaped epoch (delete + re-add of the same entry) is harmless
/// and must pass the precheck.
#[test]
fn precheck_accepts_healthy_modify_epoch() {
    let mut mgr = manager();
    let a = mgr.create("a", &ring(4)).unwrap();
    let slice = mgr.slice(a).unwrap().clone();
    let (sw, e) = slice
        .installed
        .table1
        .iter()
        .enumerate()
        .find_map(|(sw, t)| t.first().map(|e| (sw as u32, *e)))
        .unwrap();
    let epoch = Epoch {
        slice: a,
        adds: vec![EpochAdd { switch: sw, table: 1, entry: e }],
        deletes: vec![EpochDelete { switch: sw, table: 1, m: e.m, priority: e.priority }],
    };
    mgr.precheck_epoch(&epoch).expect("an in-place replacement changes nothing");
}

/// An epoch entirely inside slice A's metadata space that outputs onto
/// slice B's host port: invisible to ownership checking, rejected by the
/// static precheck as a leak.
#[test]
fn precheck_rejects_cross_slice_leak_epoch() {
    let mut mgr = manager();
    let a = mgr.create("a", &ring(4)).unwrap();
    let b = mgr.create("b", &ring(4)).unwrap();
    let sa = mgr.slice(a).unwrap().clone();
    let sb = mgr.slice(b).unwrap().clone();

    // Find (a-host ingress, b-host port) on the same physical switch, and
    // the metadata value a-host's classify rule writes there.
    let classify_md = |switches: &[OpenFlowSwitch], p: sdt_core::PhysPort| -> Option<u32> {
        switches[p.switch as usize].table(0).entries().iter().find_map(|e| {
            match (e.m.in_port, e.action) {
                (Some(port), Action::WriteMetadataGoto(md)) if port == p.port => Some(md),
                _ => None,
            }
        })
    };
    let (md, to_port, dst_addr) = (0..sa.topology.num_hosts())
        .flat_map(|ha| (0..sb.topology.num_hosts()).map(move |hb| (HostId(ha), HostId(hb))))
        .find_map(|(ha, hb)| {
            let pa = sa.projection.primary_host_port(&sa.topology, ha);
            let pb = sb.projection.primary_host_port(&sb.topology, hb);
            if pa.switch != pb.switch {
                return None;
            }
            classify_md(mgr.switches(), pa).map(|md| (md, pb, sb.host_addr(hb)))
        })
        .expect("some a-host and b-host share a physical switch");

    let evil = Epoch {
        slice: a,
        adds: vec![EpochAdd {
            switch: to_port.switch,
            table: 1,
            entry: FlowEntry {
                m: FlowMatch::to_dst(dst_addr).and_metadata(md),
                priority: 99,
                action: Action::Output(to_port.port),
            },
        }],
        deletes: vec![],
    };
    // The match is inside slice A's own metadata space: ownership checking
    // is blind to where the *action* points.
    evil.verify(&sa.owned_space(), &sb.owned_space()).expect("ownership cannot see the leak");

    let before = fingerprint(&mgr);
    let err = mgr.precheck_epoch(&evil).unwrap_err();
    assert!(
        matches!(err, AdmissionError::StaticViolation(ref s) if s.contains("leak")),
        "leak named: {err}"
    );
    assert_eq!(fingerprint(&mgr), before);
}

/// Damage applied behind the manager's back blocks the next admission
/// (the gate re-proves the whole post-state), and the escape hatch lets an
/// operator override the gate deliberately.
#[test]
fn corrupted_fabric_blocks_admission_until_escape_hatch() {
    let mut mgr = manager();
    let a = mgr.create("a", &ring(4)).unwrap();
    // Gut one of slice A's route entries directly on the live switch.
    let (sw, victim) = mgr
        .switches()
        .iter()
        .enumerate()
        .find_map(|(sw, s)| s.table(1).entries().first().map(|e| (sw, *e)))
        .unwrap();
    mgr.switches_mut()[sw].apply(1, FlowMod::Delete(victim.m, victim.priority)).unwrap();

    // The next admission re-proves the full post-state and finds slice A
    // blackholed — rejected, even though slice B itself is fine.
    let err = mgr.create("b", &chain(2)).unwrap_err();
    assert!(matches!(err, AdmissionError::StaticViolation(_)), "{err}");
    assert_eq!(mgr.num_slices(), 1, "rejected admission leaves no trace");

    // Escape hatch: an operator who knows better can force it through.
    mgr.set_static_verify(false);
    mgr.create("b", &chain(2)).expect("gate disabled");
    assert_eq!(mgr.num_slices(), 2);
    // The full report still tells the truth about the wounded fabric.
    assert!(!mgr.verify_report().holds());
    let _ = a;
}
