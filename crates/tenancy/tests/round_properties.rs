//! Property tests over the round scheduler: whatever migration the slice
//! manager plans, the compiled rounds are a faithful, dependency-correct
//! re-sequencing of the epoch.
//!
//! (a) the rounds partition the epoch's flow-mod batch exactly — no mod
//!     duplicated, none lost;
//! (b) dependency edges hold: a table-0 add that steers metadata into
//!     routes added this epoch lands strictly after every one of those
//!     route adds, and no delete precedes a pure add;
//! (c) concatenating the rounds reaches exactly the unscheduled epoch's
//!     table state: same entry set per table, every (match, priority) key
//!     unique — distinct-key units commute, so set equality is lookup
//!     equality;
//! (d) scheduling and installation are deterministic for a fixed channel
//!     seed at any `SDT_VERIFY_THREADS` worker count.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use proptest::prelude::*;
use sdt_core::cluster::{ClusterBuilder, PhysicalCluster};
use sdt_core::methods::SwitchModel;
use sdt_openflow::{diff_tables, Action, ControlChannel, ControlConfig, FlowMod, OpenFlowSwitch};
use sdt_tenancy::{install_scheduled, MigrationPlan, RetryPolicy, SliceManager};
use sdt_topology::chain::{chain, ring};
use sdt_topology::meshtorus::mesh;
use sdt_topology::Topology;
use sdt_verify::{TableView, Verifier, WalkCache};

fn cluster2() -> PhysicalCluster {
    ClusterBuilder::new(SwitchModel::openflow_128x100g(), 2)
        .hosts_per_switch(16)
        .inter_links_per_pair(12)
        .build()
}

fn zoo(ix: usize) -> Topology {
    match ix % 6 {
        0 => chain(3),
        1 => chain(4),
        2 => ring(4),
        3 => ring(5),
        4 => mesh(&[2, 2]),
        _ => mesh(&[3, 2]),
    }
}

/// Plan a migration `zoo(from) -> zoo(to)` next to a co-tenant.
fn plan_of(co: usize, from: usize, to: usize) -> (SliceManager, MigrationPlan) {
    let mut mgr = SliceManager::new(cluster2());
    mgr.create("co", &zoo(co)).unwrap();
    let id = mgr.create("m", &zoo(from)).unwrap();
    let plan = mgr.plan_scheduled(id, &zoo(to)).unwrap();
    (mgr, plan)
}

/// Canonical multiset key of one flow-mod.
fn key(sw: u32, t: u8, m: &FlowMod) -> String {
    format!("{sw}/{t}/{m:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rounds_partition_the_batch_exactly((co, from, to) in (0usize..6, 0usize..6, 0usize..6)) {
        let (_, plan) = plan_of(co, from, to);
        let mut scheduled: Vec<String> = plan
            .rounds()
            .iter()
            .flat_map(|r| r.mods.iter().map(|(sw, t, m)| key(*sw, *t, m)))
            .collect();
        let mut epoch: Vec<String> =
            plan.epoch().ordered_mods().iter().map(|(sw, t, m)| key(*sw, *t, m)).collect();
        scheduled.sort();
        epoch.sort();
        prop_assert_eq!(scheduled, epoch);
    }

    #[test]
    fn dependency_edges_are_never_violated((co, from, to) in (0usize..6, 0usize..6, 0usize..6)) {
        let (_, plan) = plan_of(co, from, to);
        // Where every *fresh* table-1 route for (switch, metadata) lands —
        // pure adds only; the add half of an in-place MODIFY replaces a
        // route that exists throughout and creates no dependency edge.
        let mut route_round: std::collections::HashMap<(u32, u32), usize> =
            std::collections::HashMap::new();
        let mut pure_t0_adds: Vec<(usize, u32, u32)> = Vec::new(); // (round, sw, md)
        let mut last_pure_add = 0usize;
        let mut first_delete = usize::MAX;
        for (i, r) in plan.rounds().iter().enumerate() {
            // Key of the MODIFY unit we're inside, if any: subsequent adds
            // matching it are replacements, not pure adds.
            let mut modify_key: Option<(u32, u8, sdt_openflow::FlowMatch, u16)> = None;
            for (sw, t, m) in &r.mods {
                match m {
                    FlowMod::Delete(dm, dp) => {
                        first_delete = first_delete.min(i);
                        modify_key = Some((*sw, *t, *dm, *dp));
                    }
                    FlowMod::Add(e) => {
                        if modify_key == Some((*sw, *t, e.m, e.priority)) {
                            continue; // MODIFY replacement
                        }
                        modify_key = None;
                        last_pure_add = last_pure_add.max(i);
                        if *t == 1 {
                            if let Some(md) = e.m.metadata {
                                let slot = route_round.entry((*sw, md)).or_insert(i);
                                *slot = (*slot).max(i);
                            }
                        } else if let Action::WriteMetadataGoto(md) = e.action {
                            pure_t0_adds.push((i, *sw, md));
                        }
                    }
                    FlowMod::Clear => prop_assert!(false, "epochs never emit Clear"),
                }
            }
        }
        // (b1) no delete in an earlier round than a pure add.
        prop_assert!(
            first_delete == usize::MAX || first_delete >= last_pure_add,
            "delete in round {first_delete} precedes pure add in round {last_pure_add}"
        );
        // (b2) a steering table-0 add waits for every fresh route it
        // steers to.
        for (i, sw, md) in pure_t0_adds {
            if let Some(&route) = route_round.get(&(sw, md)) {
                prop_assert!(
                    route < i,
                    "t0 add in round {i} steers md {md} whose fresh routes land in round {route}"
                );
            }
        }
    }

    #[test]
    fn concatenated_rounds_reach_the_unscheduled_state((co, from, to) in (0usize..6, 0usize..6, 0usize..6)) {
        let (mgr, plan) = plan_of(co, from, to);
        let mut by_rounds = TableView::of_switches(mgr.switches());
        for r in plan.rounds() {
            for (sw, t, m) in &r.mods {
                by_rounds.apply(*sw, *t, m);
            }
        }
        let mut one_shot = TableView::of_switches(mgr.switches());
        for (sw, t, m) in &plan.epoch().ordered_mods() {
            one_shot.apply(*sw, *t, m);
        }
        for sw in 0..by_rounds.num_switches() as u32 {
            for t in [0u8, 1u8] {
                let a = by_rounds.entries(sw, t);
                let b = one_shot.entries(sw, t);
                // Same entry set, same count (distinct-key units commute,
                // so only vector order may differ between the two paths).
                prop_assert_eq!(a.len(), b.len(), "switch {} table {} entry count", sw, t);
                prop_assert!(
                    diff_tables(a, b).is_empty(),
                    "switch {sw} table {t}: scheduled and one-shot entry sets diverge"
                );
                // Every (match, priority) key unique: set equality is
                // first-match-wins lookup equality.
                let mut keys: Vec<(String, u16)> =
                    b.iter().map(|e| (format!("{:?}", e.m), e.priority)).collect();
                keys.sort();
                let n = keys.len();
                keys.dedup();
                prop_assert_eq!(keys.len(), n, "switch {} table {} has duplicate keys", sw, t);
            }
        }
    }
}

/// Run one plan through `install_scheduled` with an explicit worker count
/// and a fixed channel seed; return what determinism must preserve.
fn run_install(
    mgr: &SliceManager,
    plan: &MigrationPlan,
    threads: usize,
    seed: u64,
) -> (Vec<OpenFlowSwitch>, Vec<String>, usize, bool) {
    let mut switches: Vec<OpenFlowSwitch> = mgr.switches().to_vec();
    let mut channel = ControlChannel::new(ControlConfig {
        drop_prob: 0.25,
        reorder_prob: 0.25,
        seed,
        ..ControlConfig::reliable()
    });
    let mut cache = WalkCache::new();
    let base = Verifier::check_threads(
        mgr.cluster(),
        TableView::of_switches(&switches),
        plan.pre_intent().clone(),
        threads,
    );
    let (_, rep) = install_scheduled(
        mgr.cluster(),
        &mut switches,
        &mut channel,
        plan.rounds().to_vec(),
        base,
        plan.pre_intent(),
        plan.post_intent(),
        mgr.timing(),
        threads,
        &mut cache,
        &RetryPolicy::default(),
    )
    .unwrap();
    let rounds: Vec<String> = rep
        .rounds
        .iter()
        .map(|r| {
            format!(
                "{}:{}:{}m/{}u sends={} retries={} conv={} rever={}",
                r.round, r.phase, r.mods, r.units, r.sends, r.retries, r.converged, r.reverified
            )
        })
        .collect();
    (switches, rounds, rep.violations, rep.converged)
}

#[test]
fn scheduling_is_thread_count_independent_for_a_fixed_seed() {
    let (mgr, plan) = plan_of(1, 2, 1); // chain(4) co-tenant isn't migrated
    // compile_rounds is a pure function: re-planning must be identical.
    let replan = {
        let mut m2 = SliceManager::new(cluster2());
        m2.create("co", &zoo(1)).unwrap();
        let id = m2.create("m", &zoo(2)).unwrap();
        m2.plan_scheduled(id, &zoo(1)).unwrap()
    };
    assert_eq!(format!("{:?}", plan.rounds()), format!("{:?}", replan.rounds()));

    for seed in [3u64, 17] {
        let (sw1, rounds1, viol1, conv1) = run_install(&mgr, &plan, 1, seed);
        for threads in [2usize, 4] {
            let (swn, roundsn, violn, convn) = run_install(&mgr, &plan, threads, seed);
            assert_eq!(rounds1, roundsn, "seed {seed}: round trace differs at {threads} threads");
            assert_eq!((viol1, conv1), (violn, convn));
            for (a, b) in sw1.iter().zip(&swn) {
                for t in [0u8, 1u8] {
                    assert_eq!(
                        a.table(t).entries(),
                        b.table(t).entries(),
                        "seed {seed}: live tables differ at {threads} threads"
                    );
                }
            }
        }
        assert!(conv1, "seed {seed}: lossy install must converge");
        assert_eq!(viol1, 0);
    }
}
